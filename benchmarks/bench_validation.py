"""Soundness validation: the analytic Figures 3-5 model vs the kernel.

The breakdown figures are computed analytically (as the paper did);
this benchmark scales random workloads to 2% inside their analytic
breakdown point and replays them on the live kernel with the full
overhead charging.  Zero deadline misses on the feasible side means
the analysis is operationally sound -- the analytic curves could be
regenerated (much more slowly) by pure simulation.
"""

from common import publish
from repro.analysis import format_table
from repro.sim.validate import validate_breakdown
from repro.sim.workload import generate_workload


def test_validation_table(benchmark):
    def run():
        rows = []
        clean = True
        for policy in ("edf", "rm", "csd-2", "csd-3"):
            for seed in (0, 1, 2):
                w = generate_workload(6, seed=seed, utilization=0.5)
                result = validate_breakdown(w, policy)
                rows.append(
                    [
                        policy,
                        seed,
                        f"{100 * result.breakdown_utilization:.1f}%",
                        "clean" if result.sound else f"{result.violations} MISSES",
                    ]
                )
                clean = clean and result.sound
        return rows, clean

    rows, clean = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "validation",
        format_table(
            ["policy", "workload seed", "analytic breakdown", "kernel at 98%"],
            rows,
            title="Analytic-vs-kernel soundness check (2% inside breakdown)",
        ),
    )
    assert clean
