"""Table 1: run-time overheads of the scheduler primitives.

Regenerates the table (``t_b``, ``t_u``, ``t_s`` for the EDF unsorted
queue, the RM sorted queue, and the RM heap, as functions of the queue
length) from the cost model -- which *is* the paper's table, charged by
the simulated kernel -- and additionally microbenchmarks the real
Python queue structures, confirming the complexity classes behind each
formula (O(1) flag flips, O(n) scans, O(log n) heap ops).
"""

import pytest

from common import publish
from repro.analysis import format_table
from repro.core.overhead import OverheadModel
from repro.core.queues import ReadyHeap, Schedulable, SortedQueue, UnsortedQueue
from repro.timeunits import to_us


def make_entries(n, ready=True):
    entries = []
    for i in range(n):
        e = Schedulable(f"t{i}", (i, f"t{i}"))
        e.ready = ready
        e.abs_deadline = 1_000_000 + i
        entries.append(e)
    return entries


def test_table1_model(benchmark):
    """Print the Table 1 formulas evaluated at representative n."""
    model = OverheadModel()

    def build():
        rows = []
        for n in (5, 10, 15, 25, 40, 58):
            rows.append(
                [
                    n,
                    f"{to_us(model.edf_block(n)):.2f}",
                    f"{to_us(model.edf_unblock(n)):.2f}",
                    f"{to_us(model.edf_select(n)):.2f}",
                    f"{to_us(model.rm_block(n)):.2f}",
                    f"{to_us(model.rm_unblock(n)):.2f}",
                    f"{to_us(model.rm_select(n)):.2f}",
                    f"{to_us(model.heap_block(n)):.2f}",
                    f"{to_us(model.heap_unblock(n)):.2f}",
                    f"{to_us(model.heap_select(n)):.2f}",
                ]
            )
        return rows

    rows = benchmark(build)
    table = format_table(
        [
            "n",
            "EDF t_b",
            "EDF t_u",
            "EDF t_s",
            "RM t_b",
            "RM t_u",
            "RM t_s",
            "heap t_b",
            "heap t_u",
            "heap t_s",
        ],
        rows,
        title="Table 1: scheduler primitive overheads (us; paper's MC68040 model)",
    )
    publish("table1", table)

    # Paper-exact spot checks.
    assert to_us(model.edf_select(15)) == pytest.approx(1.2 + 0.25 * 15)
    assert to_us(model.rm_block(15)) == pytest.approx(1.0 + 0.36 * 15)


def test_table1_heap_crossover(benchmark):
    """Table 1's discussion: the heap only beats the sorted queue for
    very large n (58 on the paper's hardware)."""
    model = OverheadModel()

    def crossover():
        for n in range(2, 200):
            queue = model.rm_block(n) + model.rm_unblock(n) + 2 * model.rm_select(n)
            heap = model.heap_block(n) + model.heap_unblock(n) + 2 * model.heap_select(n)
            if heap < queue:
                return n
        return None

    n = benchmark(crossover)
    publish(
        "table1_crossover",
        f"heap implementation first beats the sorted queue at n = {n} "
        f"(paper: n = 58)",
    )
    assert n is not None
    assert 40 <= n <= 70


def test_edf_queue_ops_python_time(benchmark):
    """Microbenchmark: EDF block/unblock are O(1) in the real structure."""
    q = UnsortedQueue()
    entries = make_entries(50)
    for e in entries:
        q.add(e)
    target = entries[25]

    def cycle():
        q.block(target)
        q.unblock(target)

    benchmark(cycle)
    assert q.last_scan_steps == 1


def test_edf_select_scales_linearly(benchmark):
    """The EDF select really scans all n tasks."""
    q = UnsortedQueue()
    for e in make_entries(50):
        q.add(e)
    benchmark(q.select)
    assert q.last_scan_steps == 50


def test_rm_select_is_constant(benchmark):
    q = SortedQueue()
    for e in make_entries(50):
        q.add(e)
    benchmark(q.select)
    assert q.last_scan_steps == 1


def test_heap_ops(benchmark):
    q = ReadyHeap()
    entries = make_entries(50)
    for e in entries:
        q.add(e)
    target = entries[25]

    def cycle():
        q.block(target)
        q.unblock(target)
        q.select()

    benchmark(cycle)
