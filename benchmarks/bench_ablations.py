"""Ablations of the design choices DESIGN.md calls out.

1. **Number of CSD queues** (Section 5.6): breakdown utilization for
   CSD-x, x = 2..6.  Expected: a peak around x = 3-4, with diminishing
   or negative returns beyond as inter-band schedulability overhead
   eats the run-time savings.
2. **Allocation search vs naive splits**: the paper's offline search
   against "all tasks DP" and "even split" heuristics.
3. **The two Section 6 semaphore optimizations independently**:
   context-switch elimination (hint parking) and O(1) PI (place-holder
   swap), measured separately in the Figure 6 scenario on a 30-deep FP
   queue (the O(1) swap only beats the O(n) reposition once the queue
   passes ~18 tasks under the calibrated cost model).
4. **Sorted queue vs heap** under RM (Table 1's third column).
5. **Budget enforcement actions** under an overrun storm, swept from
   one shared warm-up snapshot: every variant restores the same
   defended prefix and re-tunes only the budget action at the split
   (the :func:`repro.faults.chaos.chaos_continue` ``defense_override``
   hook), so the comparison isolates the action itself.
"""

from common import bench_workloads, publish
from repro.analysis import format_table
from repro.core.overhead import OverheadModel
from repro.core.rm import RMScheduler
from repro.core.schedulability import csd_schedulable
from repro.core.task import Workload
from repro.kernel.kernel import Kernel
from repro.kernel.program import Acquire, Compute, Program, Release, Wait
from repro.sim.breakdown import breakdown_utilization
from repro.sim.workload import generate_base_workloads
from repro.timeunits import ms, to_us, us


def test_csd_queue_count_sweep(benchmark):
    """CSD-x for x in 2..6 (plus EDF/RM as the endpoints' limits)."""
    model = OverheadModel()
    workloads = [
        w.with_periods_divided(2)
        for w in generate_base_workloads(30, min(bench_workloads(), 15), seed=5)
    ]

    def sweep():
        averages = {}
        for policy in ("edf", "csd-2", "csd-3", "csd-4", "csd-5", "csd-6", "rm"):
            total = sum(
                breakdown_utilization(w, policy, model).utilization
                for w in workloads
            )
            averages[policy] = 100 * total / len(workloads)
        return averages

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "ablation_queue_count",
        format_table(
            ["policy", "avg breakdown (%)"],
            [[p, f"{v:.1f}"] for p, v in averages.items()],
            title="Ablation: number of CSD queues (n = 30, periods / 2)",
        ),
    )
    best = max(averages, key=averages.get)
    assert best in ("csd-3", "csd-4", "csd-5")
    # Extra queues beyond ~4 must not keep helping much (Section 5.6).
    assert averages["csd-6"] <= averages["csd-4"] + 1.0


def test_allocation_search_vs_naive(benchmark):
    """The offline search beats fixed naive allocations."""
    model = OverheadModel()
    workloads = [
        w.with_periods_divided(3)
        for w in generate_base_workloads(30, min(bench_workloads(), 15), seed=9)
    ]

    def evaluate():
        searched = 0.0
        all_dp = 0.0
        half = 0.0
        for w in workloads:
            searched += breakdown_utilization(w, "csd-2", model).utilization

            def naive_breakdown(splits):
                lo, hi = 0.0, 1.0 / w.utilization
                while hi - lo > 1e-3:
                    mid = (lo + hi) / 2
                    if csd_schedulable(w.scaled(mid), splits, model):
                        lo = mid
                    else:
                        hi = mid
                return lo * w.utilization

            all_dp += naive_breakdown((len(w),))
            half += naive_breakdown((len(w) // 2,))
        n = len(workloads)
        return 100 * searched / n, 100 * all_dp / n, 100 * half / n

    searched, all_dp, half = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    publish(
        "ablation_allocation",
        format_table(
            ["allocation", "avg breakdown (%)"],
            [
                ["offline search (paper)", f"{searched:.1f}"],
                ["naive: all tasks in DP", f"{all_dp:.1f}"],
                ["naive: half the tasks in DP", f"{half:.1f}"],
            ],
            title="Ablation: CSD-2 allocation policy (n = 30, periods / 3)",
        ),
    )
    assert searched >= all_dp - 1e-9
    assert searched >= half - 1e-9


def _fig6_kernel(use_hint_parking: bool, use_swap_pi: bool) -> Kernel:
    """The Figure 6 scenario on the FP queue with selectable opts."""
    kernel = Kernel(RMScheduler(OverheadModel()), sem_scheme="emeralds")
    kernel.create_semaphore(
        "S", use_hint_parking=use_hint_parking, use_swap_pi=use_swap_pi
    )
    kernel.create_event("E")
    # RM priorities follow periods: T2 (50 ms) > Tx (80 ms) > T1 (100 ms).
    kernel.create_thread(
        "T2",
        Program([Wait("E"), Compute(us(5)), Acquire("S"), Compute(us(20)),
                 Release("S"), Compute(us(50))]),
        period=ms(50), deadline=ms(1),
    )
    kernel.create_thread(
        "T1",
        Program([Acquire("S"), Compute(us(200)), Release("S"), Compute(us(5))]),
        period=ms(100), deadline=ms(20),
    )
    kernel.create_thread(
        "Tx", Program([Compute(us(300))]), period=ms(80), deadline=ms(5),
        phase=us(50),
    )
    for i in range(27):
        kernel.create_thread(
            f"fill{i}", Program([Compute(us(1))]),
            period=ms(300) + i * 1000, phase=ms(5000),
        )
    kernel.create_timer(
        "fireE", us(100), lambda k: k.events_by_name["E"].signal(k)
    )
    kernel.timers["fireE"].start()
    return kernel


def test_sem_optimizations_independently(benchmark):
    """Ablate hint parking and the O(1) PI swap independently."""

    def run_all():
        results = {}
        for parking in (False, True):
            for swap in (False, True):
                kernel = _fig6_kernel(parking, swap)
                kernel.run_until(ms(2))
                results[(parking, swap)] = (
                    kernel.trace.kernel_time_total,
                    kernel.trace.context_switches,
                )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (parking, swap), (kernel_time, switches) in sorted(results.items()):
        rows.append(
            [
                "on" if parking else "off",
                "on" if swap else "off",
                f"{to_us(kernel_time):.1f}",
                switches,
            ]
        )
    publish(
        "ablation_sem_opts",
        format_table(
            ["hint parking", "O(1) PI swap", "kernel time (us)", "switches"],
            rows,
            title="Ablation: the two Section 6 optimizations (FP queue, 30 tasks)",
        ),
    )
    baseline = results[(False, False)]
    both = results[(True, True)]
    # Each optimization helps; together they help most.
    assert both[0] < baseline[0]
    assert both[1] < baseline[1]
    assert results[(True, False)][1] < baseline[1]  # parking saves a switch
    assert results[(False, True)][0] < baseline[0]  # swap saves PI time


def test_heap_vs_queue_rm(benchmark):
    """Table 1's third column as a breakdown-utilization effect."""
    model = OverheadModel()
    workloads = [
        w.with_periods_divided(3)
        for w in generate_base_workloads(20, 10, seed=2)
    ]

    def evaluate():
        queue = sum(
            breakdown_utilization(w, "rm", model).utilization for w in workloads
        )
        heap = sum(
            breakdown_utilization(w, "rm-heap", model).utilization for w in workloads
        )
        return 100 * queue / len(workloads), 100 * heap / len(workloads)

    queue, heap = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    publish(
        "ablation_heap",
        format_table(
            ["implementation", "avg breakdown (%)"],
            [["sorted queue + highestp", f"{queue:.1f}"], ["binary heap", f"{heap:.1f}"]],
            title="Ablation: RM queue implementation (n = 20, periods / 3)",
        ),
    )
    # Below the ~58-task crossover the queue implementation wins.
    assert queue >= heap


def test_defense_ablation_shared_prefix(benchmark):
    """Budget actions ablated from one shared warm-up snapshot.

    All (action, seed) variants share the defended fault-free warm-up;
    the planner simulates it once and each continuation re-tunes only
    the budget action before the same overrun storm arms.  Every
    restored result is cross-checked against a cold run of the same
    configuration -- the ablation rides on the snapshot machinery and
    proves it exact at the same time.
    """
    from repro.faults.chaos import (
        BUDGET_FACTOR,
        WORKLOAD,
        chaos_continue,
        chaos_prefix,
        run_chaos,
    )
    from repro.perf.sweeps import PrefixSpec, prefix_map
    from repro.timeunits import ms

    duration, warmup = ms(2000), ms(1500)
    rate = 100.0
    actions = ("suspend_job", "kill", "warn")
    seeds = (1, 2)
    cases = [(action, seed) for action in actions for seed in seeds]

    def override(action):
        def apply(kernel):
            for name, _period, wcet, _crit in WORKLOAD:
                kernel.set_budget(
                    name, round(BUDGET_FACTOR * wcet), action=action
                )
        return apply

    def plan(case):
        action, seed = case
        spec = PrefixSpec(
            key=("chaos-ablate", warmup),
            t_split=warmup,
            build=lambda: chaos_prefix(True, t_split=warmup),
        )

        def continuation(kernel):
            return chaos_continue(
                kernel,
                seed,
                duration,
                wcet_overrun_rate=rate,
                faults_from=warmup,
                defense_override=override(action),
            )

        return spec, continuation

    outcomes = benchmark.pedantic(
        lambda: prefix_map(plan, cases), rounds=1, iterations=1
    )
    by_action = {}
    rows = []
    for action in actions:
        results = [
            out for case, out in zip(cases, outcomes) if case[0] == action
        ]
        by_action[action] = results
        rows.append(
            [
                action,
                f"{sum(r.miss_ratio for r in results) / len(results):.3f}",
                f"{sum(r.service_ratio['ctrl'] for r in results) / len(results):.3f}",
                f"{sum(r.jobs_aborted for r in results) / len(results):.1f}",
            ]
        )
    publish(
        "ablation_defenses",
        format_table(
            ["budget action", "miss ratio", "ctrl svc", "aborted"],
            rows,
            title=(
                "Ablation: budget enforcement action "
                "(shared 1500 ms warm-up snapshot, 100 overruns/s)"
            ),
        ),
    )

    # Snapshot exactness: each restored variant equals its cold twin.
    for (action, seed), out in zip(cases, outcomes):
        cold = run_chaos(
            seed,
            duration,
            wcet_overrun_rate=rate,
            faults_from=warmup,
            defense_override=override(action),
        )
        assert out == cold, f"snapshot diverged for {(action, seed)}"

    # suspend_job aborts the overrunning job and keeps the thread;
    # kill takes the whole thread down (the restart policy decides its
    # fate), so it aborts no jobs but bleeds service; warn enforces
    # nothing and pays in missed deadlines.
    assert all(r.jobs_aborted > 0 for r in by_action["suspend_job"])
    assert all(r.jobs_aborted == 0 for r in by_action["kill"])
    assert all(r.jobs_aborted == 0 for r in by_action["warn"])
    mean = lambda rs, f: sum(f(r) for r in rs) / len(rs)  # noqa: E731
    assert mean(by_action["kill"], lambda r: r.service_ratio["ctrl"]) < mean(
        by_action["suspend_job"], lambda r: r.service_ratio["ctrl"]
    )
    assert mean(by_action["warn"], lambda r: r.miss_ratio) >= mean(
        by_action["suspend_job"], lambda r: r.miss_ratio
    )
