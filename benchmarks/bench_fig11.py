"""Figure 11 + the Section 6.4 FP-queue numbers: semaphore overheads.

Measures the contended acquire/release pair cost in the live kernel
(the Figure 6 scenario) as a function of the scheduler queue length,
for the standard implementation and the EMERALDS scheme, on both the
DP (EDF) queue and the FP (RM) queue.

Paper values this reproduces *exactly* (the cost model is calibrated
to them -- see ``repro.core.overhead``):

* DP queue, length 15: standard 39.3 us, EMERALDS 28.3 us -- an 11 us
  (28%) saving; standard slope exactly twice the EMERALDS slope.
* FP queue: EMERALDS constant at 29.4 us; at length 15 the standard
  implementation costs 39.8 us (10.4 us / 26% saving).
"""

import pytest

from common import publish
from repro.analysis import ascii_series
from repro.sim.semexp import figure11_series, measure_pair_overhead
from repro.timeunits import to_us, us

LENGTHS = tuple(range(3, 31, 3))


def test_figure11_dp_queue(benchmark):
    rows = benchmark.pedantic(
        lambda: figure11_series("dp", LENGTHS), rounds=1, iterations=1
    )
    publish(
        "figure11_dp",
        ascii_series(
            [r[0] for r in rows],
            {
                "standard": [to_us(r[1]) for r in rows],
                "emeralds": [to_us(r[2]) for r in rows],
            },
            title="Figure 11: semaphore acquire/release overhead (us), DP queue",
            x_label="queue length",
        ),
    )
    by_n = {r[0]: r for r in rows}
    assert by_n[15][1] == us(39.3)
    assert by_n[15][2] == us(28.3)


def test_figure11_fp_queue(benchmark):
    rows = benchmark.pedantic(
        lambda: figure11_series("fp", LENGTHS), rounds=1, iterations=1
    )
    publish(
        "figure11_fp",
        ascii_series(
            [r[0] for r in rows],
            {
                "standard": [to_us(r[1]) for r in rows],
                "emeralds": [to_us(r[2]) for r in rows],
            },
            title="Section 6.4: semaphore overhead (us), FP queue",
            x_label="queue length",
        ),
    )
    # EMERALDS flat at 29.4 us; standard linear.
    assert {r[2] for r in rows} == {us(29.4)}
    assert rows[-1][1] > rows[0][1]


def test_fig11_headline_numbers(benchmark):
    def measure():
        dp_std = measure_pair_overhead("dp", "standard", 15).overhead_ns
        dp_new = measure_pair_overhead("dp", "emeralds", 15).overhead_ns
        fp_std = measure_pair_overhead("fp", "standard", 15).overhead_ns
        fp_new = measure_pair_overhead("fp", "emeralds", 15).overhead_ns
        return dp_std, dp_new, fp_std, fp_new

    dp_std, dp_new, fp_std, fp_new = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    publish(
        "figure11_headline",
        "\n".join(
            [
                "Section 6.4 headline numbers (paper -> measured):",
                f"  DP std @15:  39.3 us -> {to_us(dp_std):.1f} us",
                f"  DP new @15:  28.3 us -> {to_us(dp_new):.1f} us "
                f"(saving {to_us(dp_std - dp_new):.1f} us = "
                f"{100 * (dp_std - dp_new) / dp_std:.0f}%)",
                f"  FP std @15:  39.8 us -> {to_us(fp_std):.1f} us",
                f"  FP new:      29.4 us -> {to_us(fp_new):.1f} us "
                f"(saving {to_us(fp_std - fp_new):.1f} us = "
                f"{100 * (fp_std - fp_new) / fp_std:.0f}%)",
            ]
        ),
    )
    assert (dp_std - dp_new) == us(11)
    assert (fp_std - fp_new) == us(10.4)
