"""Fieldbus characterization: latency vs load on the 1 Mbit/s bus.

Not a paper figure (inter-node protocols are out of the paper's
scope, footnote 1), but the substrate the distributed targets sit on
deserves its own numbers: end-to-end frame latency as bus load grows,
and the priority-protection property -- the highest-priority stream's
latency stays near the wire minimum no matter how much low-priority
traffic contends.
"""

from common import publish
from repro.analysis import format_table
from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, Wait
from repro.net import Cluster, Fieldbus, net_send
from repro.timeunits import ms, to_us, us


def run_cluster(background_senders: int, horizon=ms(500)):
    """One high-priority periodic stream plus N contending senders."""
    cluster = Cluster(Fieldbus(1_000_000))
    latencies = []

    # The measured stream: id 0x01, sent every 10 ms, timestamped.
    tx = Kernel(EDFScheduler(ZERO_OVERHEAD))
    tx_iface = cluster.add_node("probe", tx)

    def stamped_send(kern, thread):
        from repro.net import Frame

        tx_iface.transmit(Frame(can_id=0x01, size=8, payload=kern.now))

    tx.create_thread(
        "probe_tx", Program([Call(stamped_send)]), period=ms(10), deadline=ms(9)
    )

    # Background senders: lower priority, heavy periodic traffic.
    for i in range(background_senders):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        iface = cluster.add_node(f"bg{i}", k)
        k.create_thread(
            "noise",
            Program([net_send(iface, can_id=0x100 + i, size=8)] * 4),
            period=ms(5),
            deadline=ms(5),
        )

    rx = Kernel(EDFScheduler(ZERO_OVERHEAD))
    rx_iface = cluster.add_node("sink", rx, accept={0x01})

    def record(kern, thread):
        while True:
            frame = rx_iface.receive()
            if frame is None:
                break
            latencies.append(kern.now - frame.payload)

    rx.create_thread(
        "sink_rx",
        Program([Wait(rx_iface.rx_event_name), Call(record)]),
        period=ms(5),
        deadline=ms(5),
    )
    cluster.run_until(horizon)
    return cluster, latencies


def test_latency_vs_load(benchmark):
    def sweep():
        rows = []
        for n_bg in (0, 2, 5, 8):
            cluster, latencies = run_cluster(n_bg)
            assert latencies
            rows.append(
                (
                    n_bg,
                    100 * cluster.bus.utilization(ms(500)),
                    min(latencies),
                    max(latencies),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "fieldbus_latency",
        format_table(
            ["bg senders", "bus load", "min latency (us)", "max latency (us)"],
            [
                [n, f"{load:.1f}%", f"{to_us(lo):.0f}", f"{to_us(hi):.0f}"]
                for n, load, lo, hi in rows
            ],
            title=(
                "Highest-priority frame latency vs background load "
                "(1 Mbit/s bus; wire time of an 8-byte frame: 111 us)"
            ),
        ),
    )
    wire = 111_000
    # Unloaded: latency == wire time (within the driver's dispatch).
    assert rows[0][2] >= wire
    assert rows[0][3] <= wire + us(200)
    # Under load, the priority stream is delayed by at most one
    # in-flight frame (CAN non-preemption) plus its own wire time.
    for _, load, lo, hi in rows:
        assert hi <= 2 * wire + us(200)
    # Load actually grew across the sweep.
    assert rows[-1][1] > rows[0][1]
