"""Shared plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered text into ``benchmarks/results/`` (so the output
survives pytest's capture) in addition to printing it.

Environment knobs:

* ``REPRO_BENCH_WORKLOADS`` -- random workloads averaged per point in
  the Figures 3-5 sweeps (default 25; the paper used 500).
* ``REPRO_BENCH_TASKCOUNTS`` -- comma-separated task counts for the
  sweeps (default ``5,10,...,50`` like the paper).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

RESULTS_DIR = Path(__file__).parent / "results"


def bench_workloads() -> int:
    """Workloads per figure point (paper: 500)."""
    return int(os.environ.get("REPRO_BENCH_WORKLOADS", "25"))


def bench_task_counts() -> List[int]:
    """Task counts for the Figures 3-5 x axis (paper: 5..50)."""
    raw = os.environ.get("REPRO_BENCH_TASKCOUNTS", "")
    if raw:
        return [int(x) for x in raw.split(",")]
    return list(range(5, 51, 5))


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
