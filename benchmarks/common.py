"""Shared plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered text into ``benchmarks/results/`` (so the output
survives pytest's capture) in addition to printing it.

All benchmarks read their knobs from one place -- here -- either as
environment variables (how the pytest-run benchmarks are configured)
or through :func:`bench_arg_parser`, which gives standalone benchmark
CLIs the same ``--seed/--out/--workers/--record`` flags and writes
them back into the environment so the env-based getters agree.

Environment knobs:

* ``REPRO_BENCH_WORKLOADS`` -- random workloads averaged per point in
  the Figures 3-5 sweeps (default 25; the paper used 500).
* ``REPRO_BENCH_TASKCOUNTS`` -- comma-separated task counts for the
  sweeps (default ``5,10,...,50`` like the paper).
* ``REPRO_BENCH_WORKERS`` -- worker processes for parallel sweeps
  (default 1 = serial; 0 = one per CPU).
* ``REPRO_BENCH_RECORD`` -- trace recording mode for live-kernel
  benchmarks (``full``, ``jobs-only`` or ``off``; default
  ``jobs-only``).
* ``REPRO_BENCH_SEED`` -- base RNG seed for sweeps that accept one.
* ``REPRO_BENCH_OUT`` -- output directory for rendered results
  (default ``benchmarks/results/``).
* ``REPRO_BENCH_TRAJECTORY`` -- perf trajectory file live-kernel
  benchmarks append to (default ``BENCH_kernel.json`` at the repo
  root).
* ``REPRO_BENCH_OBS`` -- observability mode for live-kernel runs
  (``counters`` or ``full``; default unset = observation off).
  Benchmarks that honor it can dump the metrics/trace artifacts via
  :func:`dump_obs_artifacts`.
* ``REPRO_SNAPSHOT`` -- snapshot mechanism for shared-prefix sweeps
  (``auto``/``fork``/``deepcopy``/``cold``; see
  :mod:`repro.perf.snapshot`).
* ``REPRO_BENCH_SWEEPS_TRAJECTORY`` -- sweep-speedup trajectory file
  (default ``BENCH_sweeps.json`` at the repo root).
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import List, Optional

from repro.perf.snapshot import SNAPSHOT_ENV, SNAPSHOT_MODES
from repro.perf.sweeps import WORKERS_ENV, parallel_map, resolve_workers
from repro.sim.trace import RECORD_MODES

RESULTS_DIR = Path(__file__).parent / "results"

#: The committed perf trajectory lives at the repository root.
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_kernel.json"

#: The committed cluster-simulation perf trajectory (same format,
#: separate file: cluster throughput moves independently of the
#: single-kernel hot path).
CLUSTER_TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_cluster.json"

#: The committed sweep-speedup trajectory (cold vs snapshot wall clock
#: on the canonical shared-prefix sweeps).
SWEEPS_TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_sweeps.json"

#: Explicit registry of every benchmark: name -> invocation style.
#: ``"cli"`` modules expose ``main(argv) -> int`` and are called
#: in-process by ``reproduce bench``; ``"pytest"`` modules are
#: collected as test files.  Every ``bench_<name>.py`` in this
#: directory MUST appear here (enforced by a test) -- discovery by
#: source-grepping is gone.
BENCHMARKS = {
    "ablations": "pytest",
    "cluster": "cli",
    "cyclic": "pytest",
    "faults": "cli",
    "fieldbus": "pytest",
    "fig11": "pytest",
    "fig3": "pytest",
    "fig4": "pytest",
    "fig5": "pytest",
    "footprint": "pytest",
    "ipc": "pytest",
    "kernel_overhead": "pytest",
    "net_faults": "cli",
    "obs": "cli",
    "sweeps": "cli",
    "table1": "pytest",
    "table2_fig2": "pytest",
    "table3": "pytest",
    "validation": "pytest",
}


def bench_workloads() -> int:
    """Workloads per figure point (paper: 500)."""
    return int(os.environ.get("REPRO_BENCH_WORKLOADS", "25"))


def bench_task_counts() -> List[int]:
    """Task counts for the Figures 3-5 x axis (paper: 5..50)."""
    raw = os.environ.get("REPRO_BENCH_TASKCOUNTS", "")
    if raw:
        return [int(x) for x in raw.split(",")]
    return list(range(5, 51, 5))


def bench_workers() -> int:
    """Worker processes for parallel sweeps (1 = serial, 0 = per CPU)."""
    return resolve_workers(None)


def bench_record_mode() -> str:
    """Trace recording mode for live-kernel benchmark runs."""
    mode = os.environ.get("REPRO_BENCH_RECORD", "jobs-only")
    if mode not in RECORD_MODES:
        raise ValueError(
            f"REPRO_BENCH_RECORD={mode!r}: expected one of {RECORD_MODES}"
        )
    return mode


def bench_seed(default: int = 0) -> int:
    """Base RNG seed for seeded sweeps."""
    raw = os.environ.get("REPRO_BENCH_SEED", "")
    return int(raw) if raw else default


def bench_out_dir() -> Path:
    """Directory rendered benchmark output is persisted into."""
    raw = os.environ.get("REPRO_BENCH_OUT", "")
    return Path(raw) if raw else RESULTS_DIR


def trajectory_path() -> Path:
    """The perf trajectory file benchmark runs append to."""
    raw = os.environ.get("REPRO_BENCH_TRAJECTORY", "")
    return Path(raw) if raw else TRAJECTORY_PATH


def cluster_trajectory_path() -> Path:
    """The cluster perf trajectory file (``BENCH_cluster.json``)."""
    raw = os.environ.get("REPRO_BENCH_CLUSTER_TRAJECTORY", "")
    return Path(raw) if raw else CLUSTER_TRAJECTORY_PATH


def sweeps_trajectory_path() -> Path:
    """The sweep-speedup trajectory file (``BENCH_sweeps.json``)."""
    raw = os.environ.get("REPRO_BENCH_SWEEPS_TRAJECTORY", "")
    return Path(raw) if raw else SWEEPS_TRAJECTORY_PATH


def bench_obs_mode() -> Optional[str]:
    """Observability mode for live-kernel runs (None = off)."""
    from repro.obs.collector import OBS_MODES

    raw = os.environ.get("REPRO_BENCH_OBS", "")
    if not raw:
        return None
    if raw not in OBS_MODES:
        raise ValueError(
            f"REPRO_BENCH_OBS={raw!r}: expected one of {OBS_MODES}"
        )
    return raw


def dump_obs_artifacts(name: str, kernel, trace) -> Optional[Path]:
    """Write the observability artifacts of one benchmark run.

    When the kernel has a collector attached, writes
    ``<name>.metrics.json``, ``<name>.prom``, and (full recording
    only) ``<name>.trace.json`` -- the Perfetto-loadable Chrome trace
    -- under the benchmark output directory.  Returns that directory,
    or None when observation is off.
    """
    collector = getattr(kernel, "obs", None)
    if collector is None:
        return None
    from repro.obs.tracer import export_chrome_trace

    out = bench_out_dir()
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{name}.metrics.json").write_text(collector.metrics_json() + "\n")
    (out / f"{name}.prom").write_text(collector.metrics_prometheus())
    if trace is not None and trace.record == "full":
        export_chrome_trace(out / f"{name}.trace.json", trace, collector)
    return out


def bench_arg_parser(description: Optional[str] = None) -> argparse.ArgumentParser:
    """The shared CLI for standalone benchmark scripts.

    Flags mirror the environment knobs; :func:`apply_bench_args` writes
    the parsed values back into the environment, so library code that
    consults ``bench_workers()`` etc. sees the flags too.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--seed", type=int, default=None, help="base RNG seed for the sweep"
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="directory for rendered results (default benchmarks/results/)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default 1 = serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--record", choices=RECORD_MODES, default=None,
        help="trace recording mode for live-kernel runs",
    )
    parser.add_argument(
        "--obs", choices=("counters", "full"), default=None,
        help="attach an observability collector to live-kernel runs",
    )
    parser.add_argument(
        "--snapshot", choices=SNAPSHOT_MODES, default=None,
        help="snapshot mechanism for shared-prefix sweeps "
             "(auto = fork where available; cold disables prefix reuse)",
    )
    return parser


def apply_bench_args(args: argparse.Namespace) -> argparse.Namespace:
    """Publish parsed shared flags into the environment knobs."""
    if getattr(args, "seed", None) is not None:
        os.environ["REPRO_BENCH_SEED"] = str(args.seed)
    if getattr(args, "out", None) is not None:
        os.environ["REPRO_BENCH_OUT"] = str(args.out)
    if getattr(args, "workers", None) is not None:
        if args.workers < 0:
            raise SystemExit(f"--workers must be non-negative (got {args.workers})")
        os.environ[WORKERS_ENV] = str(args.workers)
    if getattr(args, "record", None) is not None:
        os.environ["REPRO_BENCH_RECORD"] = args.record
    if getattr(args, "obs", None) is not None:
        os.environ["REPRO_BENCH_OBS"] = args.obs
    if getattr(args, "snapshot", None) is not None:
        os.environ[SNAPSHOT_ENV] = args.snapshot
    return args


def sweep_map(fn, items, chunksize: Optional[int] = None):
    """Map a sweep over its points with the configured worker count.

    Thin wrapper over :func:`repro.perf.sweeps.parallel_map`; results
    are bit-identical to the serial run at any worker count.
    """
    return parallel_map(fn, items, workers=bench_workers(), chunksize=chunksize)


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under the output dir."""
    out = bench_out_dir()
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
