"""Observability overhead bound + export determinism checks.

Enforces the observability layer's two contracts on the canonical
``bench_kernel_overhead`` workload (n = 20, EDF / RM / CSD-3):

1. **Cost**: attaching a counters-mode collector costs < 10% of
   throughput versus observation disabled.  Both sides are measured
   best-of-N (GC suspended inside the timed sections, same discipline
   as the perf trajectory) so scheduler noise cannot flip the verdict.

2. **Behavior**: the full-mode trace signatures of the three policy
   runs are byte-identical to the last committed baseline in
   ``BENCH_kernel.json`` -- observation must never change what the
   kernel *does* -- and the metrics export is byte-identical across
   two runs.

With ``--obs`` (or ``REPRO_BENCH_OBS``) set, the run also dumps the
metrics/trace artifacts via :func:`common.dump_obs_artifacts`.
``--smoke`` shrinks the repetitions for CI.
"""

import json

from common import (
    apply_bench_args,
    bench_arg_parser,
    bench_obs_mode,
    dump_obs_artifacts,
    publish,
    trajectory_path,
)
from repro.analysis import format_table

#: The enforced counters-mode overhead bound (fraction of throughput).
MAX_OVERHEAD = 0.10


def measure_overhead(repeats: int):
    """Best-of-``repeats`` throughput with and without counters.

    The two configurations are measured in *interleaved* pairs (off,
    counters, off, counters, ...): measuring all of one side first
    lets CPU frequency drift during the run masquerade as overhead.

    Returns ``(base_ns_per_s, counters_ns_per_s, overhead_fraction)``;
    the overhead fraction is positive when counters cost throughput.
    """
    from repro.perf.workloads import run_throughput

    best = {None: 0.0, "counters": 0.0}
    for _ in range(max(1, repeats)):
        for obs in (None, "counters"):
            rate = run_throughput("jobs-only", obs=obs).throughput_sim_ns_per_s
            if rate > best[obs]:
                best[obs] = rate
    base, counters = best[None], best["counters"]
    return base, counters, (base - counters) / base


def check_signatures():
    """Full-mode signatures vs the last committed baseline.

    Returns ``(rows, mismatches)`` for the report table; silently
    passes (empty rows) when no baseline entry carries signatures.
    """
    from repro.perf.workloads import full_signatures

    path = trajectory_path()
    baseline = None
    if path.exists():
        entries = json.loads(path.read_text())
        baseline = next(
            (
                e["signatures_full"]
                for e in reversed(entries)
                if e.get("signatures_full")
            ),
            None,
        )
    if baseline is None:
        return [], 0
    current = full_signatures()
    rows, mismatches = [], 0
    for policy in sorted(current):
        match = baseline.get(policy) == current[policy]
        mismatches += 0 if match else 1
        rows.append([policy, current[policy][:16], "OK" if match else "MISMATCH"])
    return rows, mismatches


def check_export_determinism() -> bool:
    """Two demo runs must produce byte-identical exports."""
    from repro.obs.scenarios import demo_metrics_fingerprint

    return demo_metrics_fingerprint("standard") == demo_metrics_fingerprint(
        "standard"
    )


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="fewer repetitions for CI"
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="throughput repetitions per side (default 10, smoke 6)",
    )
    args = apply_bench_args(parser.parse_args(argv))
    repeats = args.repeats or (6 if args.smoke else 10)

    base, counters, overhead = measure_overhead(repeats)
    sig_rows, mismatches = check_signatures()
    deterministic = check_export_determinism()

    lines = [
        f"Observability overhead (best of {repeats}, canonical workload):",
        format_table(
            ["config", "sim ns / wall s"],
            [
                ["observation off", f"{base / 1e9:.2f}e9"],
                ["counters mode", f"{counters / 1e9:.2f}e9"],
            ],
        ),
        f"counters-mode overhead: {100 * overhead:+.1f}% "
        f"(bound: < {100 * MAX_OVERHEAD:.0f}%)",
        f"export determinism (two identical demo runs): "
        f"{'OK' if deterministic else 'FAILED'}",
    ]
    if sig_rows:
        lines.append(
            format_table(
                ["policy", "signature", "vs baseline"],
                sig_rows,
                title="full-mode trace signatures",
            )
        )
    publish("obs_overhead", "\n".join(lines))

    if bench_obs_mode() is not None:
        from repro.sim.kernelsim import simulate_workload
        from repro.perf.workloads import overhead_workload
        from repro.timeunits import ms

        kernel, trace = simulate_workload(
            overhead_workload(), "edf", duration=ms(200),
            record="full", obs=bench_obs_mode(),
        )
        out = dump_obs_artifacts("obs_canonical", kernel, trace)
        print(f"observability artifacts written under {out}")

    failed = []
    if overhead >= MAX_OVERHEAD:
        failed.append(
            f"counters-mode overhead {100 * overhead:.1f}% "
            f">= {100 * MAX_OVERHEAD:.0f}% bound"
        )
    if mismatches:
        failed.append(f"{mismatches} trace signature(s) moved vs baseline")
    if not deterministic:
        failed.append("metrics export differed between identical runs")
    for reason in failed:
        print(f"FAILED: {reason}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
