"""Observability overhead bound + export determinism checks.

Enforces the observability layer's two contracts on the canonical
``bench_kernel_overhead`` workload (n = 20, EDF / RM / CSD-3):

1. **Cost**: attaching a counters-mode collector costs < 10% of
   throughput versus observation disabled.  Both sides are measured
   best-of-N (GC suspended inside the timed sections, same discipline
   as the perf trajectory) so scheduler noise cannot flip the verdict.

2. **Behavior**: the full-mode trace signatures of the three policy
   runs are byte-identical to the last committed baseline in
   ``BENCH_kernel.json`` -- observation must never change what the
   kernel *does* -- and the metrics export is byte-identical across
   two runs.

With ``--obs`` (or ``REPRO_BENCH_OBS``) set, the run also dumps the
metrics/trace artifacts via :func:`common.dump_obs_artifacts`.
``--smoke`` shrinks the repetitions for CI.

``--cluster`` switches to the *cluster* instrumentation bound: arming
cluster-wide tracing (bus event log, per-interface rx logs, and
counters-mode collectors on every node) on the canonical ring workload
must cost < 10% of throughput versus an uninstrumented run, measured
with the same interleaved best-of discipline.
"""

import json

from common import (
    apply_bench_args,
    bench_arg_parser,
    bench_obs_mode,
    dump_obs_artifacts,
    publish,
    trajectory_path,
)
from repro.analysis import format_table

#: The enforced counters-mode overhead bound (fraction of throughput).
MAX_OVERHEAD = 0.10


def measure_overhead(repeats: int):
    """Best-of-``repeats`` throughput with and without counters.

    The two configurations are measured in *interleaved* pairs (off,
    counters, off, counters, ...): measuring all of one side first
    lets CPU frequency drift during the run masquerade as overhead.

    Returns ``(base_ns_per_s, counters_ns_per_s, overhead_fraction)``;
    the overhead fraction is positive when counters cost throughput.
    """
    from repro.perf.workloads import run_throughput

    best = {None: 0.0, "counters": 0.0}
    for _ in range(max(1, repeats)):
        for obs in (None, "counters"):
            rate = run_throughput("jobs-only", obs=obs).throughput_sim_ns_per_s
            if rate > best[obs]:
                best[obs] = rate
    base, counters = best[None], best["counters"]
    return base, counters, (base - counters) / base


#: ``--cluster`` ring configuration (matches the CI smoke budget).
CLUSTER_NODES = 4
CLUSTER_UTILIZATION = 0.5


def _cluster_rate(instrument: bool, horizon_ns: int) -> float:
    """One timed ring run; sim-ns per wall-second.

    ``instrument=True`` arms the full cluster observability path --
    bus event log, per-interface rx logs, and a counters-mode
    collector per node -- exactly what ``reproduce cluster-trace``
    enables (full-mode collectors are the known-expensive debugging
    tier, same as the kernel-side bound).
    """
    import gc
    import time

    from repro.perf.clusterload import build_ring_cluster

    cluster = build_ring_cluster(
        CLUSTER_NODES, CLUSTER_UTILIZATION, "adaptive", record="jobs-only"
    )
    if instrument:
        from repro.obs.cluster_trace import enable_cluster_tracing

        enable_cluster_tracing(cluster, obs="counters")
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        cluster.run_until(horizon_ns)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    cluster.close()
    return horizon_ns / wall if wall > 0 else 0.0


def measure_cluster_overhead(repeats: int, horizon_ns: int):
    """Best-of-``repeats`` ring throughput with and without tracing.

    Interleaved pairs, like :func:`measure_overhead`.  Returns
    ``(base_ns_per_s, traced_ns_per_s, overhead_fraction)``.
    """
    best = {False: 0.0, True: 0.0}
    for _ in range(max(1, repeats)):
        for instrument in (False, True):
            rate = _cluster_rate(instrument, horizon_ns)
            if rate > best[instrument]:
                best[instrument] = rate
    base, traced = best[False], best[True]
    return base, traced, (base - traced) / base


def run_cluster_bound(repeats: int, horizon_ns: int) -> int:
    """The ``--cluster`` entry: enforce the cluster tracing bound."""
    base, traced, overhead = measure_cluster_overhead(repeats, horizon_ns)
    lines = [
        f"Cluster tracing overhead (best of {repeats}, "
        f"{CLUSTER_NODES}-node ring, u={CLUSTER_UTILIZATION:g}):",
        format_table(
            ["config", "sim ns / wall s"],
            [
                ["tracing off", f"{base / 1e9:.2f}e9"],
                ["bus log + rx logs + counters", f"{traced / 1e9:.2f}e9"],
            ],
        ),
        f"cluster tracing overhead: {100 * overhead:+.1f}% "
        f"(bound: < {100 * MAX_OVERHEAD:.0f}%)",
    ]
    publish("obs_cluster_overhead", "\n".join(lines))
    if overhead >= MAX_OVERHEAD:
        print(
            f"FAILED: cluster tracing overhead {100 * overhead:.1f}% "
            f">= {100 * MAX_OVERHEAD:.0f}% bound"
        )
        return 1
    return 0


def check_signatures():
    """Full-mode signatures vs the last committed baseline.

    Returns ``(rows, mismatches)`` for the report table; silently
    passes (empty rows) when no baseline entry carries signatures.
    """
    from repro.perf.workloads import full_signatures

    path = trajectory_path()
    baseline = None
    if path.exists():
        entries = json.loads(path.read_text())
        baseline = next(
            (
                e["signatures_full"]
                for e in reversed(entries)
                if e.get("signatures_full")
            ),
            None,
        )
    if baseline is None:
        return [], 0
    current = full_signatures()
    rows, mismatches = [], 0
    for policy in sorted(current):
        match = baseline.get(policy) == current[policy]
        mismatches += 0 if match else 1
        rows.append([policy, current[policy][:16], "OK" if match else "MISMATCH"])
    return rows, mismatches


def check_export_determinism() -> bool:
    """Two demo runs must produce byte-identical exports."""
    from repro.obs.scenarios import demo_metrics_fingerprint

    return demo_metrics_fingerprint("standard") == demo_metrics_fingerprint(
        "standard"
    )


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="fewer repetitions for CI"
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="throughput repetitions per side (default 10, smoke 6)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="enforce the cluster tracing overhead bound instead",
    )
    args = apply_bench_args(parser.parse_args(argv))
    repeats = args.repeats or (6 if args.smoke else 10)

    if args.cluster:
        from repro.timeunits import ms

        cluster_repeats = args.repeats or (3 if args.smoke else 5)
        return run_cluster_bound(
            cluster_repeats, ms(100 if args.smoke else 300)
        )

    base, counters, overhead = measure_overhead(repeats)
    sig_rows, mismatches = check_signatures()
    deterministic = check_export_determinism()

    lines = [
        f"Observability overhead (best of {repeats}, canonical workload):",
        format_table(
            ["config", "sim ns / wall s"],
            [
                ["observation off", f"{base / 1e9:.2f}e9"],
                ["counters mode", f"{counters / 1e9:.2f}e9"],
            ],
        ),
        f"counters-mode overhead: {100 * overhead:+.1f}% "
        f"(bound: < {100 * MAX_OVERHEAD:.0f}%)",
        f"export determinism (two identical demo runs): "
        f"{'OK' if deterministic else 'FAILED'}",
    ]
    if sig_rows:
        lines.append(
            format_table(
                ["policy", "signature", "vs baseline"],
                sig_rows,
                title="full-mode trace signatures",
            )
        )
    publish("obs_overhead", "\n".join(lines))

    if bench_obs_mode() is not None:
        from repro.sim.kernelsim import simulate_workload
        from repro.perf.workloads import overhead_workload
        from repro.timeunits import ms

        kernel, trace = simulate_workload(
            overhead_workload(), "edf", duration=ms(200),
            record="full", obs=bench_obs_mode(),
        )
        out = dump_obs_artifacts("obs_canonical", kernel, trace)
        print(f"observability artifacts written under {out}")

    failed = []
    if overhead >= MAX_OVERHEAD:
        failed.append(
            f"counters-mode overhead {100 * overhead:.1f}% "
            f">= {100 * MAX_OVERHEAD:.0f}% bound"
        )
    if mismatches:
        failed.append(f"{mismatches} trace signature(s) moved vs baseline")
    if not deterministic:
        failed.append("metrics export differed between identical runs")
    for reason in failed:
        print(f"FAILED: {reason}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
