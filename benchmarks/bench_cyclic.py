"""Section 5's motivation: cyclic executives vs priority scheduling.

Not a numbered figure, but the paper's three claims against cyclic
time-slice scheduling open Section 5 and justify CSD's existence.
This benchmark makes each claim measurable:

1. schedule tables blow up when periods are relatively prime
   ("wasting scarce memory resources" -- on a 32-128 KB part!);
2. high-priority aperiodic work waits for frame slack, where a
   priority scheduler dispatches it immediately;
3. workloads that priority schedulers handle trivially can have no
   legal cyclic schedule at all.
"""

import pytest

from common import publish
from repro.analysis import format_table
from repro.core.cyclic import CyclicScheduleError, build_cyclic_schedule
from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel
from repro.core.task import TaskSpec, Workload
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program
from repro.timeunits import ms, to_ms, us


def wl(*pairs_ms):
    return Workload(
        TaskSpec(name=f"t{i}", period=ms(p), wcet=ms(c))
        for i, (p, c) in enumerate(pairs_ms)
    )


def test_table_size_blowup(benchmark):
    def measure():
        rows = []
        cases = [
            ("harmonic 10/20/40", wl((10, 1), (20, 2), (40, 2))),
            ("mixed 10/25/50", wl((10, 1), (25, 2), (50, 2))),
            ("prime 7/11/13", wl((7, 1), (11, 1), (13, 1))),
            ("prime 7/11/13/17", wl((7, 1), (11, 1), (13, 1), (17, 1))),
        ]
        for name, w in cases:
            try:
                schedule = build_cyclic_schedule(w)
                rows.append(
                    [
                        name,
                        f"{to_ms(schedule.hyperperiod):.0f}",
                        schedule.table_entries,
                        schedule.table_bytes,
                    ]
                )
            except CyclicScheduleError as exc:
                rows.append([name, "-", "-", f"UNSCHEDULABLE ({exc})"])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish(
        "cyclic_table_size",
        format_table(
            ["workload", "hyperperiod (ms)", "table entries", "table bytes"],
            rows,
            title=(
                "Cyclic executive table size (paper Sec. 5: relatively prime "
                "periods waste scarce memory; target RAM is 32-128 KB)"
            ),
        ),
    )
    # The prime-period table dwarfs the harmonic one.
    harmonic_bytes = rows[0][3]
    prime_bytes = rows[3][3]
    assert isinstance(prime_bytes, int)
    assert prime_bytes > 20 * harmonic_bytes


def test_aperiodic_response(benchmark):
    """Aperiodic response: frame slack vs immediate priority dispatch."""
    w = wl((10, 4), (20, 8))  # U = 0.8
    aperiodic_cost = ms(2)

    def measure():
        schedule = build_cyclic_schedule(w)
        cyclic_response = schedule.worst_case_aperiodic_response(aperiodic_cost)

        # The same aperiodic job under EDF with a tight deadline: build
        # the periodic load, release the aperiodic at the worst phase
        # (right after both periodic releases), measure completion.
        kernel = Kernel(EDFScheduler(OverheadModel()))
        for t in w:
            kernel.create_thread(t.name, Program([Compute(t.wcet)]), period=t.period)
        kernel.create_thread(
            "aperiodic", Program([Compute(aperiodic_cost)]),
            priority=0, deadline=ms(5),
        )
        kernel.activate("aperiodic", at=us(10))
        trace = kernel.run_until(ms(100))
        job = trace.jobs_of("aperiodic")[0]
        return cyclic_response, job.response_time

    cyclic_response, priority_response = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    publish(
        "cyclic_aperiodic",
        format_table(
            ["scheduler", "worst-case aperiodic response (ms)"],
            [
                ["cyclic executive (frame slack)", f"{to_ms(cyclic_response):.1f}"],
                ["EDF kernel (priority dispatch)", f"{to_ms(priority_response):.2f}"],
            ],
            title="Aperiodic response to a 2 ms job, U = 0.8 periodic load",
        ),
    )
    assert cyclic_response > 2 * priority_response


def test_brittleness(benchmark):
    """Workloads any priority scheduler handles can defeat the cyclic
    executive entirely (no legal frame / table too large)."""
    from repro.core.schedulability import edf_schedulable

    w = wl((9.97, 0.5), (11.19, 0.5), (13.01, 0.5), (17.03, 0.5))

    def measure():
        edf_ok = edf_schedulable(w)
        try:
            build_cyclic_schedule(w)
            cyclic_ok = True
        except CyclicScheduleError:
            cyclic_ok = False
        return edf_ok, cyclic_ok

    edf_ok, cyclic_ok = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish(
        "cyclic_brittleness",
        f"EDF schedulable: {edf_ok}; cyclic executive schedulable: {cyclic_ok} "
        "(U = 0.17, but the periods are nearly relatively prime)",
    )
    assert edf_ok and not cyclic_ok
