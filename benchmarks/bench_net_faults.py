"""Dependable-fieldbus sweep: delivery ratio and staleness vs drop rate.

An extension beyond the paper (EMERALDS defers inter-node protocols to
its companion work): the network chaos harness of
:func:`repro.faults.chaos.run_net_chaos` replicates a sequenced state
channel across a 4-node cluster while a seeded Bernoulli fault hook
drops frames on the wire, once with bounded CAN retransmission armed
and once with retries disabled.  The table reports, per (drop rate,
retries) cell averaged over seeds: the worst replica's delivery ratio,
retransmissions and exhausted retries, error frames, sequence gaps,
stale episodes, and the worst observed replica staleness and
publish-to-apply latency.

The headline rows: with retries the delivery ratio stays 1.0 through
drop rates of 10% (every lost frame is re-sent within the bound, at a
measurable latency cost); with retries disabled the ratio tracks
``1 - p`` and replicas accumulate sequence gaps.

Each (drop rate, retries, seed) case is an independent seeded
simulation, so the sweep fans out over ``--workers`` processes
(results identical to the serial run).  ``--smoke`` shrinks the sweep
for CI and *asserts* the retransmission guarantee (exit code 1 on
violation) -- the ``net-chaos-smoke`` CI job runs exactly that.

With ``--warmup-ms`` the wire faults arm only after a loss-free
warm-up; cases with the same retry bound then share that warm-up
cluster, simulated once and restored per point through
:func:`repro.perf.sweeps.prefix_map` (``--snapshot`` picks the
mechanism; byte-identical to cold-starting each point).
"""

import statistics
from typing import Tuple

from common import apply_bench_args, bench_arg_parser, publish, sweep_map
from repro.analysis import format_table
from repro.faults.chaos import net_chaos_continue, net_chaos_prefix, run_net_chaos
from repro.perf.sweeps import PrefixSpec, prefix_map
from repro.timeunits import ms, to_ms, to_us

#: Retransmission bound when retries are on (the CAN-ish default).
RETRY_BOUND = 8


def _avg_wait_us(result) -> float:
    """Mean wire wait per delivered frame (us) -- the latency price of
    retransmission traffic occupying the bus."""
    if not result.frames_delivered:
        return 0.0
    return result.arbitration_wait_ns / result.frames_delivered / 1000.0


def make_cases(drop_ps, seeds, duration_ns, warmup_ns=0):
    """The sweep grid: one case per (drop rate, retries, seed)."""
    return [
        (drop_p, retries, seed, duration_ns, warmup_ns)
        for drop_p in drop_ps
        for retries in (RETRY_BOUND, 0)
        for seed in seeds
    ]


def _net_case(case: Tuple[float, int, int, int, int]):
    """One seeded network chaos run, cold-started; module-level so
    worker processes can import it.  Determinism rides on the seed
    inside the case."""
    drop_p, retries, seed, duration_ns, warmup_ns = case
    return run_net_chaos(
        seed,
        duration_ns,
        drop_p=drop_p,
        dependability=True,
        max_retransmits=retries,
        faults_from=warmup_ns,
    )


def _net_plan(case: Tuple[float, int, int, int, int]):
    """Shared-prefix plan for one case: cases with the same retry
    bound (and horizon) share the loss-free warm-up cluster."""
    drop_p, retries, seed, duration_ns, warmup_ns = case
    spec = PrefixSpec(
        key=("netchaos", retries, duration_ns, warmup_ns),
        t_split=warmup_ns,
        build=lambda: net_chaos_prefix(
            duration_ns,
            dependability=True,
            max_retransmits=retries,
            t_split=warmup_ns,
        ),
    )

    def continuation(state):
        return net_chaos_continue(
            state, seed, drop_p=drop_p, faults_from=warmup_ns
        )

    return spec, continuation


def run_cases(cases, snapshot=None):
    """Execute the grid: shared-prefix planner when a warm-up makes
    prefixes shareable, the classic parallel cold sweep otherwise."""
    if any(case[4] > 0 for case in cases):
        return prefix_map(_net_plan, cases, mode=snapshot)
    return sweep_map(_net_case, cases)


def sweep(drop_ps, seeds, duration_ns, warmup_ns=0, snapshot=None):
    cases = make_cases(drop_ps, seeds, duration_ns, warmup_ns)
    outcomes = run_cases(cases, snapshot)
    rows = []
    per_seed = len(seeds)
    for index in range(0, len(cases), per_seed):
        drop_p, retries, _, _, _ = cases[index]
        results = outcomes[index:index + per_seed]
        rows.append(
            [
                f"{drop_p:g}",
                "yes" if retries else "no",
                f"{min(r.delivery_ratio for r in results):.3f}",
                f"{statistics.mean(r.frames_retransmitted for r in results):.1f}",
                f"{statistics.mean(r.retransmits_exhausted for r in results):.1f}",
                f"{statistics.mean(r.error_frames for r in results):.1f}",
                f"{statistics.mean(r.seq_gaps for r in results):.1f}",
                f"{statistics.mean(r.stale_episodes for r in results):.1f}",
                f"{to_ms(max(r.worst_staleness_ns for r in results)):.1f}",
                f"{to_us(max(r.worst_latency_ns for r in results)):.0f}",
                f"{statistics.mean(_avg_wait_us(r) for r in results):.1f}",
            ]
        )
    return rows, outcomes, cases


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sweep for CI; asserts ratio 1.0 with retries at p<=0.1",
    )
    parser.add_argument(
        "--warmup-ms", type=int, default=0,
        help="loss-free warm-up before the wire faults arm; cases "
             "sharing a warm-up reuse one snapshotted prefix (default "
             "0 = the classic cold sweep)",
    )
    args = apply_bench_args(parser.parse_args(argv))
    if args.warmup_ms < 0:
        raise SystemExit(f"--warmup-ms must be non-negative (got {args.warmup_ms})")
    if args.smoke:
        drop_ps, seeds, duration = (0.0, 0.05, 0.1), (1, 2), ms(300)
    else:
        drop_ps, seeds, duration = (
            (0.0, 0.02, 0.05, 0.1, 0.2, 0.3), (1, 2, 3, 4, 5), ms(1000)
        )
    warmup = ms(args.warmup_ms)
    if warmup >= duration:
        raise SystemExit(
            f"--warmup-ms {args.warmup_ms} leaves no room for faults "
            f"inside the {to_ms(duration):.0f} ms horizon"
        )
    rows, outcomes, cases = sweep(drop_ps, seeds, duration, warmup)
    header = [
        "drop p",
        "retries",
        "min ratio",
        "retx",
        "exhausted",
        "err frames",
        "seq gaps",
        "stale",
        "worst age ms",
        "worst lat us",
        "avg wait us",
    ]
    warmup_note = (
        f", faults armed after {to_ms(warmup):.0f} ms warm-up" if warmup else ""
    )
    text = (
        f"Fieldbus dependability sweep: 4 nodes, {len(seeds)} seeds x "
        f"{to_ms(duration):.0f} ms, retry bound {RETRY_BOUND}{warmup_note}\n"
        + format_table(header, rows)
    )
    publish("net_fault_sweep", text)

    # The retransmission guarantee the CI smoke job enforces: every
    # update reaches every replica when retries are armed and the drop
    # rate stays at or below 10%.
    violations = [
        (case[0], case[2], result.delivery_ratio)
        for case, result in zip(cases, outcomes)
        if case[1] and case[0] <= 0.1 and result.delivery_ratio < 1.0
    ]
    if violations:
        for drop_p, seed, ratio in violations:
            print(
                f"FAIL: delivery ratio {ratio:.3f} < 1.0 with retries at "
                f"p={drop_p:g} seed={seed}"
            )
        return 1
    print("retransmission guarantee held: ratio 1.0 with retries at p <= 0.1")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
