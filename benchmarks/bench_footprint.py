"""Memory-footprint accounting against the 32-128 KB target parts.

The paper's code-size claim ("a rich set of OS services in just 13
kbytes") cannot be reproduced in Python, but the *data* side of the
small-memory budget can: the RAM the kernel's objects occupy on the
modeled part.  This benchmark accounts every example application and
checks the whole repo's applications stay inside the paper's memory
envelope -- plus the mailbox-vs-state-message memory trade-off.
"""

import importlib
import sys
from pathlib import Path

from common import publish
from repro.analysis import format_table
from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.footprint import KERNEL_CODE_BYTES, kernel_footprint
from repro.kernel.kernel import Kernel

sys.path.insert(0, str(Path(__file__).parent.parent / "examples"))


def test_example_footprints(benchmark):
    def account():
        rows = []
        for name in ("quickstart", "engine_control", "voice_pipeline"):
            module = importlib.import_module(name)
            if name == "engine_control":
                kernel = module.build_kernel("emeralds")
            else:
                kernel = module.build_kernel()
            report = kernel_footprint(kernel)
            rows.append(
                [
                    name,
                    report.data_bytes,
                    report.total_bytes,
                    "yes" if report.fits(32 * 1024) else "NO",
                    "yes" if report.fits(128 * 1024) else "NO",
                ]
            )
        return rows

    rows = benchmark.pedantic(account, rounds=1, iterations=1)
    publish(
        "footprint",
        format_table(
            ["application", "data (B)", "code+data (B)", "fits 32 KB", "fits 128 KB"],
            rows,
            title=(
                f"Memory footprint (kernel code {KERNEL_CODE_BYTES} B, the "
                "paper's 13 KB): the Section 2 parts have 32-128 KB total"
            ),
        ),
    )
    # Everything must fit the paper's top-end part; the modest apps
    # must fit the bottom-end part too.
    assert all(r[4] == "yes" for r in rows)
    assert rows[0][3] == "yes"  # quickstart fits 32 KB


def test_state_message_memory_tradeoff(benchmark):
    """Distributing one value to k readers: k mailboxes of depth d vs
    one N-slot channel.  The state message wins on RAM too."""

    def account():
        rows = []
        for readers in (2, 4, 8):
            mk = Kernel(EDFScheduler(ZERO_OVERHEAD))
            for i in range(readers):
                mk.create_mailbox(f"m{i}", capacity=4, max_message_size=16)
            mailbox_bytes = kernel_footprint(mk).data_bytes

            sk = Kernel(EDFScheduler(ZERO_OVERHEAD))
            sk.create_channel("c", slots=4)
            state_bytes = kernel_footprint(sk).data_bytes
            rows.append([readers, mailbox_bytes, state_bytes])
        return rows

    rows = benchmark.pedantic(account, rounds=1, iterations=1)
    publish(
        "footprint_ipc",
        format_table(
            ["readers", "k mailboxes (B)", "one state channel (B)"],
            rows,
            title="RAM to distribute one value to k readers",
        ),
    )
    for readers, mailbox_bytes, state_bytes in rows:
        assert state_bytes < mailbox_bytes
    # Mailbox memory grows with readers; the channel does not.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] == rows[0][2]
