"""Fault-injection sweep: miss ratio vs fault rate, defended vs bare.

An extension beyond the paper (EMERALDS reports overheads, not fault
tolerance): the chaos harness of :mod:`repro.faults.chaos` runs the
reference control workload under seeded fault storms of increasing
intensity, once with the kernel's overload protection armed (per-job
budgets, bounded restart) and once bare.  The table reports the
deadline-miss ratio, the on-time service ratio of the critical control
task, aborted jobs, and permanently lost threads.

The headline is the high-rate rows: the bare kernel loses crashed
threads forever (service collapses), while the defended kernel aborts
runaway jobs at their budget and restarts crashed threads after a
bounded back-off -- no thread is ever lost.

Each (rate, defenses, seed) case is an independent seeded simulation,
so the sweep fans out over ``--workers`` processes (results identical
to the serial run).  ``--smoke`` shrinks the sweep for CI.

With ``--warmup-ms`` the fault storms arm only after a fault-free
warm-up; all cases with the same defenses then share that warm-up
prefix, which the sweep simulates **once** and restores per point
through :func:`repro.perf.sweeps.prefix_map` (``--snapshot`` selects
the mechanism; results are byte-identical to cold-starting each
point -- see ``bench_sweeps.py`` for the measured speedup).
"""

import statistics
from typing import Tuple

from common import apply_bench_args, bench_arg_parser, publish, sweep_map
from repro.analysis import format_table
from repro.faults.chaos import chaos_continue, chaos_prefix, run_chaos
from repro.perf.sweeps import PrefixSpec, prefix_map
from repro.timeunits import ms, to_ms


def make_cases(rates, seeds, duration_ns, warmup_ns=0):
    """The sweep grid: one case per (rate, defenses, seed)."""
    return [
        (rate, defended, seed, duration_ns, warmup_ns)
        for rate in rates
        for defended in (True, False)
        for seed in seeds
    ]


def _chaos_case(case: Tuple[float, bool, int, int, int]):
    """One seeded chaos run, cold-started; module-level so worker
    processes can import it.  Determinism rides on the seed inside
    the case."""
    rate, defended, seed, duration_ns, warmup_ns = case
    return run_chaos(
        seed,
        duration_ns,
        wcet_overrun_rate=rate,
        crash_rate=rate / 10,
        clock_jitter_rate=rate / 2,
        defenses=defended,
        faults_from=warmup_ns,
    )


def _chaos_plan(case: Tuple[float, bool, int, int, int]):
    """Shared-prefix plan for one case: every case with the same
    defenses shares the fault-free warm-up kernel (rates and seeds
    only matter to the continuation)."""
    rate, defended, seed, duration_ns, warmup_ns = case
    spec = PrefixSpec(
        key=("chaos", defended, warmup_ns),
        t_split=warmup_ns,
        build=lambda: chaos_prefix(defended, t_split=warmup_ns),
    )

    def continuation(kernel):
        return chaos_continue(
            kernel,
            seed,
            duration_ns,
            wcet_overrun_rate=rate,
            crash_rate=rate / 10,
            clock_jitter_rate=rate / 2,
            defenses=defended,
            faults_from=warmup_ns,
        )

    return spec, continuation


def run_cases(cases, snapshot=None):
    """Execute the grid: shared-prefix planner when a warm-up makes
    prefixes shareable, the classic parallel cold sweep otherwise."""
    if any(case[4] > 0 for case in cases):
        return prefix_map(_chaos_plan, cases, mode=snapshot)
    return sweep_map(_chaos_case, cases)


def sweep(rates, seeds, duration_ns, warmup_ns=0, snapshot=None):
    cases = make_cases(rates, seeds, duration_ns, warmup_ns)
    outcomes = run_cases(cases, snapshot)
    rows = []
    per_seed = len(seeds)
    for index in range(0, len(cases), per_seed):
        rate, defended, _, _, _ = cases[index]
        results = outcomes[index:index + per_seed]
        rows.append(
            [
                f"{rate:g}",
                "yes" if defended else "no",
                f"{statistics.mean(r.miss_ratio for r in results):.3f}",
                f"{statistics.mean(r.service_ratio['ctrl'] for r in results):.3f}",
                f"{statistics.mean(min(r.service_ratio.values()) for r in results):.3f}",
                f"{statistics.mean(r.jobs_aborted for r in results):.1f}",
                f"{statistics.mean(len(r.threads_dead) for r in results):.1f}",
                f"{to_ms(round(statistics.mean(r.recovery_ns for r in results))):.1f}",
            ]
        )
    return rows


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sweep for CI"
    )
    parser.add_argument(
        "--warmup-ms", type=int, default=0,
        help="fault-free warm-up before the storms arm; cases sharing "
             "a warm-up reuse one snapshotted prefix (default 0 = the "
             "classic cold sweep)",
    )
    args = apply_bench_args(parser.parse_args(argv))
    if args.warmup_ms < 0:
        raise SystemExit(f"--warmup-ms must be non-negative (got {args.warmup_ms})")
    if args.smoke:
        rates, seeds, duration = (5.0, 50.0), (1, 2), ms(300)
    else:
        rates, seeds, duration = (0.0, 5.0, 10.0, 20.0, 50.0), (1, 2, 3, 4, 5), ms(1000)
    warmup = ms(args.warmup_ms)
    if warmup >= duration:
        raise SystemExit(
            f"--warmup-ms {args.warmup_ms} leaves no room for faults "
            f"inside the {to_ms(duration):.0f} ms horizon"
        )
    rows = sweep(rates, seeds, duration, warmup)
    header = [
        "faults/s",
        "defenses",
        "miss ratio",
        "ctrl svc",
        "min svc",
        "aborted",
        "dead",
        "recovery ms",
    ]
    warmup_note = (
        f", faults armed after {to_ms(warmup):.0f} ms warm-up" if warmup else ""
    )
    text = (
        f"Fault sweep: {len(seeds)} seeds x {to_ms(duration):.0f} ms "
        f"(crash rate = rate/10, jitter rate = rate/2{warmup_note})\n"
        + format_table(header, rows)
    )
    publish("fault_sweep", text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
