"""Fault-injection sweep: miss ratio vs fault rate, defended vs bare.

An extension beyond the paper (EMERALDS reports overheads, not fault
tolerance): the chaos harness of :mod:`repro.faults.chaos` runs the
reference control workload under seeded fault storms of increasing
intensity, once with the kernel's overload protection armed (per-job
budgets, bounded restart) and once bare.  The table reports the
deadline-miss ratio, the on-time service ratio of the critical control
task, aborted jobs, and permanently lost threads.

The headline is the high-rate rows: the bare kernel loses crashed
threads forever (service collapses), while the defended kernel aborts
runaway jobs at their budget and restarts crashed threads after a
bounded back-off -- no thread is ever lost.

Each (rate, defenses, seed) case is an independent seeded simulation,
so the sweep fans out over ``--workers`` processes (results identical
to the serial run).  ``--smoke`` shrinks the sweep for CI.
"""

import statistics
from typing import Tuple

from common import apply_bench_args, bench_arg_parser, publish, sweep_map
from repro.analysis import format_table
from repro.faults.chaos import run_chaos
from repro.timeunits import ms, to_ms


def _chaos_case(case: Tuple[float, bool, int, int]):
    """One seeded chaos run; module-level so worker processes can
    import it.  Determinism rides on the seed inside the case."""
    rate, defended, seed, duration_ns = case
    return run_chaos(
        seed,
        duration_ns,
        wcet_overrun_rate=rate,
        crash_rate=rate / 10,
        clock_jitter_rate=rate / 2,
        defenses=defended,
    )


def sweep(rates, seeds, duration_ns):
    cases = [
        (rate, defended, seed, duration_ns)
        for rate in rates
        for defended in (True, False)
        for seed in seeds
    ]
    outcomes = sweep_map(_chaos_case, cases)
    rows = []
    per_seed = len(seeds)
    for index in range(0, len(cases), per_seed):
        rate, defended, _, _ = cases[index]
        results = outcomes[index:index + per_seed]
        rows.append(
            [
                f"{rate:g}",
                "yes" if defended else "no",
                f"{statistics.mean(r.miss_ratio for r in results):.3f}",
                f"{statistics.mean(r.service_ratio['ctrl'] for r in results):.3f}",
                f"{statistics.mean(min(r.service_ratio.values()) for r in results):.3f}",
                f"{statistics.mean(r.jobs_aborted for r in results):.1f}",
                f"{statistics.mean(len(r.threads_dead) for r in results):.1f}",
                f"{to_ms(round(statistics.mean(r.recovery_ns for r in results))):.1f}",
            ]
        )
    return rows


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sweep for CI"
    )
    args = apply_bench_args(parser.parse_args(argv))
    if args.smoke:
        rates, seeds, duration = (5.0, 50.0), (1, 2), ms(300)
    else:
        rates, seeds, duration = (0.0, 5.0, 10.0, 20.0, 50.0), (1, 2, 3, 4, 5), ms(1000)
    rows = sweep(rates, seeds, duration)
    header = [
        "faults/s",
        "defenses",
        "miss ratio",
        "ctrl svc",
        "min svc",
        "aborted",
        "dead",
        "recovery ms",
    ]
    text = (
        f"Fault sweep: {len(seeds)} seeds x {to_ms(duration):.0f} ms "
        "(crash rate = rate/10, jitter rate = rate/2)\n"
        + format_table(header, rows)
    )
    publish("fault_sweep", text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
