"""Table 3: per-case run-time overheads of CSD-3.

The table gives asymptotic costs for the four block/unblock cases by
queue kind (DP1, DP2, FP) with q = |DP1|, r = |DP1| + |DP2|, n = total.
We regenerate it two ways:

* analytically, from the per-period overhead model used by the
  schedulability analysis (the same Section 5.4 case analysis);
* empirically, by driving a live CSD-3 scheduler and measuring the
  *charged* costs of each primitive, then fitting the slopes in q, r,
  and n to confirm each O(.) entry.
"""

import pytest

from common import publish
from repro.analysis import format_table
from repro.core.csd import CSDScheduler
from repro.core.overhead import OverheadModel
from repro.core.queues import Schedulable
from repro.core.schedulability import csd_overhead_per_period
from repro.timeunits import to_us


def build_csd3(q, r, n):
    """CSD-3 with DP1 = q tasks, DP2 = r - q, FP = n - r; all ready."""
    sched = CSDScheduler(OverheadModel(), dp_queue_count=2)
    entries = []
    for i in range(n):
        band = 0 if i < q else (1 if i < r else 2)
        e = Schedulable(f"t{i}", (i, f"t{i}"))
        e.ready = True
        e.abs_deadline = 10_000_000 + i
        e.csd_queue = band
        sched.add_task(e)
        entries.append(e)
    return sched, entries


def measured_costs(q, r, n):
    """Charged (t_b, t_s after block) for one task of each band."""
    sched, entries = build_csd3(q, r, n)
    out = {}
    for band, index in (("DP1", 0), ("DP2", q), ("FP", r)):
        task = entries[index]
        t_b = sched.on_block(task)
        # Worst-case for DP-task blocks: make every DP queue empty of
        # ready tasks except the one the selector must parse.
        _, t_s = sched.select()
        sched.on_unblock(task)
        out[band] = (t_b, t_s)
    return out


def test_table3_structure(benchmark):
    model = OverheadModel()

    def analytic():
        rows = []
        sizes = [8, 12, 20]  # q=8, r=20, n=40
        for band, idx, asymptotic in (
            ("DP1", 0, "O(r)"),
            ("DP2", 1, "O(2r - q)"),
            ("FP", 2, "O(n - q)"),
        ):
            per = csd_overhead_per_period(model, sizes, idx)
            rows.append([band, asymptotic, f"{to_us(per):.1f}"])
        return rows

    rows = benchmark(analytic)
    publish(
        "table3",
        format_table(
            ["band", "paper total", "per-period overhead (us), q=8 r=20 n=40"],
            rows,
            title="Table 3: CSD-3 per-band scheduling overhead",
        ),
    )


def test_dp1_block_is_constant_in_n(benchmark):
    """DP task t_b is O(1): independent of every queue size."""

    def measure():
        small = measured_costs(3, 6, 12)["DP1"][0]
        large = measured_costs(3, 6, 60)["DP1"][0]
        return small, large

    small, large = benchmark(measure)
    assert small == large


def test_fp_block_scales_with_fp_queue(benchmark):
    """FP task t_b is O(n - r): grows with the FP queue only."""
    model = OverheadModel()

    def measure():
        a = measured_costs(3, 6, 16)["FP"][0]   # fp size 10
        b = measured_costs(3, 6, 26)["FP"][0]   # fp size 20
        return a, b

    a, b = benchmark(measure)
    assert b - a == 10 * model.rm_block_per_task_ns


def test_selection_parses_first_live_dp_queue(benchmark):
    """After a DP1 task blocks with DP1 still live, selection parses
    DP1 (O(q)); with DP1 empty it parses DP2 (O(r - q))."""
    model = OverheadModel()

    def measure():
        sched, entries = build_csd3(5, 15, 20)
        # All DP1 ready: block one, selector parses DP1 (len 5).
        sched.on_block(entries[0])
        _, ts_live = sched.select()
        # Now block the rest of DP1: selector must parse DP2 (len 10).
        for e in entries[1:5]:
            sched.on_block(e)
        _, ts_empty = sched.select()
        return ts_live, ts_empty

    ts_live, ts_empty = benchmark(measure)
    parse = 3 * model.queue_parse_ns
    assert ts_live == parse + model.edf_select(5)
    assert ts_empty == parse + model.edf_select(10)


def test_fp_selection_constant_when_no_dp_ready(benchmark):
    model = OverheadModel()

    def measure():
        sched, entries = build_csd3(2, 4, 30)
        for e in entries[:4]:
            sched.on_block(e)
        _, ts = sched.select()
        return ts

    ts = benchmark(measure)
    assert ts == 3 * model.queue_parse_ns + model.rm_select(26)


def test_splitting_reduces_dp1_costs(benchmark):
    """The CSD-3 motivation: splitting the DP queue reduces the
    overhead of the shortest-period tasks (Section 5.5.1)."""
    model = OverheadModel()

    def measure():
        csd2 = csd_overhead_per_period(model, [20, 20], 0)
        csd3 = csd_overhead_per_period(model, [10, 10, 20], 0)
        return csd2, csd3

    csd2, csd3 = benchmark(measure)
    publish(
        "table3_split_gain",
        f"CSD-2 DP-task per-period overhead (r=20): {to_us(csd2):.1f} us\n"
        f"CSD-3 DP1-task per-period overhead (q=10, r=20): {to_us(csd3):.1f} us",
    )
    assert csd3 < csd2
