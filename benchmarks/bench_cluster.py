"""Cluster synchronization sweep: lockstep vs adaptive, nodes x load.

The multi-node analogue of the kernel perf harness: every swept
configuration of the canonical ring-cluster workload
(:mod:`repro.perf.clusterload`) is simulated twice -- once with the
lockstep reference synchronization (every min-frame-time window, every
node) and once with the adaptive conservative synchronization that
jumps over provably silent windows -- and the table reports sim-ns
per wall-second for both, the speedup, the fraction of windows
skipped, and the delivery events suppressed by acceptance
pre-filtering.

Correctness rides along with speed: for every configuration the
full-record traces of both modes are compared -- per-node sha256
signatures (events + jobs + segments), delivery timelines, bus and
interface counters must be **byte-identical**, or the benchmark exits
non-zero.  An optimization that moves these is not an optimization.

The headline configurations feed the persistent ``BENCH_cluster.json``
trajectory (same format and regression gate as ``BENCH_kernel.json``):
the idle-heavy 8-node point (where window skipping dominates) and the
saturated 8-node point (where delivery batching and per-node laziness
carry the win).  ``--quick`` runs just those two configurations, checks
the >= 3x idle-heavy speedup bound and the signature cross-check, and
gates against the committed trajectory -- the ``cluster-perf-smoke``
CI job runs exactly that.

Each (nodes, utilization) case is an independent deterministic
simulation, so the sweep fans out over ``--workers`` processes
(``--workers 1``, the default, is recommended when the *timings*
matter: concurrent workers contend for cores).
"""

import hashlib
import json
from typing import Tuple

from common import (
    apply_bench_args,
    bench_arg_parser,
    cluster_trajectory_path,
    publish,
    sweep_map,
)
from repro.analysis import format_table
from repro.perf.clusterload import (
    CLUSTER_HORIZON_NS,
    SIGNATURE_HORIZON_NS,
    cluster_config,
    cluster_signatures,
    run_cluster_throughput,
)
from repro.perf.trajectory import (
    RegressionError,
    append_entry,
    check_regression,
    config_hash,
    make_entry,
)

#: The full sweep grid.
SWEEP_NODES = (2, 4, 8)
SWEEP_UTILIZATIONS = (0.02, 0.3, 0.9)

#: The two trajectory headline configurations (nodes, utilization).
HEADLINE_IDLE = (8, 0.02)
HEADLINE_SATURATED = (8, 0.9)

#: The acceptance bound --quick enforces on the idle-heavy headline.
MIN_IDLE_SPEEDUP = 3.0


def _signature_digest(snapshot: dict) -> str:
    """One hash over everything that must match between sync modes."""
    canonical = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _cluster_case(case: Tuple[int, float]):
    """One sweep point: both sync modes, timed + behavior-fingerprinted.

    Module-level so worker processes can import it; the workload is
    fully determined by (nodes, utilization).
    """
    nodes, utilization = case
    lockstep = run_cluster_throughput(nodes, utilization, "lockstep")
    adaptive = run_cluster_throughput(nodes, utilization, "adaptive")
    digests = {
        sync: _signature_digest(cluster_signatures(nodes, utilization, sync))
        for sync in ("lockstep", "adaptive")
    }
    return {
        "nodes": nodes,
        "utilization": utilization,
        "lockstep": lockstep,
        "adaptive": adaptive,
        "identical": digests["lockstep"] == digests["adaptive"],
        "digest": digests["adaptive"],
    }


def sweep(cases):
    outcomes = sweep_map(_cluster_case, list(cases))
    rows = []
    for out in outcomes:
        lock, adap = out["lockstep"], out["adaptive"]
        speedup = (
            adap["throughput_sim_ns_per_s"] / lock["throughput_sim_ns_per_s"]
            if lock["throughput_sim_ns_per_s"] else float("inf")
        )
        total_windows = adap["sync_rounds"] + adap["windows_skipped"]
        rows.append(
            [
                str(out["nodes"]),
                f"{out['utilization']:g}",
                f"{lock['throughput_sim_ns_per_s'] / 1e9:.2f}",
                f"{adap['throughput_sim_ns_per_s'] / 1e9:.2f}",
                f"{speedup:.2f}x",
                f"{100 * adap['windows_skipped'] / total_windows:.0f}%"
                if total_windows else "-",
                str(adap["deliveries_suppressed"]),
                "yes" if out["identical"] else "NO",
            ]
        )
    return rows, outcomes


def _trajectory_entries(outcomes, label: str):
    """Trajectory entries for the headline configurations."""
    entries = []
    for out in outcomes:
        if (out["nodes"], out["utilization"]) not in (
            HEADLINE_IDLE,
            HEADLINE_SATURATED,
        ):
            continue
        for sync in ("lockstep", "adaptive"):
            report = out[sync]
            config = cluster_config(
                out["nodes"], out["utilization"], sync,
                horizon_ns=CLUSTER_HORIZON_NS,
            )
            entries.append(
                make_entry(
                    f"{label}/{sync}",
                    dict(report),
                    config,
                    signatures={"cluster": out["digest"]},
                )
            )
    return entries


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="headline configs only; assert the >=3x idle-heavy speedup, "
             "signature identity, and the trajectory regression gate (CI)",
    )
    parser.add_argument(
        "--label", default="bench-cluster",
        help="label recorded on trajectory entries",
    )
    parser.add_argument(
        "--append", metavar="PATH", nargs="?", const="", default=None,
        help="append headline measurements to this trajectory "
             "(default BENCH_cluster.json)",
    )
    parser.add_argument(
        "--check", metavar="PATH", nargs="?", const="", default=None,
        help="fail on >30%% adaptive-throughput regression vs this "
             "trajectory's baseline (default BENCH_cluster.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="allowed fractional throughput drop for --check",
    )
    args = apply_bench_args(parser.parse_args(argv))

    if args.quick:
        cases = [HEADLINE_IDLE, HEADLINE_SATURATED]
    else:
        cases = [(n, u) for n in SWEEP_NODES for u in SWEEP_UTILIZATIONS]

    rows, outcomes = sweep(cases)
    header = [
        "nodes", "util",
        "lockstep Gns/s", "adaptive Gns/s", "speedup",
        "skipped", "suppressed", "identical",
    ]
    text = (
        "Cluster synchronization sweep: ring workload, "
        f"{CLUSTER_HORIZON_NS / 1e9:.0f} s virtual horizon "
        f"(signatures cross-checked at {SIGNATURE_HORIZON_NS / 1e6:.0f} ms, "
        "full recording)\n" + format_table(header, rows)
    )
    publish("cluster_sync_sweep", text)

    failed = False

    mismatched = [o for o in outcomes if not o["identical"]]
    for out in mismatched:
        print(
            f"FAIL: adaptive vs lockstep traces differ at "
            f"nodes={out['nodes']} utilization={out['utilization']:g}"
        )
        failed = True
    if not mismatched:
        print(
            f"signature cross-check: adaptive == lockstep on all "
            f"{len(outcomes)} swept configs"
        )

    idle = next(
        (o for o in outcomes
         if (o["nodes"], o["utilization"]) == HEADLINE_IDLE),
        None,
    )
    if idle is not None:
        speedup = (
            idle["adaptive"]["throughput_sim_ns_per_s"]
            / idle["lockstep"]["throughput_sim_ns_per_s"]
        )
        if args.quick and speedup < MIN_IDLE_SPEEDUP:
            print(
                f"FAIL: idle-heavy 8-node speedup {speedup:.2f}x "
                f"< {MIN_IDLE_SPEEDUP:.1f}x bound"
            )
            failed = True
        else:
            print(f"idle-heavy 8-node speedup: {speedup:.2f}x vs lockstep")

    check = args.check if args.check is not None else ("" if args.quick else None)
    if check is not None and idle is not None:
        path = check or cluster_trajectory_path()
        current = idle["adaptive"]["throughput_sim_ns_per_s"]
        fingerprint = config_hash(
            cluster_config(*HEADLINE_IDLE, "adaptive",
                           horizon_ns=CLUSTER_HORIZON_NS)
        )
        try:
            baseline = check_regression(
                path, current, fingerprint, args.max_regression
            )
        except RegressionError as err:
            print(f"FAIL: {err}")
            failed = True
        else:
            if baseline is None:
                print(f"no comparable baseline in {path}; gate skipped")
            else:
                base = baseline["throughput_sim_ns_per_s"]
                print(
                    f"regression gate: {current / 1e9:.2f} Gns/s vs committed "
                    f"{base / 1e9:.2f} Gns/s ({baseline['label']!r}) -- ok"
                )

    if args.append is not None:
        path = args.append or cluster_trajectory_path()
        for entry in _trajectory_entries(outcomes, args.label):
            append_entry(path, entry)
        print(f"appended headline entries to {path}")

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
