"""Cluster synchronization sweep: lockstep vs adaptive vs parallel.

The multi-node analogue of the kernel perf harness: every swept
configuration of the canonical ring-cluster workload
(:mod:`repro.perf.clusterload`) is simulated three ways -- the
lockstep reference synchronization (every min-frame-time window, every
node), the adaptive conservative synchronization that jumps over
provably silent windows, and the parallel mode that runs the adaptive
windows sharded across forked worker processes -- and the table
reports sim-ns per wall-second for each, the speedups, the fraction of
windows skipped, and the delivery events suppressed by acceptance
pre-filtering.

Correctness rides along with speed: for every configuration the
full-record traces of all modes are compared -- per-node sha256
signatures (events + jobs + segments), delivery timelines, bus and
interface counters must be **byte-identical**, or the benchmark exits
non-zero.  An optimization that moves these is not an optimization.

The headline configurations feed the persistent ``BENCH_cluster.json``
trajectory (same format and regression gate as ``BENCH_kernel.json``):
the idle-heavy 8-node point (where window skipping dominates) and the
saturated 8-node point (where delivery batching, per-node laziness,
and worker sharding carry the win).  ``--quick`` runs just those two
configurations, checks the >= 3x idle-heavy speedup bound and the
signature cross-check, and gates against the committed trajectory --
the ``cluster-perf-smoke`` CI job runs exactly that.

``--parallel-smoke`` is the ``cluster-parallel-smoke`` CI job: the
saturated headline only, three-way signature identity, a
parallel-vs-adaptive wall-clock speedup bound (enforced only when the
host has more cores than workers -- a starved runner measures
scheduling, not the optimization), and the ``REPRO_CLUSTER_WORKERS=0``
fallback path (must silently degrade to serial adaptive and still
match byte for byte).

Each (nodes, utilization) case is an independent deterministic
simulation, so the sweep fans out over ``--workers`` *sweep* processes
(``--workers 1``, the default, is recommended when the *timings*
matter: concurrent workers contend for cores).  The cluster-level
worker count for sync="parallel" is ``--cluster-workers``.
"""

import hashlib
import json
import os
from typing import Tuple

from common import (
    apply_bench_args,
    bench_arg_parser,
    cluster_trajectory_path,
    publish,
    sweep_map,
)
from repro.analysis import format_table
from repro.net.cluster import CLUSTER_WORKERS_ENV
from repro.perf.clusterload import (
    CLUSTER_HORIZON_NS,
    SIGNATURE_HORIZON_NS,
    build_ring_cluster,
    cluster_config,
    cluster_signatures,
    run_cluster_throughput,
)
from repro.perf.trajectory import (
    RegressionError,
    append_entry,
    check_regression,
    config_hash,
    make_entry,
)

#: The full sweep grid.
SWEEP_NODES = (2, 4, 8)
SWEEP_UTILIZATIONS = (0.02, 0.3, 0.9)

#: The two trajectory headline configurations (nodes, utilization).
HEADLINE_IDLE = (8, 0.02)
HEADLINE_SATURATED = (8, 0.9)

#: The acceptance bound --quick enforces on the idle-heavy headline.
MIN_IDLE_SPEEDUP = 3.0

#: Sync modes every sweep point runs, in reporting order.
SYNCS = ("lockstep", "adaptive", "parallel")

#: Default worker-pool size for sync="parallel" measurements.
DEFAULT_CLUSTER_WORKERS = 2


def _signature_digest(snapshot: dict) -> str:
    """One hash over everything that must match between sync modes."""
    canonical = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _cluster_case(case: Tuple[int, float, int]):
    """One sweep point: all sync modes, timed + behavior-fingerprinted.

    Module-level so sweep worker processes can import it; the workload
    is fully determined by (nodes, utilization, cluster_workers).
    """
    nodes, utilization, workers = case
    reports = {
        sync: run_cluster_throughput(
            nodes, utilization, sync, workers=workers
        )
        for sync in SYNCS
    }
    digests = {
        sync: _signature_digest(
            cluster_signatures(nodes, utilization, sync, workers=workers)
        )
        for sync in SYNCS
    }
    return {
        "nodes": nodes,
        "utilization": utilization,
        "cluster_workers": workers,
        **reports,
        "identical": len(set(digests.values())) == 1,
        "digest": digests["adaptive"],
        "digests": digests,
    }


def sweep(cases):
    outcomes = sweep_map(_cluster_case, list(cases))
    rows = []
    for out in outcomes:
        lock, adap, par = out["lockstep"], out["adaptive"], out["parallel"]

        def _speedup(fast, slow):
            return (
                fast["throughput_sim_ns_per_s"]
                / slow["throughput_sim_ns_per_s"]
                if slow["throughput_sim_ns_per_s"] else float("inf")
            )

        total_windows = adap["sync_rounds"] + adap["windows_skipped"]
        rows.append(
            [
                str(out["nodes"]),
                f"{out['utilization']:g}",
                f"{lock['throughput_sim_ns_per_s'] / 1e9:.2f}",
                f"{adap['throughput_sim_ns_per_s'] / 1e9:.2f}",
                f"{par['throughput_sim_ns_per_s'] / 1e9:.2f}",
                f"{_speedup(adap, lock):.2f}x",
                f"{_speedup(par, adap):.2f}x",
                f"{100 * adap['windows_skipped'] / total_windows:.0f}%"
                if total_windows else "-",
                str(adap["deliveries_suppressed"]),
                "yes" if out["identical"] else "NO",
            ]
        )
    return rows, outcomes


def _trajectory_entries(outcomes, label: str):
    """Trajectory entries for the headline configurations."""
    entries = []
    for out in outcomes:
        if (out["nodes"], out["utilization"]) not in (
            HEADLINE_IDLE,
            HEADLINE_SATURATED,
        ):
            continue
        for sync in SYNCS:
            report = out[sync]
            config = cluster_config(
                out["nodes"], out["utilization"], sync,
                horizon_ns=CLUSTER_HORIZON_NS,
                workers=report.get("workers", 0),
            )
            entries.append(
                make_entry(
                    f"{label}/{sync}",
                    dict(report),
                    config,
                    signatures={"cluster": out["digest"]},
                )
            )
    return entries


def _parallel_smoke(workers: int, min_speedup: float) -> bool:
    """The cluster-parallel-smoke CI job body.  Returns failed."""
    nodes, utilization = HEADLINE_SATURATED
    failed = False

    digests = {
        sync: _signature_digest(
            cluster_signatures(nodes, utilization, sync, workers=workers)
        )
        for sync in SYNCS
    }
    if len(set(digests.values())) != 1:
        bad = {s: d[:12] for s, d in digests.items()}
        print(f"FAIL: sync modes disagree on the saturated headline: {bad}")
        failed = True
    else:
        print(
            f"signature cross-check: parallel({workers}w) == adaptive == "
            f"lockstep on the saturated {nodes}-node config"
        )

    adaptive = run_cluster_throughput(nodes, utilization, "adaptive")
    parallel = run_cluster_throughput(
        nodes, utilization, "parallel", workers=workers
    )
    if parallel["workers"] != workers:
        print(
            f"FAIL: parallel run used {parallel['workers']} workers, "
            f"expected {workers} (fork pool unavailable?)"
        )
        failed = True
    speedup = (
        parallel["throughput_sim_ns_per_s"]
        / adaptive["throughput_sim_ns_per_s"]
        if adaptive["throughput_sim_ns_per_s"] else float("inf")
    )
    cores = os.cpu_count() or 1
    if cores >= workers + 1:
        if speedup < min_speedup:
            print(
                f"FAIL: saturated parallel speedup {speedup:.2f}x "
                f"< {min_speedup:.1f}x bound ({workers} workers, "
                f"{cores} cores)"
            )
            failed = True
        else:
            print(
                f"saturated parallel speedup: {speedup:.2f}x vs adaptive "
                f"({workers} workers, {cores} cores) -- ok"
            )
    else:
        print(
            f"saturated parallel speedup: {speedup:.2f}x (informational: "
            f"host has {cores} core(s) for {workers} workers + parent; "
            f"bound not enforced)"
        )

    # Fallback path: REPRO_CLUSTER_WORKERS=0 must degrade sync="parallel"
    # to serial adaptive -- no pool, same bytes.
    saved = os.environ.get(CLUSTER_WORKERS_ENV)
    os.environ[CLUSTER_WORKERS_ENV] = "0"
    try:
        cluster = build_ring_cluster(nodes, utilization, "parallel")
        cluster.run_until(SIGNATURE_HORIZON_NS)
        active = cluster.parallel_active
        cluster.close()
        fallback_digest = _signature_digest(
            cluster_signatures(nodes, utilization, "parallel")
        )
    finally:
        if saved is None:
            del os.environ[CLUSTER_WORKERS_ENV]
        else:
            os.environ[CLUSTER_WORKERS_ENV] = saved
    if active:
        print(f"FAIL: {CLUSTER_WORKERS_ENV}=0 did not disable the pool")
        failed = True
    elif fallback_digest != digests["adaptive"]:
        print(f"FAIL: {CLUSTER_WORKERS_ENV}=0 fallback changed the traces")
        failed = True
    else:
        print(
            f"fallback: {CLUSTER_WORKERS_ENV}=0 ran serial adaptive, "
            "byte-identical"
        )
    return failed


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="headline configs only; assert the >=3x idle-heavy speedup, "
             "signature identity, and the trajectory regression gate (CI)",
    )
    parser.add_argument(
        "--parallel-smoke", action="store_true",
        help="saturated headline only: three-way signature identity, the "
             "parallel speedup bound (when cores allow), and the "
             f"{CLUSTER_WORKERS_ENV}=0 fallback (CI)",
    )
    parser.add_argument(
        "--cluster-workers", type=int, default=DEFAULT_CLUSTER_WORKERS,
        help="worker processes per sync='parallel' cluster",
    )
    parser.add_argument(
        "--min-parallel-speedup", type=float, default=1.5,
        help="parallel-vs-adaptive bound --parallel-smoke enforces",
    )
    parser.add_argument(
        "--label", default="bench-cluster",
        help="label recorded on trajectory entries",
    )
    parser.add_argument(
        "--append", metavar="PATH", nargs="?", const="", default=None,
        help="append headline measurements to this trajectory "
             "(default BENCH_cluster.json)",
    )
    parser.add_argument(
        "--check", metavar="PATH", nargs="?", const="", default=None,
        help="fail on >30%% adaptive-throughput regression vs this "
             "trajectory's baseline (default BENCH_cluster.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="allowed fractional throughput drop for --check",
    )
    args = apply_bench_args(parser.parse_args(argv))

    if args.parallel_smoke:
        return 1 if _parallel_smoke(
            args.cluster_workers, args.min_parallel_speedup
        ) else 0

    if args.quick:
        cases = [HEADLINE_IDLE, HEADLINE_SATURATED]
    else:
        cases = [(n, u) for n in SWEEP_NODES for u in SWEEP_UTILIZATIONS]
    cases = [(n, u, args.cluster_workers) for n, u in cases]

    rows, outcomes = sweep(cases)
    header = [
        "nodes", "util",
        "lockstep Gns/s", "adaptive Gns/s", "parallel Gns/s",
        "adapt x", "par x",
        "skipped", "suppressed", "identical",
    ]
    text = (
        "Cluster synchronization sweep: ring workload, "
        f"{CLUSTER_HORIZON_NS / 1e9:.0f} s virtual horizon, "
        f"{args.cluster_workers} cluster workers "
        f"(signatures cross-checked at {SIGNATURE_HORIZON_NS / 1e6:.0f} ms, "
        "full recording)\n" + format_table(header, rows)
    )
    publish("cluster_sync_sweep", text)

    failed = False

    mismatched = [o for o in outcomes if not o["identical"]]
    for out in mismatched:
        print(
            f"FAIL: sync-mode traces differ at "
            f"nodes={out['nodes']} utilization={out['utilization']:g}: "
            f"{ {s: d[:12] for s, d in out['digests'].items()} }"
        )
        failed = True
    if not mismatched:
        print(
            f"signature cross-check: lockstep == adaptive == parallel on "
            f"all {len(outcomes)} swept configs"
        )

    idle = next(
        (o for o in outcomes
         if (o["nodes"], o["utilization"]) == HEADLINE_IDLE),
        None,
    )
    if idle is not None:
        speedup = (
            idle["adaptive"]["throughput_sim_ns_per_s"]
            / idle["lockstep"]["throughput_sim_ns_per_s"]
        )
        if args.quick and speedup < MIN_IDLE_SPEEDUP:
            print(
                f"FAIL: idle-heavy 8-node speedup {speedup:.2f}x "
                f"< {MIN_IDLE_SPEEDUP:.1f}x bound"
            )
            failed = True
        else:
            print(f"idle-heavy 8-node speedup: {speedup:.2f}x vs lockstep")

    check = args.check if args.check is not None else ("" if args.quick else None)
    if check is not None and idle is not None:
        path = check or cluster_trajectory_path()
        current = idle["adaptive"]["throughput_sim_ns_per_s"]
        fingerprint = config_hash(
            cluster_config(*HEADLINE_IDLE, "adaptive",
                           horizon_ns=CLUSTER_HORIZON_NS)
        )
        try:
            baseline = check_regression(
                path, current, fingerprint, args.max_regression
            )
        except RegressionError as err:
            print(f"FAIL: {err}")
            failed = True
        else:
            if baseline is None:
                print(f"no comparable baseline in {path}; gate skipped")
            else:
                base = baseline["throughput_sim_ns_per_s"]
                print(
                    f"regression gate: {current / 1e9:.2f} Gns/s vs committed "
                    f"{base / 1e9:.2f} Gns/s ({baseline['label']!r}) -- ok"
                )

    if args.append is not None:
        path = args.append or cluster_trajectory_path()
        for entry in _trajectory_entries(outcomes, args.label):
            append_entry(path, entry)
        print(f"appended headline entries to {path}")

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
