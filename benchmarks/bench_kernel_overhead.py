"""The headline claim, measured operationally: "the overheads of
various OS services are reduced 20-40%".

Figures 3-5 express the scheduler comparison analytically; this
benchmark measures it in the live kernel: the same workload runs under
EDF, RM, and CSD-3 and we report the virtual time actually charged to
scheduling (queue operations, selections, context switches).  The
paper's claim translates to CSD-3 charging substantially less than
EDF at moderate-to-large n with short periods.
"""

from common import publish
from repro.analysis import format_table
from repro.core.allocation import balanced_splits
from repro.core.overhead import OverheadModel
from repro.core.schedulability import (
    band_sizes_from_splits,
    csd_overhead_per_period,
    csd_schedulable,
)
from repro.sim.kernelsim import simulate_workload
from repro.sim.workload import generate_workload
from repro.timeunits import ms, to_us


def _scheduler_time(trace) -> int:
    return trace.kernel_time.get("sched", 0) + trace.kernel_time.get(
        "context-switch", 0
    )


def _min_overhead_splits(workload, dp_bands, model):
    """The feasible balanced allocation minimizing analytic overhead
    utilization -- what the offline search optimizes for when the load
    leaves headroom (Section 5.5.3's overhead-balancing criterion)."""
    n = len(workload)
    best, best_cost = None, None
    for r in range(n + 1):
        splits = balanced_splits(workload, dp_bands, r)
        if not csd_schedulable(workload, splits, model):
            continue
        sizes = band_sizes_from_splits(n, splits)
        cost = 0.0
        index = 0
        for band, size in enumerate(sizes):
            per = csd_overhead_per_period(model, sizes, band)
            for _ in range(size):
                cost += per / workload[index].period
                index += 1
        if best_cost is None or cost < best_cost:
            best, best_cost = splits, cost
    return best


def test_scheduler_overhead_in_live_kernel(benchmark):
    model = OverheadModel()
    # Short periods invoke the scheduler often -- the regime where the
    # paper's savings are largest (Figure 5).
    workload = generate_workload(20, seed=4, utilization=0.45).with_periods_divided(3)
    splits = _min_overhead_splits(workload, 2, model)
    assert splits is not None
    horizon = ms(2000)

    def run():
        results = {}
        for policy, sp in (("edf", None), ("rm", None), ("csd-3", splits)):
            kernel, trace = simulate_workload(
                workload, policy, duration=horizon, model=model,
                splits=sp, record_segments=False,
            )
            results[policy] = (
                _scheduler_time(trace),
                trace.context_switches,
                len(trace.deadline_violations(kernel.now)),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    edf_time = results["edf"][0]
    for policy, (sched_ns, switches, misses) in results.items():
        rows.append(
            [
                policy,
                f"{to_us(sched_ns) / 1000:.2f}",
                f"{100 * sched_ns / horizon:.2f}%",
                switches,
                misses,
                f"{100 * (edf_time - sched_ns) / edf_time:+.1f}%",
            ]
        )
    publish(
        "kernel_overhead",
        format_table(
            ["policy", "sched time (ms/2s)", "CPU share", "switches",
             "misses", "vs EDF"],
            rows,
            title=(
                "Live-kernel scheduling overhead, n = 20, short periods "
                "(paper: CSD reduces overheads 20-40%)"
            ),
        ),
    )
    csd_time = results["csd-3"][0]
    # CSD-3 charges meaningfully less scheduling time than EDF.
    assert csd_time < edf_time
    reduction = (edf_time - csd_time) / edf_time
    assert reduction > 0.10
    # No policy may miss deadlines on this comfortably feasible set.
    assert all(misses == 0 for _, _, misses in results.values())
