"""The headline claim, measured operationally: "the overheads of
various OS services are reduced 20-40%".

Figures 3-5 express the scheduler comparison analytically; this
benchmark measures it in the live kernel: the same workload runs under
EDF, RM, and CSD-3 and we report the virtual time actually charged to
scheduling (queue operations, selections, context switches).  The
paper's claim translates to CSD-3 charging substantially less than
EDF at moderate-to-large n with short periods.

The same run doubles as the repository's canonical throughput
measurement: a pooled :class:`repro.perf.counters.PerfReport` is
appended to the committed perf trajectory (``BENCH_kernel.json``), so
every benchmark run extends the performance history.
"""

from common import bench_record_mode, publish, trajectory_path
from repro.analysis import format_table
from repro.core.overhead import OverheadModel
from repro.perf.trajectory import append_entry, make_entry
from repro.perf.workloads import (
    HORIZON_NS,
    min_overhead_splits,
    overhead_workload,
    run_throughput,
    throughput_config,
)
from repro.sim.kernelsim import simulate_workload
from repro.timeunits import to_us


def _scheduler_time(trace) -> int:
    return trace.kernel_time.get("sched", 0) + trace.kernel_time.get(
        "context-switch", 0
    )


def test_scheduler_overhead_in_live_kernel(benchmark):
    model = OverheadModel()
    # Short periods invoke the scheduler often -- the regime where the
    # paper's savings are largest (Figure 5).
    workload = overhead_workload()
    splits = min_overhead_splits(workload, 2, model)
    assert splits is not None
    horizon = HORIZON_NS
    mode = bench_record_mode()

    def run():
        results = {}
        for policy, sp in (("edf", None), ("rm", None), ("csd-3", splits)):
            kernel, trace = simulate_workload(
                workload, policy, duration=horizon, model=model,
                splits=sp, record=mode,
            )
            results[policy] = (
                _scheduler_time(trace),
                trace.context_switches,
                len(trace.deadline_violations(kernel.now)),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    edf_time = results["edf"][0]
    for policy, (sched_ns, switches, misses) in results.items():
        rows.append(
            [
                policy,
                f"{to_us(sched_ns) / 1000:.2f}",
                f"{100 * sched_ns / horizon:.2f}%",
                switches,
                misses,
                f"{100 * (edf_time - sched_ns) / edf_time:+.1f}%",
            ]
        )
    publish(
        "kernel_overhead",
        format_table(
            ["policy", "sched time (ms/2s)", "CPU share", "switches",
             "misses", "vs EDF"],
            rows,
            title=(
                "Live-kernel scheduling overhead, n = 20, short periods "
                "(paper: CSD reduces overheads 20-40%)"
            ),
        ),
    )
    csd_time = results["csd-3"][0]
    # CSD-3 charges meaningfully less scheduling time than EDF.
    assert csd_time < edf_time
    reduction = (edf_time - csd_time) / edf_time
    assert reduction > 0.10
    # No policy may miss deadlines on this comfortably feasible set.
    assert all(misses == 0 for _, _, misses in results.values())

    # Extend the perf trajectory with a properly timed measurement of
    # the same configuration (the run above pays pytest-benchmark
    # bookkeeping; run_throughput times each policy run alone).
    report = run_throughput(mode, model=model)
    entry = append_entry(
        trajectory_path(),
        make_entry("bench-kernel-overhead", report.as_dict(),
                   throughput_config(mode)),
    )
    print(f"\ntrajectory += {entry['throughput_sim_ns_per_s']} sim-ns/s "
          f"({entry['config_hash']})")
