"""Figure 4: breakdown utilization with task periods divided by 2.

Moderate periods (2.5-500 ms).  The paper's finding: EDF starts above
RM but its O(n) selection cost catches up -- by n = 40 RM is superior
to EDF, and CSD beats both ("for n = 40, CSD-4 has 50% lower overhead
than RM, which in turn has lower overhead than EDF for this large n").
"""

from common import bench_task_counts, bench_workers, bench_workloads, publish
from repro.analysis import ascii_series
from repro.sim.breakdown import figure_series

POLICIES = ("csd-4", "csd-3", "csd-2", "edf", "rm")


def test_figure4(benchmark):
    def run():
        return figure_series(
            bench_task_counts(),
            POLICIES,
            workloads_per_point=bench_workloads(),
            seed=1,
            workers=bench_workers(),
            period_divisor=2,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "figure4",
        ascii_series(
            series.task_counts,
            {p: series.values[p] for p in POLICIES},
            title=(
                "Figure 4: average breakdown utilization (%), periods / 2 "
                f"({series.workloads_per_point} workloads/point)"
            ),
            x_label="n",
        ),
    )

    by = series.values
    counts = series.task_counts
    first, last = 0, len(counts) - 1
    # EDF above RM for small n...
    assert by["edf"][first] > by["rm"][first]
    # ...CSD above both at large n.
    assert by["csd-3"][last] > by["edf"][last]
    assert by["csd-3"][last] > by["rm"][last]
    # The EDF-over-RM gap shrinks (or flips) as n grows.
    gap_small = by["edf"][first] - by["rm"][first]
    gap_large = by["edf"][last] - by["rm"][last]
    assert gap_large < gap_small
