"""Figure 5: breakdown utilization with task periods divided by 3.

Short periods (1.7-333 ms) invoke the scheduler most often.  The
paper's finding: "these short periods allow RM to quickly overtake
EDF.  Nevertheless, CSD continues to be superior to both."
"""

from common import bench_task_counts, bench_workers, bench_workloads, publish
from repro.analysis import ascii_series
from repro.sim.breakdown import figure_series

POLICIES = ("csd-4", "csd-3", "csd-2", "edf", "rm")


def test_figure5(benchmark):
    def run():
        return figure_series(
            bench_task_counts(),
            POLICIES,
            workloads_per_point=bench_workloads(),
            seed=1,
            workers=bench_workers(),
            period_divisor=3,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "figure5",
        ascii_series(
            series.task_counts,
            {p: series.values[p] for p in POLICIES},
            title=(
                "Figure 5: average breakdown utilization (%), periods / 3 "
                f"({series.workloads_per_point} workloads/point)"
            ),
            x_label="n",
        ),
    )

    by = series.values
    last = len(series.task_counts) - 1
    # RM overtakes EDF at large n with short periods.
    assert by["rm"][last] > by["edf"][last]
    # CSD superior to both across the range's tail.
    assert by["csd-3"][last] > by["rm"][last]
    assert by["csd-3"][last] > by["edf"][last]
    # CSD-2 -> CSD-3 is a significant improvement at large n.
    assert by["csd-3"][last] >= by["csd-2"][last] - 0.5
