"""Snapshot-sweep speedup: cold-start vs shared-prefix restore.

The perf benchmark behind ``BENCH_sweeps.json``: the canonical
fault-injection and fieldbus-dependability sweeps are run twice over
the same grid -- once cold-starting every point (build + warm-up +
storm per point, the pre-snapshot behaviour) and once through the
shared-prefix planner (:func:`repro.perf.sweeps.prefix_map`), which
simulates each common warm-up prefix exactly once and restores every
sweep point from a snapshot of it (:mod:`repro.perf.snapshot`).

Correctness rides along with speed: every restored result is compared
against its cold twin -- the dataclasses carry the full-record trace
signatures, so equality here is byte-identity of the simulated
histories, not a summary check.  Any mismatch exits non-zero; an
optimization that moves a signature changed *behaviour*, not speed.

The headline measurement (both sections combined: useful simulated ns
delivered per wall-second through the snapshot path, and the speedup
over cold) appends to the persistent ``BENCH_sweeps.json`` trajectory
with the same config-hash regression gate as ``BENCH_kernel.json``.
``--quick`` shrinks the grid, keeps the gate, and optionally enforces
``--min-speedup`` -- the ``snapshot-smoke`` CI job runs exactly that
(the bound is only enforced on hosts with >= 2 CPUs: the serial
restore path needs no parallelism, but a starved single-core runner
measures scheduling noise, not the optimization).

Timing methodology: both paths run serially (workers and snapshot
children at their defaults) with the GC disabled around each timed
region, so the speedup is pure work reduction -- shared prefixes
simulated once instead of once per point -- not a parallelism artifact.
"""

import gc
import os
import time

import bench_faults
import bench_net_faults
from common import (
    apply_bench_args,
    bench_arg_parser,
    publish,
    sweeps_trajectory_path,
)
from repro.analysis import format_table
from repro.perf.snapshot import resolve_snapshot_mode
from repro.perf.sweeps import prefix_map
from repro.timeunits import ms, to_ms

#: The canonical grids: (rates | drop_ps, seeds, duration, warm-up).
#: Horizons are long (tens of virtual seconds) on purpose: the
#: snapshot win is work reduction, so the shared 75% warm-up prefix
#: must dwarf the per-restore overhead (a fork costs ~1-2 ms).
FAULT_FULL = ((5.0, 20.0, 50.0), (1, 2, 3), ms(60_000), ms(45_000))
FAULT_QUICK = ((5.0, 50.0), (1, 2), ms(15_000), ms(11_250))
NET_FULL = ((0.05, 0.2), (1, 2), ms(20_000), ms(15_000))
NET_QUICK = ((0.1,), (1, 2, 3), ms(8_000), ms(6_000))


def _timed(fn):
    """Run ``fn`` with the GC parked; return (result, wall seconds)."""
    enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start
    finally:
        if enabled:
            gc.enable()


def _section(name, plan, cases, mode):
    """Time one sweep section cold and snapshotted; verify identity.

    Cold goes through the same planner with the snapshot machinery
    disabled (``mode="cold"`` cold-starts every point serially), so
    the two timings differ only in prefix reuse.
    """
    cold, cold_wall = _timed(lambda: prefix_map(plan, cases, mode="cold"))
    snap, snap_wall = _timed(lambda: prefix_map(plan, cases, mode=mode))
    mismatches = [
        index for index, (a, b) in enumerate(zip(cold, snap)) if a != b
    ]
    return {
        "name": name,
        "points": len(cases),
        "sim_ns": sum(case[3] for case in cases),
        "cold_wall_s": cold_wall,
        "snapshot_wall_s": snap_wall,
        "speedup": cold_wall / snap_wall if snap_wall else float("inf"),
        "mismatches": mismatches,
        "cases": cases,
    }


def run_sections(quick, mode):
    """Both canonical sections under one snapshot mode."""
    f_rates, f_seeds, f_dur, f_warm = FAULT_QUICK if quick else FAULT_FULL
    n_drops, n_seeds, n_dur, n_warm = NET_QUICK if quick else NET_FULL
    fault_cases = bench_faults.make_cases(f_rates, f_seeds, f_dur, f_warm)
    net_cases = bench_net_faults.make_cases(n_drops, n_seeds, n_dur, n_warm)
    return [
        _section("fault storm", bench_faults._chaos_plan, fault_cases, mode),
        _section("net faults", bench_net_faults._net_plan, net_cases, mode),
    ]


def main(argv=None) -> int:
    parser = bench_arg_parser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunken grid: identity check, speedup, regression gate (CI)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="alias for --quick (the shared bench-runner flag)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail when the combined snapshot speedup falls below this "
             "bound (enforced only on hosts with >= 2 CPUs)",
    )
    parser.add_argument(
        "--label", default="bench-sweeps",
        help="label recorded on trajectory entries",
    )
    parser.add_argument(
        "--append", metavar="PATH", nargs="?", const="", default=None,
        help="append the headline measurement to this trajectory "
             "(default BENCH_sweeps.json)",
    )
    parser.add_argument(
        "--check", metavar="PATH", nargs="?", const="", default=None,
        help="fail on >30%% snapshot-throughput regression vs this "
             "trajectory's baseline (default BENCH_sweeps.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="allowed fractional throughput drop for --check",
    )
    args = apply_bench_args(parser.parse_args(argv))
    quick = args.quick or args.smoke
    mode = resolve_snapshot_mode()

    sections = run_sections(quick, mode)

    rows = []
    for sec in sections:
        rows.append(
            [
                sec["name"],
                str(sec["points"]),
                f"{to_ms(sec['sim_ns'] // sec['points']):.0f}",
                f"{sec['cold_wall_s']:.2f}",
                f"{sec['snapshot_wall_s']:.2f}",
                f"{sec['speedup']:.2f}x",
                "yes" if not sec["mismatches"] else "NO",
            ]
        )
    cold_wall = sum(s["cold_wall_s"] for s in sections)
    snap_wall = sum(s["snapshot_wall_s"] for s in sections)
    sim_ns = sum(s["sim_ns"] for s in sections)
    speedup = cold_wall / snap_wall if snap_wall else float("inf")
    rows.append(
        [
            "combined",
            str(sum(s["points"] for s in sections)),
            "-",
            f"{cold_wall:.2f}",
            f"{snap_wall:.2f}",
            f"{speedup:.2f}x",
            "yes" if not any(s["mismatches"] for s in sections) else "NO",
        ]
    )
    header = [
        "sweep", "points", "ms/point", "cold s", "snapshot s",
        "speedup", "identical",
    ]
    text = (
        f"Sweep snapshot speedup: mode={mode}, "
        f"{'quick' if quick else 'full'} grid, serial timing "
        "(cold = build + warm-up + storm per point; snapshot = shared "
        "warm-up simulated once, restored per point)\n"
        + format_table(header, rows)
    )
    publish("sweep_snapshot", text)

    failed = False
    for sec in sections:
        for index in sec["mismatches"]:
            print(
                f"FAIL: {sec['name']} point {sec['cases'][index]!r}: "
                "restored result differs from the cold run"
            )
            failed = True
    if not failed:
        print(
            "byte-identity: every restored point equals its cold twin "
            f"({sum(s['points'] for s in sections)} points, "
            "full-record signatures included)"
        )

    cores = os.cpu_count() or 1
    if args.min_speedup > 0:
        if mode == "cold":
            print(
                f"speedup bound skipped: snapshot mode resolved to 'cold' "
                f"(no fork support?); measured {speedup:.2f}x"
            )
        elif cores < 2:
            print(
                f"speedup bound skipped: {cores} CPU(s); "
                f"measured {speedup:.2f}x (informational)"
            )
        elif speedup < args.min_speedup:
            print(
                f"FAIL: combined snapshot speedup {speedup:.2f}x "
                f"< {args.min_speedup:.1f}x bound"
            )
            failed = True
        else:
            print(
                f"combined snapshot speedup: {speedup:.2f}x "
                f">= {args.min_speedup:.1f}x bound -- ok"
            )

    # Trajectory: one headline entry; the config hash fingerprints the
    # grids and mechanism, so baselines only gate like measurements.
    from repro.perf.trajectory import (
        RegressionError,
        append_entry,
        check_regression,
        config_hash,
        make_entry,
    )

    config = {
        "benchmark": "sweeps",
        "grid": "quick" if quick else "full",
        "mode": mode,
        "sections": [
            {"name": s["name"], "points": s["points"], "sim_ns": s["sim_ns"]}
            for s in sections
        ],
    }
    throughput = sim_ns / snap_wall if snap_wall else 0.0
    entry = make_entry(
        args.label,
        {
            "throughput_sim_ns_per_s": throughput,
            "wall_s": snap_wall,
        },
        config,
        cold_wall_s=cold_wall,
        snapshot_wall_s=snap_wall,
        speedup=speedup,
        sections={
            s["name"]: {
                "cold_wall_s": s["cold_wall_s"],
                "snapshot_wall_s": s["snapshot_wall_s"],
                "speedup": s["speedup"],
            }
            for s in sections
        },
    )

    check = args.check if args.check is not None else ("" if quick else None)
    if check is not None:
        path = check or sweeps_trajectory_path()
        try:
            baseline = check_regression(
                path, throughput, entry["config_hash"], args.max_regression
            )
        except RegressionError as err:
            print(f"FAIL: {err}")
            failed = True
        else:
            if baseline is None:
                print(f"no comparable baseline in {path}; gate skipped")
            else:
                base = baseline["throughput_sim_ns_per_s"]
                print(
                    f"regression gate: {throughput / 1e6:.1f} Mns/s vs "
                    f"committed {base / 1e6:.1f} Mns/s "
                    f"({baseline['label']!r}) -- ok"
                )

    if args.append is not None:
        path = args.append or sweeps_trajectory_path()
        append_entry(path, entry)
        print(f"appended headline entry to {path}")

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
