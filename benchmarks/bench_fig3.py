"""Figure 3: breakdown utilization vs task count, base periods.

Base workloads draw periods from the Section 5.7 mix (5-9 ms, 10-99 ms,
100-999 ms with equal probability).  The paper's findings to reproduce:

* CSD beats both EDF and RM over the whole range;
* CSD-4's advantage over EDF grows from ~17% lower total overhead at
  n = 15 to >40% at n = 40 -- visible here as the CSD curves holding
  up while EDF degrades with n;
* CSD-3 clearly improves on CSD-2 at large n, CSD-4 only marginally
  improves on CSD-3.
"""

from common import bench_task_counts, bench_workers, bench_workloads, publish
from repro.analysis import ascii_series
from repro.sim.breakdown import figure_series

POLICIES = ("csd-4", "csd-3", "csd-2", "edf", "rm")


def test_figure3(benchmark):
    def run():
        return figure_series(
            bench_task_counts(),
            POLICIES,
            workloads_per_point=bench_workloads(),
            seed=1,
            workers=bench_workers(),
            period_divisor=1,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "figure3",
        ascii_series(
            series.task_counts,
            {p: series.values[p] for p in POLICIES},
            title=(
                "Figure 3: average breakdown utilization (%), base periods "
                f"({series.workloads_per_point} workloads/point; paper used 500)"
            ),
            x_label="n",
        ),
    )

    by = series.values
    last = len(series.task_counts) - 1
    # CSD-3 beats EDF and RM at the largest n.
    assert by["csd-3"][last] > by["edf"][last]
    assert by["csd-3"][last] > by["rm"][last]
    # CSD-4 ~ CSD-3 (only minimal further improvement, Section 5.7).
    assert abs(by["csd-4"][last] - by["csd-3"][last]) < 3.0
    # EDF close to ideal at small n with long periods.
    assert by["edf"][0] > 90.0
