"""Table 2 + Figure 2: the workload that breaks RM but not EDF/CSD.

Regenerates Figure 2 by actually scheduling the Table 2 workload in
the live kernel under RM (tau5 misses its deadline exactly as the
paper's trace shows), then under EDF and CSD-2 with tau1..tau5 on the
DP queue (no misses).
"""

from common import publish
from repro.analysis import format_table
from repro.core.overhead import ZERO_OVERHEAD
from repro.core.task import table2_workload
from repro.sim.kernelsim import simulate_workload
from repro.timeunits import ms


def test_figure2_rm_trace(benchmark):
    workload = table2_workload()

    def run():
        return simulate_workload(
            workload, "rm", duration=ms(40), model=ZERO_OVERHEAD
        )

    kernel, trace = benchmark(run)
    misses = sorted({j.thread for j in trace.deadline_violations(kernel.now)})
    gantt = trace.gantt_ascii(
        0, ms(10), columns=60, threads=[f"tau{i}" for i in range(1, 6)]
    )
    publish(
        "figure2_rm",
        "Figure 2: RM schedule of the Table 2 workload\n"
        + gantt
        + f"\ndeadline misses: {misses} (paper: tau5)",
    )
    assert misses == ["tau5"]


def test_figure2_edf_and_csd(benchmark):
    workload = table2_workload()

    def run():
        results = {}
        for policy, splits in (("edf", None), ("csd-2", (5,))):
            kernel, trace = simulate_workload(
                workload, policy, duration=ms(200),
                model=ZERO_OVERHEAD, splits=splits,
            )
            results[policy] = len(trace.deadline_violations(kernel.now))
        return results

    results = benchmark(run)
    publish(
        "figure2_alternatives",
        format_table(
            ["policy", "deadline misses in 200 ms"],
            [[p, v] for p, v in results.items()],
            title="Table 2 workload under EDF and CSD-2 (DP = tau1..tau5)",
        ),
    )
    assert results == {"edf": 0, "csd-2": 0}


def test_table2_workload_properties(benchmark):
    workload = benchmark(table2_workload)
    rows = [
        [t.name, t.period / 1e6, t.wcet / 1e6, f"{t.utilization:.3f}"]
        for t in workload
    ]
    rows.append(["total", "", "", f"{workload.utilization:.3f}"])
    publish(
        "table2",
        format_table(
            ["task", "P (ms)", "c (ms)", "U"],
            rows,
            title="Table 2 (reconstructed): U = 0.88, EDF-feasible, RM-infeasible",
        ),
    )
    assert abs(workload.utilization - 0.88) < 0.01
