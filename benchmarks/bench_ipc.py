"""Section 7 (reconstructed): mailbox vs state-message IPC overhead.

The supplied copy of the paper is truncated before Section 7's
evaluation, so this benchmark reconstructs the comparison its design
implies (Sections 1-3 + the journal version's state-message design):
distributing one periodic sensor value to k readers through

* **mailboxes** -- one kernel send per reader plus one kernel receive
  each: two traps and two copies per reader per period; vs
* **a state message** -- one lock-free slot write per period and one
  lock-free read per reader: no kernel traps at all.

Reported: kernel time consumed per distributed value, as a function of
the reader count and of the message size (mailbox copies are per-byte;
state-message slots are fixed).
"""

from common import publish
from repro.analysis import format_table
from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program, Recv, Send, StateRead, StateWrite
from repro.timeunits import ms, to_us, us


def run_mailbox(readers: int, size: int, periods: int = 50) -> float:
    """Kernel ns per distributed value using per-reader mailboxes."""
    kernel = Kernel(EDFScheduler(OverheadModel()))
    for i in range(readers):
        kernel.create_mailbox(f"m{i}", capacity=2, max_message_size=max(64, size))
    kernel.create_thread(
        "writer",
        Program([Send(f"m{i}", size=size, payload="v") for i in range(readers)]),
        period=ms(10),
        deadline=ms(2),
    )
    for i in range(readers):
        kernel.create_thread(
            f"reader{i}",
            Program([Recv(f"m{i}"), Compute(us(10))]),
            period=ms(10),
            deadline=ms(5 + i),
        )
    trace = kernel.run_until(ms(10) * periods)
    return _ipc_time(trace) / periods


def run_state_message(readers: int, size: int, periods: int = 50) -> float:
    """Kernel ns per distributed value using one state channel."""
    kernel = Kernel(EDFScheduler(OverheadModel()))
    kernel.create_channel("c", slots=4)
    kernel.create_thread(
        "writer",
        Program([StateWrite("c", value="v")]),
        period=ms(10),
        deadline=ms(2),
    )
    for i in range(readers):
        kernel.create_thread(
            f"reader{i}",
            Program([StateRead("c"), Compute(us(10))]),
            period=ms(10),
            deadline=ms(5 + i),
        )
    trace = kernel.run_until(ms(10) * periods)
    return _ipc_time(trace) / periods


def _ipc_time(trace) -> int:
    """Kernel time attributable to the IPC mechanism itself: copies,
    traps, and slot operations.  Scheduling and context-switch costs
    are common to both designs and excluded."""
    return (
        trace.kernel_time.get("ipc", 0)
        + trace.kernel_time.get("syscall", 0)
        + trace.kernel_time.get("state-msg", 0)
    )


def test_ipc_vs_reader_count(benchmark):
    def sweep():
        rows = []
        for readers in (1, 2, 4, 8):
            mbox = run_mailbox(readers, size=16)
            state = run_state_message(readers, size=16)
            rows.append(
                [
                    readers,
                    f"{to_us(round(mbox)):.1f}",
                    f"{to_us(round(state)):.1f}",
                    f"{mbox / state:.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "ipc_readers",
        format_table(
            ["readers", "mailbox (us/period)", "state msg (us/period)", "ratio"],
            rows,
            title="Reconstructed Sec. 7: kernel time to distribute one 16-byte value",
        ),
    )
    # State messages must win, and the gap must grow with reader count.
    ratios = [float(r[3][:-1]) for r in rows]
    assert all(r > 1.0 for r in ratios)
    assert ratios[-1] > ratios[0]


def test_ipc_vs_message_size(benchmark):
    def sweep():
        rows = []
        for size in (8, 32, 128, 512):
            mbox = run_mailbox(2, size=size)
            state = run_state_message(2, size=size)
            rows.append(
                [size, f"{to_us(round(mbox)):.1f}", f"{to_us(round(state)):.1f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "ipc_sizes",
        format_table(
            ["bytes", "mailbox (us/period)", "state msg (us/period)"],
            rows,
            title="Reconstructed Sec. 7: per-byte mailbox copies vs fixed-cost slots",
        ),
    )
    mbox_costs = [float(r[1]) for r in rows]
    state_costs = [float(r[2]) for r in rows]
    # Mailbox cost grows with the message size; state messages do not.
    assert mbox_costs[-1] > mbox_costs[0]
    assert state_costs[-1] == state_costs[0]


def test_state_message_has_no_traps(benchmark):
    def run():
        kernel = Kernel(EDFScheduler(OverheadModel()))
        kernel.create_channel("c", slots=4)
        kernel.create_thread(
            "writer", Program([StateWrite("c", value=1)]), period=ms(10),
            deadline=ms(2),
        )
        kernel.create_thread(
            "reader", Program([StateRead("c")]), period=ms(10), deadline=ms(5)
        )
        trace = kernel.run_until(ms(200))
        return trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace.kernel_time.get("syscall", 0) == 0
    assert trace.kernel_time.get("ipc", 0) == 0
    assert trace.kernel_time["state-msg"] > 0
