"""Tests for the breakdown-utilization machinery (Section 5.7)."""

import pytest

from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import csd_schedulable
from repro.core.task import TaskSpec, Workload, table2_workload
from repro.sim.breakdown import POLICIES, breakdown_utilization, figure_series
from repro.sim.workload import generate_workload
from repro.timeunits import ms


class TestBreakdownUtilization:
    def test_ideal_edf_reaches_full_utilization(self):
        w = generate_workload(10, seed=1)
        result = breakdown_utilization(w, "edf", ZERO_OVERHEAD)
        assert result.utilization == pytest.approx(1.0, abs=1e-6)

    def test_overheads_lower_edf_breakdown(self):
        w = generate_workload(10, seed=1)
        with_overhead = breakdown_utilization(w, "edf", OverheadModel())
        assert 0.5 < with_overhead.utilization < 1.0

    def test_rm_below_edf_ideal(self):
        w = table2_workload()
        rm = breakdown_utilization(w, "rm", ZERO_OVERHEAD)
        edf = breakdown_utilization(w, "edf", ZERO_OVERHEAD)
        assert rm.utilization < edf.utilization
        # Table 2: the workload itself (U = 0.88) is beyond RM's
        # breakdown point but within EDF's.
        assert rm.utilization < 0.88
        assert edf.utilization >= 0.99

    def test_csd_at_least_rm_ideal(self):
        w = table2_workload()
        rm = breakdown_utilization(w, "rm", ZERO_OVERHEAD)
        csd = breakdown_utilization(w, "csd-2", ZERO_OVERHEAD)
        assert csd.utilization >= rm.utilization - 1e-6

    def test_csd_ideal_matches_edf_ideal(self):
        """With zero overheads CSD-2 can put everything in the DP queue,
        recovering EDF's zero schedulability overhead (Section 5.3)."""
        w = generate_workload(8, seed=3)
        edf = breakdown_utilization(w, "edf", ZERO_OVERHEAD)
        csd = breakdown_utilization(w, "csd-2", ZERO_OVERHEAD)
        assert csd.utilization == pytest.approx(edf.utilization, abs=0.01)

    def test_returned_splits_are_feasible(self):
        w = generate_workload(12, seed=4)
        model = OverheadModel()
        result = breakdown_utilization(w, "csd-3", model)
        assert result.splits is not None
        scaled = w.scaled(result.scale)
        assert csd_schedulable(scaled, result.splits, model)

    def test_scale_and_utilization_consistent(self):
        w = generate_workload(10, seed=5)
        result = breakdown_utilization(w, "rm", OverheadModel())
        assert result.utilization == pytest.approx(
            result.scale * w.utilization, rel=1e-9
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            breakdown_utilization(generate_workload(5, seed=0), "fifo")

    def test_heap_policy_runs(self):
        w = generate_workload(10, seed=6)
        heap = breakdown_utilization(w, "rm-heap", OverheadModel())
        queue = breakdown_utilization(w, "rm", OverheadModel())
        # For small n the queue implementation wins (Table 1).
        assert queue.utilization >= heap.utilization


class TestPaperOrderings:
    """The qualitative findings of Figures 3-5 on averaged workloads."""

    @staticmethod
    def averages(n, policies, divisor=1, count=8):
        series = figure_series(
            [n], policies, workloads_per_point=count, seed=11,
            period_divisor=divisor,
        )
        return {p: series.values[p][0] for p in policies}

    def test_figure3_large_n_ordering(self):
        vals = self.averages(40, ("edf", "rm", "csd-3"))
        # CSD beats both EDF and RM at large n (Figure 3).
        assert vals["csd-3"] > vals["edf"]
        assert vals["csd-3"] > vals["rm"]

    def test_figure5_rm_overtakes_edf(self):
        """Short periods: EDF's run-time overhead lets RM win (Fig 5)."""
        vals = self.averages(40, ("edf", "rm", "csd-3"), divisor=3)
        assert vals["rm"] > vals["edf"]
        assert vals["csd-3"] > vals["rm"]

    def test_csd3_improves_on_csd2_at_large_n(self):
        vals = self.averages(40, ("csd-2", "csd-3"), divisor=2)
        assert vals["csd-3"] >= vals["csd-2"] - 0.5


class TestFigureSeries:
    def test_series_structure(self):
        series = figure_series(
            [5, 10], ("edf", "rm"), workloads_per_point=3, seed=0
        )
        assert series.task_counts == [5, 10]
        assert set(series.values) == {"edf", "rm"}
        assert len(series.values["edf"]) == 2
        rows = series.rows()
        assert rows[0][0] == 5
        assert set(rows[0][1]) == {"edf", "rm"}

    def test_progress_callback(self):
        messages = []
        figure_series(
            [5], ("edf",), workloads_per_point=2, seed=0, progress=messages.append
        )
        assert messages and "edf" in messages[0]

    def test_all_policies_accepted(self):
        for policy in POLICIES:
            breakdown_utilization(generate_workload(6, seed=2), policy, ZERO_OVERHEAD)


class TestBestCsdConfiguration:
    """The Section 5.6 exhaustive search over queue counts."""

    def test_returns_best_x(self):
        from repro.sim.breakdown import best_csd_configuration
        from repro.core.overhead import OverheadModel

        w = generate_workload(20, seed=8).with_periods_divided(2)
        x, result = best_csd_configuration(w, OverheadModel(), max_queues=4)
        assert 2 <= x <= 4
        # The winner is at least as good as plain CSD-2.
        csd2 = breakdown_utilization(w, "csd-2", OverheadModel())
        assert result.utilization >= csd2.utilization - 1e-9

    def test_requires_two_queues(self):
        from repro.sim.breakdown import best_csd_configuration

        with pytest.raises(ValueError):
            best_csd_configuration(generate_workload(5, seed=0), max_queues=1)
