"""Behavioural tests for the kernel: dispatch, periodic jobs, preemption."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.rm import RMScheduler
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.program import Call, Compute, Program, Signal, Sleep, Wait
from repro.timeunits import ms, us


def zero_kernel(scheduler=None, **kw):
    return Kernel(scheduler or EDFScheduler(ZERO_OVERHEAD), **kw)


class TestPeriodicExecution:
    def test_jobs_released_every_period(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        trace = k.run_until(ms(50))
        assert len(trace.jobs) == 5
        assert all(j.completion is not None for j in trace.jobs)

    def test_release_times_nominal(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10), phase=ms(3))
        trace = k.run_until(ms(35))
        assert [j.release for j in trace.jobs] == [ms(3), ms(13), ms(23), ms(33)]

    def test_response_time_without_contention(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(2))]), period=ms(10))
        trace = k.run_until(ms(10))
        assert trace.jobs[0].response_time == ms(2)

    def test_cpu_share_matches_utilization(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(2))]), period=ms(10))
        trace = k.run_until(ms(100))
        assert trace.cpu_share("t", 0, ms(100)) == pytest.approx(0.2)

    def test_idle_time_accounted(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(2))]), period=ms(10))
        trace = k.run_until(ms(100))
        assert trace.idle_time == ms(80)

    def test_two_threads_share_cpu(self):
        k = zero_kernel()
        k.create_thread("a", Program([Compute(ms(1))]), period=ms(5))
        k.create_thread("b", Program([Compute(ms(2))]), period=ms(10))
        trace = k.run_until(ms(100))
        assert trace.cpu_share("a", 0, ms(100)) == pytest.approx(0.2)
        assert trace.cpu_share("b", 0, ms(100)) == pytest.approx(0.2)
        assert not trace.deadline_violations(k.now)


class TestPreemption:
    def test_edf_preempts_for_earlier_deadline(self):
        k = zero_kernel()
        k.create_thread("long", Program([Compute(ms(8))]), period=ms(20))
        k.create_thread("short", Program([Compute(ms(1))]), period=ms(5), phase=ms(2))
        trace = k.run_until(ms(20))
        # short released at 2ms must run immediately (deadline 7 < 20).
        seg = [s for s in trace.segments if s.who == "short"][0]
        assert seg.start == ms(2)
        assert not trace.deadline_violations(k.now)

    def test_rm_priority_order(self):
        k = Kernel(RMScheduler(ZERO_OVERHEAD))
        k.create_thread("low", Program([Compute(ms(4))]), period=ms(50))
        k.create_thread("high", Program([Compute(ms(1))]), period=ms(10), phase=ms(1))
        trace = k.run_until(ms(10))
        seg = [s for s in trace.segments if s.who == "high"][0]
        assert seg.start == ms(1)


class TestOverheadCharging:
    def test_kernel_time_charged_with_model(self):
        k = Kernel(EDFScheduler(OverheadModel()))
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        trace = k.run_until(ms(50))
        assert trace.kernel_time["sched"] > 0
        assert trace.kernel_time["context-switch"] > 0
        assert trace.context_switches >= 10  # in and out per job

    def test_zero_model_charges_nothing(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        trace = k.run_until(ms(50))
        assert trace.kernel_time_total == 0

    def test_completion_time_includes_overheads(self):
        k = Kernel(EDFScheduler(OverheadModel()))
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        trace = k.run_until(ms(10))
        assert trace.jobs[0].response_time > ms(1)


class TestDeadlineHandling:
    def test_overloaded_thread_misses(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(12))]), period=ms(10))
        trace = k.run_until(ms(40))
        assert trace.deadline_violations(k.now)

    def test_overrun_queues_pending_release(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(15))]), period=ms(10))
        trace = k.run_until(ms(31))
        # Releases at 0, 10, 20, 30; jobs run back to back.
        assert any(kind == "release-overrun" for _, kind, _ in trace.events)
        assert len(trace.jobs) >= 2

    def test_stop_on_deadline_miss(self):
        k = zero_kernel(stop_on_deadline_miss=True)
        k.create_thread("t", Program([Compute(ms(12))]), period=ms(10))
        k.run_until(ms(100))
        assert k.now <= ms(15)

    def test_feasible_set_never_stops_early(self):
        k = zero_kernel(stop_on_deadline_miss=True)
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        k.run_until(ms(100))
        assert k.now == ms(100)


class TestAperiodicThreads:
    def test_needs_priority(self):
        k = zero_kernel()
        with pytest.raises(ValueError):
            k.create_thread("t", Program([Compute(1)]))

    def test_activation_runs_once(self):
        k = zero_kernel()
        k.create_thread("ap", Program([Compute(ms(1))]), priority=5)
        k.run_until(ms(1))
        k.activate("ap")
        trace = k.run_until(ms(10))
        assert len(trace.jobs_of("ap")) == 1

    def test_activation_at_time(self):
        k = zero_kernel()
        k.create_thread("ap", Program([Compute(ms(1))]), priority=5)
        k.activate("ap", at=ms(5))
        trace = k.run_until(ms(10))
        assert trace.jobs_of("ap")[0].release == ms(5)

    def test_queued_activations(self):
        k = zero_kernel()
        k.create_thread("ap", Program([Compute(ms(2))]), priority=5)
        k.activate("ap", at=ms(1))
        k.activate("ap", at=ms(1))
        trace = k.run_until(ms(20))
        assert len(trace.jobs_of("ap")) == 2

    def test_activating_periodic_rejected(self):
        k = zero_kernel()
        k.create_thread("p", Program([Compute(1)]), period=ms(10))
        with pytest.raises(KernelError):
            k.activate("p")


class TestEventsAndSleep:
    def test_signal_wakes_waiter(self):
        k = zero_kernel()
        k.create_event("E")
        k.create_thread("waiter", Program([Wait("E"), Compute(ms(1))]), period=ms(100))
        k.create_thread(
            "signaller",
            Program([Compute(ms(3)), Signal("E")]),
            period=ms(100),
            deadline=ms(90),
        )
        trace = k.run_until(ms(20))
        waiter_job = trace.jobs_of("waiter")[0]
        assert waiter_job.completion == ms(4)

    def test_latched_signal_consumed(self):
        k = zero_kernel()
        k.create_event("E")
        k.create_thread(
            "signaller", Program([Signal("E")]), period=ms(100), deadline=ms(1)
        )
        k.create_thread(
            "waiter",
            Program([Compute(ms(2)), Wait("E"), Compute(ms(1))]),
            period=ms(100),
            phase=0,
        )
        trace = k.run_until(ms(20))
        # The wait finds the latch set and does not block.
        assert trace.jobs_of("waiter")[0].completion == ms(3)

    def test_sleep_blocks_for_duration(self):
        k = zero_kernel()
        k.create_thread(
            "s", Program([Compute(ms(1)), Sleep(ms(5)), Compute(ms(1))]), period=ms(100)
        )
        trace = k.run_until(ms(20))
        assert trace.jobs_of("s")[0].completion == ms(7)

    def test_call_op_runs_function(self):
        seen = []
        k = zero_kernel()
        k.create_thread(
            "c",
            Program([Call(lambda kernel, thread: seen.append(kernel.now))]),
            period=ms(10),
        )
        k.run_until(ms(5))
        assert seen == [0]


class TestRunLoop:
    def test_run_until_past_rejected(self):
        k = zero_kernel()
        k.run_until(ms(5))
        with pytest.raises(ValueError):
            k.run_until(ms(1))

    def test_run_for(self):
        k = zero_kernel()
        k.run_for(ms(7))
        assert k.now == ms(7)

    def test_empty_kernel_idles(self):
        k = zero_kernel()
        trace = k.run_until(ms(10))
        assert trace.idle_time == ms(10)

    def test_duplicate_names_rejected(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(1)]), period=ms(10))
        with pytest.raises(KernelError):
            k.create_thread("t", Program([Compute(1)]), period=ms(10))
        k.create_semaphore("s")
        with pytest.raises(KernelError):
            k.create_semaphore("s")
        k.create_event("e")
        with pytest.raises(KernelError):
            k.create_event("e")

    def test_unknown_objects_rejected(self):
        k = zero_kernel()
        k.create_thread("t", Program([Wait("nope")]), period=ms(10))
        with pytest.raises(KernelError):
            k.run_until(ms(5))
