"""Torture tests: large mixed applications and op-level fuzzing.

These runs exercise every subsystem simultaneously for long virtual
horizons, then audit global invariants: no stuck locks at quiescence,
conserved scheduler populations, clean queue structures, and no
unexplained thread states.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csd import CSDScheduler
from repro.core.overhead import OverheadModel
from repro.kernel.devices import PeriodicDevice
from repro.kernel.kernel import Kernel
from repro.kernel.program import (
    Acquire,
    Compute,
    CvSignal,
    CvWait,
    Program,
    Recv,
    Release,
    Send,
    Signal,
    Sleep,
    StateRead,
    StateWrite,
    Wait,
)
from repro.kernel.thread import ThreadState
from repro.timeunits import ms, seconds, us


def build_torture_kernel(seed=0, threads=24):
    """A large application touching every service."""
    rng = random.Random(seed)
    kernel = Kernel(
        CSDScheduler(OverheadModel(), dp_queue_count=2),
        sem_scheme="emeralds",
        record_segments=False,
    )
    for s in range(3):
        kernel.create_semaphore(f"sem{s}")
    for e in range(2):
        kernel.create_event(f"ev{e}")
    kernel.create_mailbox("mbox", capacity=16)
    kernel.create_channel("chan", slots=6)
    kernel.create_condvar("cv")
    kernel.interrupts.register_event_handler(3, "irq3")
    PeriodicDevice(kernel, "dev", vector=3, period=ms(15), jitter=us(200), seed=seed)

    periods = [5, 8, 10, 20, 25, 40, 50, 100]
    writer_assigned = False
    for i in range(threads):
        period = ms(rng.choice(periods))
        ops = [Compute(us(rng.randint(20, 200)))]
        kind = rng.randrange(6)
        if kind == 0:
            sem = f"sem{rng.randrange(3)}"
            ops += [Acquire(sem), Compute(us(rng.randint(20, 150))), Release(sem)]
        elif kind == 1:
            ops += [Signal(f"ev{rng.randrange(2)}")]
        elif kind == 2 and not writer_assigned:
            ops += [StateWrite("chan", value=i)]
            writer_assigned = True
        elif kind == 3:
            ops += [StateRead("chan", duration=us(rng.randint(0, 100)))]
        elif kind == 4:
            ops += [Sleep(us(rng.randint(50, 500))), Compute(us(30))]
        else:
            sem = f"sem{rng.randrange(3)}"
            ops += [Compute(us(40)), Acquire(sem), Compute(us(60)), Release(sem)]
        kernel.create_thread(
            f"t{i}",
            Program(ops),
            period=period,
            csd_queue=rng.randrange(3),
        )
    # A producer/consumer pair on the mailbox, balanced rates.
    kernel.create_thread(
        "producer",
        Program([Compute(us(50)), Send("mbox", size=8, payload="p")]),
        period=ms(10),
        csd_queue=1,
    )
    kernel.create_thread(
        "consumer",
        Program([Recv("mbox"), Compute(us(50))]),
        period=ms(10),
        csd_queue=2,
    )
    # A condvar pair.
    kernel.create_thread(
        "cv_waiter",
        Program([Acquire("sem0"), CvWait("cv", "sem0"), Release("sem0")]),
        period=ms(50),
        csd_queue=2,
    )
    kernel.create_thread(
        "cv_signaller",
        Program([Compute(us(100)), Acquire("sem0"), CvSignal("cv"), Release("sem0")]),
        period=ms(25),
        csd_queue=2,
    )
    return kernel


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_torture_run_stays_consistent(seed):
    kernel = build_torture_kernel(seed=seed)
    population = len(kernel.scheduler.tasks())
    kernel.run_until(seconds(2))

    # Scheduler population conserved.
    assert len(kernel.scheduler.tasks()) == population
    kernel.scheduler.check_invariants()

    # Run on to a quiescent point: all semaphores free eventually.
    guard = 0
    while any(s.locked for s in kernel.semaphores.values()) and guard < 100:
        kernel.run_for(ms(5))
        guard += 1
    for sem in kernel.semaphores.values():
        assert not sem.locked
        assert not sem.waiters

    # No thread stranded in an impossible state.
    for thread in kernel.threads.values():
        assert thread.state in (
            ThreadState.IDLE,
            ThreadState.READY,
            ThreadState.RUNNING,
            ThreadState.BLOCKED,
        )
        assert thread.effective_key == thread.base_key or thread.held_sems

    # Lots of work actually happened.
    assert len(kernel.trace.jobs) > 1000
    assert kernel.trace.context_switches > 1000


def test_torture_deterministic():
    a = build_torture_kernel(seed=5)
    b = build_torture_kernel(seed=5)
    a.run_until(seconds(1))
    b.run_until(seconds(1))
    assert a.trace.context_switches == b.trace.context_switches
    assert a.trace.kernel_time_total == b.trace.kernel_time_total
    assert len(a.trace.jobs) == len(b.trace.jobs)


def test_torture_emeralds_vs_standard_semantics():
    """Scheme equivalence holds even on the big mixed application
    (zero-cost model so timings coincide)."""
    from repro.core.overhead import ZERO_OVERHEAD

    def run(scheme):
        kernel = build_torture_kernel(seed=7)
        # Rebuild with the chosen scheme and a zero-cost model.
        k = Kernel(
            CSDScheduler(ZERO_OVERHEAD, dp_queue_count=2),
            sem_scheme=scheme,
            record_segments=False,
        )
        # Mirror the construction deterministically.
        src = build_torture_kernel(seed=7)
        for name, sem in src.semaphores.items():
            k.create_semaphore(name)
        for name in src.events_by_name:
            if not name.startswith("irq"):
                k.create_event(name)
        for name, mbox in src.mailboxes.items():
            k.create_mailbox(name, mbox.capacity, mbox.max_message_size)
        for name, chan in src.channels.items():
            k.create_channel(name, chan.slots)
        for name in src.condvars:
            k.create_condvar(name)
        for name, thread in src.threads.items():
            k.create_thread(
                name,
                thread.program,
                period=thread.spec.period if thread.spec else None,
                csd_queue=thread.csd_queue,
            )
        trace = k.run_until(seconds(1))
        return [(j.thread, j.release, j.completion) for j in trace.jobs]

    assert run("standard") == run("emeralds")
