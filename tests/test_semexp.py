"""Tests for the Figure 11 semaphore-overhead experiment.

These assert the paper's published Section 6.4 numbers, which our cost
model is calibrated to reproduce exactly (see
``repro.core.overhead``'s module docstring).
"""

import pytest

from repro.sim.semexp import figure11_series, measure_pair_overhead
from repro.timeunits import us


class TestCalibrationPoints:
    def test_dp_standard_at_15_is_39_3us(self):
        result = measure_pair_overhead("dp", "standard", 15)
        assert result.overhead_ns == us(39.3)

    def test_dp_emeralds_at_15_is_28_3us(self):
        result = measure_pair_overhead("dp", "emeralds", 15)
        assert result.overhead_ns == us(28.3)

    def test_dp_saving_11us_28_percent(self):
        """'For a typical DP queue length of 15, our scheme gives
        savings of 11 us over the standard implementation (a 28%
        improvement)'."""
        std = measure_pair_overhead("dp", "standard", 15)
        new = measure_pair_overhead("dp", "emeralds", 15)
        saving = std.overhead_ns - new.overhead_ns
        assert saving == us(11)
        assert saving / std.overhead_ns == pytest.approx(0.28, abs=0.003)

    def test_fp_emeralds_constant_29_4us(self):
        """'the acquire/release overhead stays constant at 29.4 us'."""
        values = {measure_pair_overhead("fp", "emeralds", n).overhead_ns
                  for n in (3, 10, 15, 25, 30)}
        assert values == {us(29.4)}

    def test_fp_saving_at_15_is_26_percent(self):
        """'For an FP queue length of 15, this is an improvement of
        10.4 us or 26%'."""
        std = measure_pair_overhead("fp", "standard", 15)
        new = measure_pair_overhead("fp", "emeralds", 15)
        saving = std.overhead_ns - new.overhead_ns
        assert saving == us(10.4)
        assert saving / std.overhead_ns == pytest.approx(0.26, abs=0.005)


class TestShapes:
    def test_dp_standard_slope_twice_new_slope(self):
        """'the measurements for the standard scheme have a slope twice
        that of our new scheme' (Figure 11)."""
        rows = figure11_series("dp", lengths=(5, 25))
        (n0, std0, new0), (n1, std1, new1) = rows
        std_slope = (std1 - std0) / (n1 - n0)
        new_slope = (new1 - new0) / (n1 - n0)
        assert std_slope == pytest.approx(2 * new_slope, rel=1e-6)
        # Both slopes come from t_s = 0.25 us per task per switch.
        assert new_slope == pytest.approx(250, rel=1e-6)

    def test_dp_savings_grow_with_queue_length(self):
        """'these savings grow even larger as the DP queue's length
        increases'."""
        savings = [
            measure_pair_overhead("dp", "standard", n).overhead_ns
            - measure_pair_overhead("dp", "emeralds", n).overhead_ns
            for n in (5, 15, 30)
        ]
        assert savings[0] < savings[1] < savings[2]

    def test_fp_standard_linear(self):
        rows = figure11_series("fp", lengths=(5, 15, 25))
        diffs = [rows[1][1] - rows[0][1], rows[2][1] - rows[1][1]]
        assert diffs[0] == diffs[1]  # exactly linear
        assert diffs[0] > 0

    def test_exactly_one_switch_saved(self):
        new = measure_pair_overhead("dp", "emeralds", 10)
        assert new.saved_switches == 1
        std = measure_pair_overhead("dp", "standard", 10)
        assert std.saved_switches == 0
        # Standard performs C1, C2, C3 (Figure 7); EMERALDS performs a
        # single switch at release time.
        assert std.context_switches == 3
        assert new.context_switches == 1


class TestExperimentRobustness:
    def test_queue_length_must_cover_scenario_threads(self):
        with pytest.raises(ValueError):
            measure_pair_overhead("dp", "standard", 2)

    def test_unknown_queue_kind(self):
        with pytest.raises(ValueError):
            measure_pair_overhead("ring", "standard", 5)

    def test_series_rows_structure(self):
        rows = figure11_series("dp", lengths=(4, 6))
        assert [r[0] for r in rows] == [4, 6]
        assert all(len(r) == 3 for r in rows)
