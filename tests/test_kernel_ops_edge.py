"""Edge cases of the kernel op interpreter.

Paths not covered by the behaviour suites: preempted timed state
reads, mailbox-recv as a hint-carrying blocking call, send
re-execution order, sleep-then-acquire parking, and op bookkeeping
across period boundaries.
"""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import (
    Acquire,
    Call,
    Compute,
    Program,
    Recv,
    Release,
    Send,
    Sleep,
    StateRead,
    StateWrite,
)
from repro.timeunits import ms, us


def zero_kernel(**kw):
    return Kernel(EDFScheduler(ZERO_OVERHEAD), **kw)


class TestTimedStateRead:
    def test_preempted_read_completes(self):
        """A timed read outlasting a preemption window still finishes
        and yields a coherent value."""
        k = zero_kernel()
        k.create_channel("c", slots=8)
        k.create_thread(
            "writer", Program([StateWrite("c", value="fresh")]),
            period=ms(2), deadline=ms(1),
        )
        k.create_thread(
            "reader",
            Program([StateRead("c", duration=ms(5)), Compute(us(1))]),
            period=ms(50), deadline=ms(50),
        )
        trace = k.run_until(ms(40))
        reader = k.threads["reader"]
        assert reader.last_read == "fresh"
        assert not trace.deadline_violations(k.now)
        # The read spanned multiple writer preemptions.
        assert k.channels["c"].writes > 5

    def test_zero_duration_read_is_instant(self):
        k = zero_kernel()
        k.create_channel("c", slots=2)
        k.create_thread(
            "w", Program([StateWrite("c", value=7), StateRead("c", duration=0),
                          Call(lambda kern, t: None)]),
            period=ms(10), deadline=ms(5),
        )
        trace = k.run_until(ms(5))
        assert k.threads["w"].last_read == 7
        assert trace.jobs[0].completion == 0  # zero-cost model, no compute


class TestRecvHint:
    def test_recv_preceding_acquire_parks(self):
        """Mailbox receive is a blocking call, so the parser hints it
        and the EMERALDS scheme can park on the wake-up path."""
        k = Kernel(EDFScheduler(ZERO_OVERHEAD), sem_scheme="emeralds")
        k.create_semaphore("S")
        k.create_mailbox("m")
        # T2: recv (blocks), then lock S.
        k.create_thread(
            "T2",
            Program([Recv("m"), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(100), deadline=ms(1),
        )
        # T1: locks S for a long stretch; sends to m mid-hold.
        k.create_thread(
            "T1",
            Program(
                [Acquire("S"), Compute(us(100)),
                 Send("m", size=4, payload="go"), Compute(us(200)),
                 Release("S")]
            ),
            period=ms(100), deadline=ms(10),
        )
        k.run_until(ms(1))
        sem = k.semaphores["S"]
        assert sem.parks == 1  # T2 parked instead of waking at the send
        trace = k.run_until(ms(10))
        assert not trace.deadline_violations(k.now)
        assert k.threads["T2"].last_received == "go"

    def test_sleep_preceding_acquire_parks(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD), sem_scheme="emeralds")
        k.create_semaphore("S")
        k.create_thread(
            "sleeper",
            Program([Sleep(us(100)), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(100), deadline=ms(1),
        )
        k.create_thread(
            "holder",
            Program([Acquire("S"), Compute(us(500)), Release("S")]),
            period=ms(100), deadline=ms(10),
        )
        k.run_until(ms(2))
        assert k.semaphores["S"].parks == 1
        trace = k.run_until(ms(10))
        assert not trace.deadline_violations(k.now)


class TestSendReexecution:
    def test_two_blocked_senders_unblock_in_priority_order(self):
        k = zero_kernel()
        k.create_mailbox("m", capacity=1)
        order = []
        k.create_thread(
            "filler",
            Program([Send("m", size=4, payload="x")]),
            period=ms(100), deadline=ms(1),
        )
        for name, deadline in (("lo", ms(60)), ("hi", ms(30))):
            k.create_thread(
                name,
                Program(
                    [Send("m", size=4, payload=name),
                     Call(lambda kern, t: order.append(t.name))]
                ),
                period=ms(100), deadline=deadline, phase=us(10),
            )
        k.create_thread(
            "drain",
            Program([Compute(ms(1))] + [Recv("m") for _ in range(3)]),
            period=ms(100), deadline=ms(90),
        )
        trace = k.run_until(ms(50))
        # Higher-priority (earlier-deadline) blocked sender goes first.
        assert order == ["hi", "lo"]
        assert not trace.deadline_violations(k.now)

    def test_send_to_waiting_receiver_skips_the_queue(self):
        k = zero_kernel()
        k.create_mailbox("m", capacity=1)
        k.create_thread(
            "rx", Program([Recv("m"), Compute(us(5))]),
            period=ms(100), deadline=ms(1),
        )
        k.create_thread(
            "tx", Program([Compute(us(50)), Send("m", size=4, payload=1)]),
            period=ms(100), deadline=ms(10),
        )
        k.run_until(ms(1))
        assert len(k.mailboxes["m"]) == 0  # direct hand-off, never queued
        assert k.threads["rx"].last_received == 1


class TestPeriodBoundaryBookkeeping:
    def test_op_state_reset_between_jobs(self):
        """remaining/op_started must not leak across jobs."""
        k = zero_kernel()
        k.create_thread(
            "t", Program([Compute(ms(1)), Compute(ms(2))]), period=ms(10)
        )
        trace = k.run_until(ms(35))
        completions = [j.response_time for j in trace.jobs_of("t")]
        assert completions == [ms(3), ms(3), ms(3), ms(3)]

    def test_overrun_job_finishes_before_next_starts(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(13))]), period=ms(10))
        trace = k.run_until(ms(40))
        jobs = trace.jobs_of("t")
        for a, b in zip(jobs, jobs[1:]):
            if a.completion is not None and b.completion is not None:
                assert a.completion <= b.completion

    def test_syscall_count_accumulates(self):
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        k.create_event("E")
        k.create_thread(
            "t", Program([Call(lambda kern, th: None)]), period=ms(10)
        )
        k.run_until(ms(35))
        assert k.syscall_count == 4
