"""Documentation coverage: every public item carries a docstring.

Deliverable discipline: the library's public surface (modules, public
classes, public functions/methods) must be documented.  This test
walks every module under ``repro`` and fails on any undocumented
public item.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_METHOD_NAMES = {
    # dunder/boilerplate that inherits well-known semantics
    "__init__", "__repr__", "__str__", "__len__", "__iter__",
    "__contains__", "__getitem__", "__lt__", "__eq__", "__hash__",
    "__post_init__", "__enter__", "__exit__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_method_documented():
    missing = []
    for module in iter_modules():
        for class_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") and name not in EXEMPT_METHOD_NAMES:
                    continue
                if name in EXEMPT_METHOD_NAMES:
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    missing.append(f"{module.__name__}.{class_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
