"""Parallel cluster execution: pool mechanics + worker-count invariance.

``tests/test_cluster_sync.py`` proves the three sync modes byte-agree
at one worker count; this file covers the parallel machinery itself:
the :class:`~repro.perf.pool.WorkerPool` protocol, invariance of every
observable across worker counts (1/2/4, including dependability,
fault hooks, membership, and replicated state channels), the
``REPRO_CLUSTER_WORKERS=0`` / no-fork serial fallback, the lifecycle
guards, the ``run_until`` same-instant no-op, and the
location-transparent query layer.
"""

import random

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, Wait
from repro.net import (
    Cluster,
    Fieldbus,
    GlobalStateChannel,
    HeartbeatMonitor,
    net_send,
)
from repro.net.cluster import (
    CLUSTER_WORKERS_ENV,
    resolve_cluster_workers,
)
from repro.net.depend import net_registry
from repro.obs.metrics import MetricsRegistry
from repro.perf.pool import WorkerError, WorkerPool, pool_available
from repro.timeunits import ms, us

needs_fork = pytest.mark.skipif(
    not pool_available(), reason="fork start method unavailable"
)


def zero_kernel():
    return Kernel(EDFScheduler(ZERO_OVERHEAD))


# ----------------------------------------------------------------------
# WorkerPool handler factories (module-level: forked children re-resolve
# them by reference when the handler closure pickles its way around).
# ----------------------------------------------------------------------
def _echo_factory(index):
    def handler(msg):
        return (index, msg)

    return handler


def _fragile_factory(index):
    def handler(msg):
        if msg == "explode":
            raise ValueError("boom in worker")
        return msg * 2

    return handler


# Module-level node query (picklable by reference for node_query).
def _query_now(cluster, node):
    return cluster.nodes[node].now


@needs_fork
class TestWorkerPool:
    def test_echo_and_addressing(self):
        with WorkerPool(3, _echo_factory) as pool:
            assert pool.broadcast("hi") == [(0, "hi"), (1, "hi"), (2, "hi")]
            replies = pool.roundtrip(["a", None, "c"])
            assert replies == [(0, "a"), (2, "c")]
            pool.send(1, "direct")
            assert pool.recv(1) == (1, "direct")

    def test_handler_error_propagates_and_pool_survives(self):
        with WorkerPool(2, _fragile_factory) as pool:
            with pytest.raises(WorkerError, match="boom in worker"):
                pool.send(0, "explode")
                pool.recv(0)
            # The worker caught the exception; the pipe still works.
            pool.send(0, 21)
            assert pool.recv(0) == 42

    def test_stats_count_requests(self):
        with WorkerPool(2, _echo_factory) as pool:
            pool.broadcast("x")
            pool.broadcast("y")
            stats = pool.stats()
            assert [s["index"] for s in stats] == [0, 1]
            assert all(s["requests"] == 2 for s in stats)
            assert all(s["busy_s"] >= 0.0 for s in stats)

    def test_close_is_idempotent_and_blocks_sends(self):
        pool = WorkerPool(1, _echo_factory)
        pool.close()
        pool.close()
        with pytest.raises(WorkerError, match="closed"):
            pool.send(0, "late")

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WorkerPool(0, _echo_factory)


# ----------------------------------------------------------------------
# worker-count invariance
# ----------------------------------------------------------------------
def _traffic_cluster(sync, seed, workers=None, dependability=False,
                     fault=False, nodes=4):
    """Mixed periodic senders + drain drivers, seed-varied periods."""
    rng = random.Random(seed)
    cluster = Cluster(Fieldbus(1_000_000), sync=sync, workers=workers)
    if dependability:
        cluster.enable_dependability(4)
    if fault:
        frng = random.Random(seed + 999)

        def hook(start, frame):
            r = frng.random()
            if r < 0.08:
                return "drop"
            if r < 0.16:
                return "corrupt"
            return "ok"

        cluster.bus.fault_hook = hook
    for i in range(nodes):
        kernel = zero_kernel()
        accept = {0x100 + (i + 1) % nodes} if i % 2 == 0 else None
        iface = cluster.add_node(f"n{i}", kernel, accept=accept)
        iface.rx_timeline = []
        period = rng.choice([ms(3), ms(5), ms(7)])
        kernel.create_thread(
            f"tx{i}",
            Program([
                Compute(us(10)),
                net_send(iface, can_id=0x100 + i, size=8),
            ]),
            period=period,
            deadline=period,
        )

        def drain(kern, t, iface=iface):
            while True:
                frame = iface.receive()
                if frame is None:
                    break
                iface.rx_timeline.append((kern.now, frame.can_id, frame.sender))

        kernel.create_thread(
            f"rx{i}",
            Program([Wait(iface.rx_event_name), Call(drain)]),
            period=ms(2),
            deadline=ms(2),
        )
    return cluster


def _snapshot(cluster):
    bus = cluster.bus
    return {
        "traces": cluster.trace_signatures(include_segments=True),
        "timelines": {
            name: tuple(timeline)
            for name, timeline in cluster.rx_timelines().items()
        },
        "bus": (
            bus.frames_delivered,
            bus.frames_dropped,
            bus.frames_corrupted,
            bus.frames_retransmitted,
            bus.error_frames,
            bus.bits_carried,
            bus.total_arbitration_wait_ns,
        ),
        "interfaces": cluster.interface_stats(),
        "events_popped": cluster.total_events_popped(),
    }


@needs_fork
class TestWorkerCountInvariance:
    @pytest.mark.parametrize("seed", [7, 8])
    @pytest.mark.parametrize("dependability,fault", [
        (False, False), (True, True),
    ])
    def test_traffic_identical_for_any_worker_count(
        self, seed, dependability, fault
    ):
        reference = _traffic_cluster(
            "adaptive", seed, dependability=dependability, fault=fault
        )
        reference.run_until(ms(40))
        expected = _snapshot(reference)
        for workers in (1, 2, 4):
            cluster = _traffic_cluster(
                "parallel", seed, workers=workers,
                dependability=dependability, fault=fault,
            )
            cluster.run_until(ms(40))
            # 4 nodes cap the pool at 4; each count must reproduce the
            # serial bytes exactly.
            assert cluster.worker_count == min(workers, 4)
            assert _snapshot(cluster) == expected, f"workers={workers}"
            cluster.close()

    def test_chunked_parallel_run_matches_one_shot_serial(self):
        reference = _traffic_cluster("adaptive", 3)
        reference.run_until(ms(40))
        expected = _snapshot(reference)
        cluster = _traffic_cluster("parallel", 3, workers=2)
        # Chunk edges deliberately land mid-frame (us(50) is inside the
        # first 8-byte frame's wire time) and off the window lattice.
        for t in (us(50), ms(7), ms(13), ms(40)):
            cluster.run_until(t)
        assert _snapshot(cluster) == expected
        cluster.close()

    def _observed_cluster(self, sync, workers=None):
        """Heartbeat membership + a sequenced replicated channel, with a
        mid-run crash and rejoin."""
        cluster = Cluster(sync=sync, workers=workers)
        for i in range(3):
            cluster.add_node(f"n{i}", zero_kernel())
        monitor = HeartbeatMonitor(cluster, period=ms(10))
        channel = GlobalStateChannel(
            cluster, "temp", can_id=0x20, writer_node="n0",
            driver_period=ms(10), sequenced=True,
        )

        def pub(kern, thread):
            channel.publish(kern, thread, kern.now)

        cluster.nodes["n0"].create_thread(
            "pub", Program([Call(pub)]), period=ms(10), deadline=ms(10),
        )
        victim = cluster.nodes["n2"]
        victim.set_restart_policy("hb-tx:n2", max_restarts=1, backoff_ns=ms(30))
        victim.schedule_event(
            ms(35), lambda: victim.crash_thread("hb-tx:n2", "test"),
            label="silence",
        )
        return cluster, monitor, channel

    def test_membership_and_replicas_invariant(self):
        results = {}
        for key, sync, workers in (
            ("serial", "adaptive", None),
            ("w1", "parallel", 1),
            ("w2", "parallel", 2),
            ("w3", "parallel", 3),
        ):
            cluster, monitor, channel = self._observed_cluster(sync, workers)
            cluster.run_until(ms(160))
            results[key] = {
                "events": list(monitor.events),
                "changes": monitor.changes,
                "views": {n: monitor.view(n) for n in cluster.nodes},
                "statuses": channel.statuses(),
                "replicas": {
                    n: channel.read_replica(n) for n in cluster.nodes
                },
                "writer": channel.writer_stats(),
                "metrics": net_registry(
                    cluster, [channel], monitor
                ).to_json(),
                "traces": cluster.trace_signatures(include_segments=True),
            }
            cluster.close()
        assert results["serial"]["events"], "crash was never observed"
        assert results["serial"]["statuses"]["n1"].updates > 5
        for key in ("w1", "w2", "w3"):
            assert results[key] == results["serial"], key


# ----------------------------------------------------------------------
# fallback + worker resolution
# ----------------------------------------------------------------------
class TestFallback:
    def test_env_zero_runs_serial_adaptive(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_WORKERS_ENV, "0")
        reference = _traffic_cluster("adaptive", 5)
        reference.run_until(ms(30))
        cluster = _traffic_cluster("parallel", 5)
        cluster.run_until(ms(30))
        assert not cluster.parallel_active
        assert cluster.worker_count == 0
        assert _snapshot(cluster) == _snapshot(reference)
        # Fallback clusters stay serial: close() must not brick them.
        cluster.close()
        cluster.run_until(ms(31))

    def test_constructor_zero_runs_serial(self):
        cluster = _traffic_cluster("parallel", 5, workers=0)
        cluster.run_until(ms(10))
        assert not cluster.parallel_active

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(CLUSTER_WORKERS_ENV, raising=False)
        assert resolve_cluster_workers(2) == 2
        assert resolve_cluster_workers(None) == 4  # the default
        monkeypatch.setenv(CLUSTER_WORKERS_ENV, "3")
        assert resolve_cluster_workers(None) == 3
        assert resolve_cluster_workers(1) == 1  # explicit beats env
        with pytest.raises(ValueError, match="non-negative"):
            resolve_cluster_workers(-1)

    @needs_fork
    def test_pool_clamped_to_node_count(self):
        cluster = _traffic_cluster("parallel", 5, workers=8, nodes=3)
        cluster.run_until(ms(5))
        assert cluster.worker_count == 3
        cluster.close()


# ----------------------------------------------------------------------
# lifecycle guards + the same-instant no-op
# ----------------------------------------------------------------------
@needs_fork
class TestLifecycle:
    def test_post_fork_mutations_rejected(self):
        cluster = _traffic_cluster("parallel", 1, workers=2)
        assert cluster.start_workers()
        with pytest.raises(RuntimeError, match="add nodes"):
            cluster.add_node("late", zero_kernel())
        with pytest.raises(RuntimeError, match="dependability"):
            cluster.enable_dependability()
        with pytest.raises(RuntimeError, match="shared"):
            cluster.register_shared(object())
        cluster.close()

    def test_closed_cluster_rejects_runs_and_queries(self):
        cluster = _traffic_cluster("parallel", 1, workers=2)
        cluster.run_until(ms(5))
        cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            cluster.run_until(ms(10))
        with pytest.raises(RuntimeError, match="closed"):
            cluster.trace_signatures()
        with pytest.raises(RuntimeError, match="closed"):
            cluster.node_query("n0", _query_now)

    def test_rerun_to_same_instant_is_a_noop(self):
        for sync, workers in (("adaptive", None), ("parallel", 2)):
            cluster = _traffic_cluster(sync, 2, workers=workers)
            cluster.run_until(ms(15))
            rounds = cluster.sync_rounds
            before = _snapshot(cluster)
            cluster.run_until(ms(15))
            assert cluster.sync_rounds == rounds, sync
            assert _snapshot(cluster) == before, sync
            cluster.close()

    def test_noop_run_does_not_spawn_workers(self):
        cluster = _traffic_cluster("parallel", 2, workers=2)
        cluster.run_until(0)
        assert not cluster.parallel_active
        assert cluster.worker_count == 0


# ----------------------------------------------------------------------
# location-transparent queries
# ----------------------------------------------------------------------
@needs_fork
class TestQueries:
    def test_node_query_and_map_nodes_reach_worker_state(self):
        serial = _traffic_cluster("adaptive", 4)
        serial.run_until(ms(20))
        cluster = _traffic_cluster("parallel", 4, workers=2)
        cluster.run_until(ms(20))
        assert cluster.parallel_active
        assert cluster.node_query("n1", _query_now) == ms(20)
        assert cluster.map_nodes(_query_now) == serial.map_nodes(_query_now)
        assert (
            cluster.total_events_popped() == serial.total_events_popped()
        )
        with pytest.raises(ValueError, match="unknown node"):
            cluster.node_query("ghost", _query_now)
        cluster.close()

    def test_worker_stats_report_barrier_traffic(self):
        cluster = _traffic_cluster("parallel", 4, workers=2)
        assert cluster.worker_stats() is None or True  # pool not started yet
        cluster.run_until(ms(20))
        stats = cluster.worker_stats()
        assert len(stats) == 2
        # Every worker served at least the initial sync + one window.
        assert all(s["requests"] >= 2 for s in stats)
        cluster.close()


# ----------------------------------------------------------------------
# cross-process metrics folding
# ----------------------------------------------------------------------
class TestMetricsMerged:
    def test_merge_folds_in_order(self):
        shards = []
        for base in (1, 10):
            reg = MetricsRegistry()
            reg.counter("jobs_total", node=f"n{base}").inc(base)
            reg.counter("shared_total").inc(base)
            reg.gauge("depth").set(base)
            reg.histogram("lat", buckets=(10, 20)).observe(base)
            shards.append(reg)
        merged = MetricsRegistry().merge(*shards)
        out = merged.to_dict()
        assert out["shared_total"]["series"][0]["value"] == 11
        assert out["depth"]["series"][0]["value"] == 10
        assert out["depth"]["series"][0]["max"] == 10
        assert out["lat"]["series"][0]["count"] == 2
        # Same shards, same order -> byte-identical export.
        again = MetricsRegistry().merge(*shards)
        assert again.to_json() == merged.to_json()
