"""Tests for the offline CSD allocation search (Section 5.5.3)."""

import pytest

from repro.core.allocation import balanced_splits, candidate_splits, find_feasible_splits
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import csd_schedulable
from repro.core.task import TaskSpec, Workload, table2_workload
from repro.sim.workload import generate_workload
from repro.timeunits import ms


def uniform_workload(n, period_ms=10):
    return Workload(
        TaskSpec(name=f"t{i}", period=ms(period_ms + i), wcet=ms(1)) for i in range(n)
    )


class TestBalancedSplits:
    def test_zero_tasks(self):
        assert balanced_splits(uniform_workload(4), 2, 0) == (0, 0)

    def test_last_split_is_r(self):
        w = uniform_workload(10)
        for dp_bands in (1, 2, 3):
            for r in (0, 3, 10):
                splits = balanced_splits(w, dp_bands, r)
                assert len(splits) == dp_bands
                assert splits[-1] == r
                assert all(splits[i] <= splits[i + 1] for i in range(len(splits) - 1))

    def test_no_dp_bands(self):
        assert balanced_splits(uniform_workload(4), 0, 0) == ()

    def test_balances_inverse_period_rate(self):
        """Short-period tasks weigh more, so DP1 gets fewer of them."""
        tasks = [TaskSpec(name="fast", period=ms(1), wcet=ms(0.1))]
        tasks += [
            TaskSpec(name=f"slow{i}", period=ms(100 + i), wcet=ms(1)) for i in range(9)
        ]
        w = Workload(tasks)
        q, r = balanced_splits(w, 2, 10)
        # The single 1 ms task carries ~92% of the rate; it sits alone
        # in DP1.
        assert q == 1


class TestCandidateSplits:
    def test_csd2_enumeration_is_complete(self):
        w = uniform_workload(6)
        seen = {s for s in candidate_splits(w, 1)}
        assert seen == {(r,) for r in range(7)}

    def test_csd3_covers_all_pairs(self):
        w = uniform_workload(5)
        seen = set(candidate_splits(w, 2))
        expected = {(q, r) for r in range(6) for q in range(r + 1)}
        assert expected <= seen

    def test_candidates_are_valid(self):
        w = uniform_workload(8)
        for splits in candidate_splits(w, 3):
            assert len(splits) == 3
            assert all(0 <= s <= 8 for s in splits)
            assert all(splits[i] <= splits[i + 1] for i in range(2))


class TestFindFeasibleSplits:
    def test_finds_table2_allocation(self):
        w = table2_workload()
        splits = find_feasible_splits(w, 1, ZERO_OVERHEAD)
        assert splits is not None
        assert csd_schedulable(w, splits, ZERO_OVERHEAD)
        # The troublesome task tau5 (index 4) must be in the DP queue.
        assert splits[0] >= 5

    def test_infeasible_returns_none(self):
        w = Workload(
            [
                TaskSpec(name="a", period=ms(10), wcet=ms(8)),
                TaskSpec(name="b", period=ms(10), wcet=ms(8)),
            ]
        )
        assert find_feasible_splits(w, 1, ZERO_OVERHEAD) is None

    def test_hint_is_tried_first(self):
        w = table2_workload()
        hint = (5,)
        splits = find_feasible_splits(w, 1, ZERO_OVERHEAD, hint=hint)
        assert splits == hint

    def test_invalid_hint_ignored(self):
        w = table2_workload()
        splits = find_feasible_splits(w, 1, ZERO_OVERHEAD, hint=(99,))
        assert splits is not None

    def test_found_allocation_is_schedulable(self):
        model = OverheadModel()
        for seed in range(5):
            w = generate_workload(12, seed=seed, utilization=0.6)
            splits = find_feasible_splits(w, 2, model)
            if splits is not None:
                assert csd_schedulable(w, splits, model)

    def test_respects_max_tests(self):
        w = Workload(
            [
                TaskSpec(name="a", period=ms(10), wcet=ms(8)),
                TaskSpec(name="b", period=ms(10), wcet=ms(8)),
            ]
        )
        assert find_feasible_splits(w, 1, ZERO_OVERHEAD, max_tests=1) is None
