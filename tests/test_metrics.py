"""Tests for trace metrics (response stats, miss ratio, CPU breakdown)."""

import pytest

from repro.analysis.metrics import cpu_breakdown, miss_ratio, response_stats
from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program
from repro.sim.trace import Trace
from repro.timeunits import ms


def run_simple(model=ZERO_OVERHEAD, wcet=ms(2), period=ms(10), horizon=ms(100)):
    k = Kernel(EDFScheduler(model))
    k.create_thread("t", Program([Compute(wcet)]), period=period)
    trace = k.run_until(horizon)
    return k, trace


class TestResponseStats:
    def test_uncontended_task(self):
        k, trace = run_simple()
        stats = response_stats(trace, "t")
        assert stats.jobs == 10
        assert stats.completed == 10
        assert stats.minimum == ms(2)
        assert stats.maximum == ms(2)
        assert stats.mean == ms(2)
        assert stats.p99 == ms(2)
        assert stats.completion_ratio == 1.0

    def test_no_jobs(self):
        stats = response_stats(Trace(), "ghost")
        assert stats.jobs == 0
        assert stats.minimum is None
        assert stats.completion_ratio == 0.0

    def test_contended_task_varies(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_thread("hi", Program([Compute(ms(3))]), period=ms(10),
                        deadline=ms(5))
        k.create_thread("lo", Program([Compute(ms(2))]), period=ms(20))
        trace = k.run_until(ms(100))
        stats = response_stats(trace, "lo")
        assert stats.maximum >= stats.minimum
        assert stats.maximum == ms(5)  # waits behind hi's 3 ms


class TestMissRatio:
    def test_zero_for_feasible(self):
        k, trace = run_simple()
        assert miss_ratio(trace, k.now) == 0.0

    def test_one_for_always_late(self):
        k, trace = run_simple(wcet=ms(15), period=ms(10), horizon=ms(100))
        assert miss_ratio(trace, k.now) > 0.5

    def test_per_thread_filter(self):
        # RM's strict priorities isolate "good" from the overloaded
        # "bad" (under EDF, bad's accumulated lateness would eventually
        # poison good's deadlines too -- the overload domino effect).
        from repro.core.rm import RMScheduler

        k = Kernel(RMScheduler(ZERO_OVERHEAD))
        k.create_thread("good", Program([Compute(ms(1))]), period=ms(10))
        k.create_thread("bad", Program([Compute(ms(25))]), period=ms(20))
        trace = k.run_until(ms(100))
        assert miss_ratio(trace, k.now, "good") == 0.0
        assert miss_ratio(trace, k.now, "bad") > 0.0

    def test_empty_trace(self):
        assert miss_ratio(Trace(), 0) == 0.0


class TestCpuBreakdown:
    def test_shares_sum_to_one_zero_model(self):
        k, trace = run_simple()
        b = cpu_breakdown(trace, 0, k.now)
        assert b.application_ns == ms(20)
        assert b.kernel_ns == 0
        assert b.idle_ns == ms(80)
        assert b.application_share + b.kernel_share + b.idle_share == pytest.approx(1.0)

    def test_kernel_time_appears_with_model(self):
        k, trace = run_simple(model=OverheadModel())
        b = cpu_breakdown(trace, 0, k.now)
        assert b.kernel_ns > 0
        assert b.kernel_by_category["sched"] > 0
        assert (
            b.application_ns + b.kernel_ns + b.idle_ns == b.window_ns
        )

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            cpu_breakdown(Trace(), 10, 10)
