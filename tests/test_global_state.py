"""Tests for globally replicated state messages over the fieldbus."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, StateRead
from repro.net import Cluster, Fieldbus
from repro.net.global_state import GlobalStateChannel
from repro.timeunits import ms, us


def zero_kernel():
    return Kernel(EDFScheduler(ZERO_OVERHEAD))


def make_cluster(n_nodes=3):
    cluster = Cluster(Fieldbus(1_000_000))
    for i in range(n_nodes):
        cluster.add_node(f"n{i}", zero_kernel())
    return cluster


class TestGlobalStateChannel:
    def test_replicas_created_on_every_node(self):
        cluster = make_cluster(3)
        channel = GlobalStateChannel(cluster, "speed", can_id=0x10, writer_node="n0")
        assert set(channel.replicas) == {"n0", "n1", "n2"}
        for node in ("n1", "n2"):
            assert channel.channel_name(node) in cluster.nodes[node].channels

    def test_unknown_writer_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ValueError):
            GlobalStateChannel(cluster, "x", can_id=1, writer_node="ghost")

    def test_value_propagates_to_all_replicas(self):
        cluster = make_cluster(3)
        channel = GlobalStateChannel(
            cluster, "speed", can_id=0x10, writer_node="n0", driver_period=ms(5)
        )
        writer = cluster.nodes["n0"]
        counter = {"v": 0}

        def next_value(kernel, thread):
            counter["v"] += 1
            return counter["v"]

        writer.create_thread(
            "publisher",
            Program([Compute(us(50)), channel.publish_op(value_fn=next_value)]),
            period=ms(10),
            deadline=ms(5),
        )
        cluster.run_until(ms(100))
        authoritative = channel.local_channel("n0").read()
        assert authoritative == counter["v"]
        for node in ("n1", "n2"):
            value = channel.local_channel(node).read()
            # Replicas hold the latest or the immediately preceding
            # value (one bus latency behind).
            assert value in (authoritative, authoritative - 1)
            assert value >= 1

    def test_reader_threads_use_plain_state_reads(self):
        cluster = make_cluster(2)
        channel = GlobalStateChannel(
            cluster, "temp", can_id=0x11, writer_node="n0", driver_period=ms(5)
        )
        writer = cluster.nodes["n0"]
        writer.create_thread(
            "publisher",
            Program([channel.publish_op(value=42)]),
            period=ms(10),
            deadline=ms(5),
        )
        reader_kernel = cluster.nodes["n1"]
        seen = []
        reader_kernel.create_thread(
            "reader",
            Program(
                [
                    StateRead(channel.channel_name("n1")),
                    Call(lambda kern, t: seen.append(t.last_read)),
                ]
            ),
            period=ms(20),
            deadline=ms(15),
        )
        cluster.run_until(ms(100))
        assert 42 in seen

    def test_acceptance_filters_extended(self):
        cluster = Cluster(Fieldbus(1_000_000))
        cluster.add_node("w", zero_kernel())
        cluster.add_node("r", zero_kernel(), accept={0x99})
        channel = GlobalStateChannel(cluster, "s", can_id=0x10, writer_node="w")
        assert 0x10 in cluster.interfaces["r"].accept

    def test_multiple_channels_share_the_driver_queue(self):
        """Two global channels on the same cluster: each driver passes
        frames of the other channel through untouched."""
        cluster = make_cluster(2)
        speed = GlobalStateChannel(
            cluster, "speed", can_id=0x10, writer_node="n0", driver_period=ms(5)
        )
        temp = GlobalStateChannel(
            cluster, "temp", can_id=0x11, writer_node="n0", driver_period=ms(5)
        )
        writer = cluster.nodes["n0"]
        writer.create_thread(
            "publisher",
            Program(
                [speed.publish_op(value="fast"), temp.publish_op(value="warm")]
            ),
            period=ms(10),
            deadline=ms(5),
        )
        cluster.run_until(ms(60))
        assert speed.local_channel("n1").read() == "fast"
        assert temp.local_channel("n1").read() == "warm"

    def test_no_torn_reads_on_replicas(self):
        cluster = make_cluster(2)
        channel = GlobalStateChannel(
            cluster, "s", can_id=0x10, writer_node="n0", driver_period=ms(2)
        )
        writer = cluster.nodes["n0"]
        writer.create_thread(
            "publisher", Program([channel.publish_op(value=1)]),
            period=ms(5), deadline=ms(3),
        )
        reader = cluster.nodes["n1"]
        reader.create_thread(
            "slow_reader",
            Program([StateRead(channel.channel_name("n1"), duration=ms(1))]),
            period=ms(10), deadline=ms(10),
        )
        cluster.run_until(ms(200))
        assert channel.local_channel("n1").torn_reads == 0
