"""Tests for thread programs and the Section 6.2.1 code parser."""

import pytest

from repro.kernel.program import (
    Acquire,
    Compute,
    Program,
    Recv,
    Release,
    Send,
    Signal,
    Sleep,
    StateRead,
    Wait,
)
from repro.sync.parser import insert_hints
from repro.timeunits import us


class TestProgram:
    def test_compute_total(self):
        p = Program([Compute(us(5)), Acquire("s"), Compute(us(7)), Release("s")])
        assert p.compute_total() == us(12)

    def test_rejects_non_ops(self):
        with pytest.raises(TypeError):
            Program(["compute"])

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-1)

    def test_zero_size_message_rejected(self):
        with pytest.raises(ValueError):
            Send("m", size=0)

    def test_indexing(self):
        ops = [Compute(1), Signal("e")]
        p = Program(ops)
        assert len(p) == 2
        assert p[1] is ops[1]
        assert list(p) == ops

    def test_blocking_flags(self):
        assert Acquire("s").blocking
        assert Wait("e").blocking
        assert Recv("m").blocking
        assert Sleep(1).blocking
        assert Send("m").blocking
        assert not Release("s").blocking
        assert not Compute(1).blocking
        assert not StateRead("c").blocking


class TestParser:
    def test_wait_before_acquire_gets_hint(self):
        p = Program([Wait("E"), Compute(us(2)), Acquire("S"), Release("S")])
        parsed = insert_hints(p)
        assert parsed.program[0].hint == "S"
        assert parsed.hints_inserted == 1

    def test_wait_before_non_acquire_gets_none(self):
        p = Program([Wait("E"), Compute(us(2)), Wait("F"), Acquire("S")])
        parsed = insert_hints(p)
        # First Wait's next blocking op is Wait("F"), not an acquire.
        assert parsed.program[0].hint is None
        # Second Wait is followed by the acquire.
        assert parsed.program[2].hint == "S"

    def test_recv_and_sleep_are_hintable(self):
        p = Program([Recv("M"), Acquire("S"), Release("S"), Sleep(us(5)), Acquire("T")])
        parsed = insert_hints(p)
        assert parsed.program[0].hint == "S"
        assert parsed.program[3].hint == "T"
        assert parsed.hints_inserted == 2

    def test_period_hint_when_body_starts_with_acquire(self):
        """The implicit period-boundary block is a blocking call too:
        if the first blocking op of the body is an Acquire, the hint
        belongs to the period block."""
        p = Program([Compute(us(3)), Acquire("S"), Release("S")])
        parsed = insert_hints(p)
        assert parsed.period_hint == "S"

    def test_no_period_hint_when_body_starts_with_wait(self):
        p = Program([Wait("E"), Acquire("S")])
        parsed = insert_hints(p)
        assert parsed.period_hint is None

    def test_program_without_acquires_untouched(self):
        ops = [Wait("E"), Compute(us(1)), Signal("F")]
        parsed = insert_hints(Program(ops))
        assert parsed.hints_inserted == 0
        assert parsed.period_hint is None
        assert parsed.program[0].hint is None

    def test_parser_is_idempotent(self):
        p = Program([Wait("E"), Acquire("S"), Release("S")])
        once = insert_hints(p)
        twice = insert_hints(once.program)
        assert [getattr(op, "hint", None) for op in once.program] == [
            getattr(op, "hint", None) for op in twice.program
        ]

    def test_intervening_nonblocking_ops_do_not_break_hint(self):
        p = Program(
            [
                Wait("E"),
                Compute(us(1)),
                Signal("X"),
                StateRead("c"),
                Acquire("S"),
            ]
        )
        assert insert_hints(p).program[0].hint == "S"
