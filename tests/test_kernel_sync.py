"""Behavioural tests for semaphores, priority inheritance, condvars."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.core.rm import RMScheduler
from repro.kernel.kernel import Kernel
from repro.kernel.program import (
    Acquire,
    Compute,
    CvSignal,
    CvWait,
    Program,
    Release,
    Signal,
    Wait,
)
from repro.sync.semaphore import SemaphoreError
from repro.timeunits import ms, us


def kernel_with(scheme="standard", scheduler=None):
    return Kernel(scheduler or EDFScheduler(ZERO_OVERHEAD), sem_scheme=scheme)


def critical(sem, duration, tail=us(10)):
    return Program([Acquire(sem), Compute(duration), Release(sem), Compute(tail)])


class TestMutualExclusion:
    @pytest.mark.parametrize("scheme", ["standard", "emeralds"])
    def test_critical_sections_never_overlap(self, scheme):
        k = kernel_with(scheme)
        k.create_semaphore("m")
        holders = []

        def enter(kern, thread):
            sem = kern.semaphores["m"]
            assert sem.holder is thread
            holders.append(thread.name)

        from repro.kernel.program import Call

        body = Program(
            [Acquire("m"), Call(enter), Compute(ms(1)), Release("m")]
        )
        k.create_thread("a", body, period=ms(10))
        k.create_thread("b", body, period=ms(10), phase=us(100))
        trace = k.run_until(ms(50))
        assert len(holders) == 10
        assert not trace.deadline_violations(k.now)

    @pytest.mark.parametrize("scheme", ["standard", "emeralds"])
    def test_blocked_acquirer_gets_lock_on_release(self, scheme):
        k = kernel_with(scheme)
        k.create_semaphore("m")
        k.create_thread("first", critical("m", ms(2)), period=ms(100), deadline=ms(90))
        k.create_thread(
            "second", critical("m", ms(1)), period=ms(100), deadline=ms(50),
            phase=us(500),
        )
        trace = k.run_until(ms(10))
        # second has higher priority but arrives while first holds m;
        # it finishes right after the release: first's 2 ms critical
        # section, then second's 1 ms one, plus second's 10 us tail.
        second = trace.jobs_of("second")[0]
        assert second.completion == ms(3) + us(10)

    def test_release_by_non_holder_raises(self):
        k = kernel_with("standard")
        k.create_semaphore("m")
        k.create_thread("bad", Program([Release("m")]), period=ms(10))
        with pytest.raises(SemaphoreError):
            k.run_until(ms(5))

    def test_counting_semaphore_admits_capacity(self):
        from repro.kernel.program import Sleep

        k = kernel_with("standard")
        k.create_semaphore("pool", capacity=2)
        # Sleeping inside the critical section makes the sections
        # overlap on the single CPU, so capacity actually matters.
        body = Program([Acquire("pool"), Sleep(ms(2)), Release("pool")])
        for i, name in enumerate("abc"):
            k.create_thread(name, body, period=ms(100), deadline=ms(50 + i))
        k.run_until(ms(10))
        sem = k.semaphores["pool"]
        assert sem.acquires == 3
        assert sem.contended_acquires == 1
        trace = k.trace
        # a and b slept concurrently; c had to wait for a's release.
        assert trace.jobs_of("a")[0].completion < ms(3)
        assert trace.jobs_of("b")[0].completion < ms(3)
        assert trace.jobs_of("c")[0].completion > ms(3)


class TestPriorityInheritance:
    def test_classic_inversion_bounded(self):
        """Low holds the lock; medium must not starve high (Section 6.1)."""
        k = Kernel(RMScheduler(ZERO_OVERHEAD), sem_scheme="standard")
        k.create_semaphore("m")
        # Low locks first.
        k.create_thread("low", critical("m", ms(4)), period=ms(100))
        # Medium would run for a long time without PI.
        k.create_thread("med", Program([Compute(ms(20))]), period=ms(60), phase=us(200))
        # High arrives and needs the lock.
        k.create_thread("high", critical("m", ms(1)), period=ms(30), phase=us(400))
        trace = k.run_until(ms(30))
        high = trace.jobs_of("high")[0]
        # With PI, high waits only for low's critical section, not med.
        assert high.completion is not None
        assert high.completion < ms(7)
        # med must not have run between high's arrival and completion.
        med_before = [
            s for s in trace.segments
            if s.who == "med" and s.start < high.completion
        ]
        assert sum(s.duration for s in med_before) <= us(400)

    def test_transitive_inheritance(self):
        """high blocks on m1 held by mid, which blocks on m2 held by
        low: low must inherit high's priority through the chain."""
        k = Kernel(RMScheduler(ZERO_OVERHEAD), sem_scheme="standard")
        k.create_semaphore("m1")
        k.create_semaphore("m2")
        k.create_thread("low", critical("m2", ms(3)), period=ms(400))
        k.create_thread(
            "mid",
            Program(
                [Acquire("m1"), Acquire("m2"), Compute(ms(1)), Release("m2"), Release("m1")]
            ),
            period=ms(300),
            phase=us(100),
        )
        k.create_thread("noise", Program([Compute(ms(50))]), period=ms(200), phase=us(200))
        k.create_thread("high", critical("m1", ms(1)), period=ms(100), phase=us(300))
        trace = k.run_until(ms(50))
        high = trace.jobs_of("high")[0]
        # low (3ms) then mid (1ms) then high (1ms), plus epsilon: noise
        # (period 200 > 100) must not delay the chain once high arrives.
        assert high.completion is not None
        assert high.completion < ms(6)

    def test_priority_restored_after_release(self):
        k = Kernel(RMScheduler(ZERO_OVERHEAD), sem_scheme="standard")
        k.create_semaphore("m")
        k.create_thread("low", critical("m", ms(2)), period=ms(100))
        k.create_thread("high", critical("m", ms(1)), period=ms(10), phase=us(100))
        k.run_until(ms(50))
        low = k.threads["low"]
        assert low.effective_key == low.base_key
        assert low.pi_deadline is None


class TestEmeraldsScheme:
    def build_fig8(self, scheme, **sem_flags):
        """The Figure 6/8 scenario.

        E is fired by a timer (modelling the external event of the
        paper's figure) at t = 100 us, while T1 -- which locked S as
        soon as T2 blocked -- is still inside its 200 us critical
        section.
        """
        k = kernel_with(scheme)
        k.create_semaphore("S", **sem_flags)
        k.create_event("E")
        # Priorities exactly as Figure 6: T2 highest, Tx middle, T1
        # lowest.  T1 locks S at t=0, Tx preempts it at 50 us and is
        # the thread executing when E fires at 100 us.
        k.create_thread(
            "T2",
            Program([Wait("E"), Compute(us(5)), Acquire("S"),
                     Compute(us(20)), Release("S"), Compute(us(5))]),
            period=ms(100), deadline=ms(1),
        )
        k.create_thread(
            "T1",
            Program([Acquire("S"), Compute(us(200)), Release("S"), Compute(us(5))]),
            period=ms(100), deadline=ms(20),
        )
        k.create_thread(
            "Tx",
            Program([Compute(us(300))]),
            period=ms(100), deadline=ms(5), phase=us(50),
        )
        k.create_timer("fireE", us(100), lambda kern: kern.events_by_name["E"].signal(kern))
        k.timers["fireE"].start()
        return k

    def test_park_eliminates_context_switch(self):
        std = self.build_fig8("standard")
        std.run_until(ms(2))
        new = self.build_fig8("emeralds")
        new.run_until(ms(2))
        # Everyone still completes, correctly.
        for k in (std, new):
            assert not k.trace.deadline_violations(k.now)
        assert new.trace.context_switches == std.trace.context_switches - 1
        assert new.semaphores["S"].parks == 1
        assert new.semaphores["S"].saved_switches == 1

    def test_parked_thread_not_made_ready_while_locked(self):
        k = self.build_fig8("emeralds")
        sem = k.semaphores["S"]
        # Run until the park happened.
        while sem.parks == 0 and k.now < ms(2):
            k.run_for(us(10))
        t2 = k.threads["T2"]
        assert t2.blocked_on == "sem-parked:S"
        assert not t2.ready

    def test_parking_does_pi(self):
        k = self.build_fig8("emeralds")
        sem = k.semaphores["S"]
        while sem.parks == 0 and k.now < ms(2):
            k.run_for(us(10))
        t1 = k.threads["T1"]
        t2 = k.threads["T2"]
        # T1 inherited T2's (earlier) deadline.
        assert t1.pi_deadline is not None
        assert t1.pi_deadline <= t2.effective_deadline

    def test_hint_parking_can_be_disabled(self):
        k = self.build_fig8("emeralds", use_hint_parking=False)
        k.run_until(ms(2))
        assert k.semaphores["S"].parks == 0
        assert not k.trace.deadline_violations(k.now)

    def test_t2_outcome_identical_across_schemes(self):
        """The optimization must not change *what* happens, only cost."""
        std = self.build_fig8("standard")
        std_trace = std.run_until(ms(2))
        new = self.build_fig8("emeralds")
        new_trace = new.run_until(ms(2))
        for name in ("T1", "T2", "Tx"):
            assert len(std_trace.jobs_of(name)) == len(new_trace.jobs_of(name))
        # With zero overheads, completion times agree exactly.
        assert (
            std_trace.jobs_of("T2")[0].completion
            == new_trace.jobs_of("T2")[0].completion
        )

    def test_registry_prevents_wasted_wakeup(self):
        """Figure 9 (case B): S is free when E fires, but a higher
        priority thread grabs it before T2 reaches acquire_sem.  The
        registry must freeze T2 until the release."""
        k = kernel_with("emeralds")
        k.create_semaphore("S")
        k.create_event("E")
        k.create_event("F")
        # T2: wakes on E, then locks S -- but T1 will get there first.
        k.create_thread(
            "T2",
            Program([Wait("E"), Compute(us(100)), Acquire("S"),
                     Compute(us(10)), Release("S")]),
            period=ms(100), deadline=ms(10),
        )
        # T1: higher priority; wakes on F, locks S, then blocks on the
        # next F while *holding* S (the problematic case of Figure 9).
        k.create_thread(
            "T1",
            Program([Wait("F"), Acquire("S"), Wait("F"),
                     Compute(us(10)), Release("S")]),
            period=ms(100), deadline=ms(1),
        )
        # Timers: E at 20 us (S free -> T2 goes on the registry); F at
        # 30 us (T1 preempts mid-compute, locks S, freezing T2); F
        # again at 500 us (T1 finishes and releases).
        def fire(event):
            return lambda kern: kern.events_by_name[event].signal(kern)

        k.create_timer("e1", us(20), fire("E"))
        k.create_timer("f1", us(30), fire("F"))
        k.create_timer("f2", us(500), fire("F"))
        for t in k.timers.values():
            t.start()
        trace = k.run_until(ms(5))
        sem = k.semaphores["S"]
        assert sem.registry_blocks >= 1
        assert not trace.deadline_violations(k.now)
        # T2 completed after the second F (it was frozen meanwhile).
        assert trace.jobs_of("T2")[0].completion > us(500)

    def test_swap_pi_used_on_fp_queue(self):
        k = Kernel(RMScheduler(ZERO_OVERHEAD), sem_scheme="emeralds")
        k.create_semaphore("S")
        k.create_event("E")
        k.create_thread(
            "T2",
            Program([Wait("E"), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(10),
        )
        k.create_thread(
            "T1",
            Program([Acquire("S"), Compute(us(200)), Release("S")]),
            period=ms(50),
        )
        k.create_thread(
            "Tx", Program([Compute(us(50)), Signal("E"), Compute(us(50))]),
            period=ms(80),
        )
        k.run_until(ms(1))
        k.scheduler.check_invariants()
        trace = k.run_until(ms(5))
        assert not trace.deadline_violations(k.now)
        k.scheduler.check_invariants()
        t1 = k.threads["T1"]
        assert t1.pi_donor_of is None  # swap undone
        assert t1.effective_key == t1.base_key


class TestConditionVariables:
    def test_wait_signal_roundtrip(self):
        k = kernel_with("standard")
        k.create_semaphore("m")
        k.create_condvar("cv")
        k.create_thread(
            "consumer",
            Program([Acquire("m"), CvWait("cv", "m"), Compute(us(10)), Release("m")]),
            period=ms(100), deadline=ms(10),
        )
        k.create_thread(
            "producer",
            Program([Compute(ms(1)), Acquire("m"), CvSignal("cv"), Release("m")]),
            period=ms(100), deadline=ms(50),
        )
        trace = k.run_until(ms(10))
        consumer = trace.jobs_of("consumer")[0]
        assert consumer.completion is not None
        assert consumer.completion > ms(1)  # had to wait for the signal

    def test_signal_without_waiters_is_noop(self):
        k = kernel_with("standard")
        k.create_semaphore("m")
        k.create_condvar("cv")
        k.create_thread(
            "p", Program([Acquire("m"), CvSignal("cv"), Release("m")]), period=ms(10)
        )
        trace = k.run_until(ms(5))
        assert not trace.deadline_violations(k.now)

    def test_wait_without_mutex_raises(self):
        from repro.sync.condvar import CondVarError

        k = kernel_with("standard")
        k.create_semaphore("m")
        k.create_condvar("cv")
        k.create_thread("bad", Program([CvWait("cv", "m")]), period=ms(10))
        with pytest.raises(CondVarError):
            k.run_until(ms(5))

    def test_broadcast_wakes_all(self):
        from repro.kernel.program import CvBroadcast

        k = kernel_with("standard")
        k.create_semaphore("m")
        k.create_condvar("cv")
        body = Program([Acquire("m"), CvWait("cv", "m"), Release("m")])
        k.create_thread("w1", body, period=ms(100), deadline=ms(20))
        k.create_thread("w2", body, period=ms(100), deadline=ms(30))
        k.create_thread(
            "b",
            Program([Compute(ms(1)), Acquire("m"), CvBroadcast("cv"), Release("m")]),
            period=ms(100), deadline=ms(50),
        )
        trace = k.run_until(ms(10))
        assert trace.jobs_of("w1")[0].completion is not None
        assert trace.jobs_of("w2")[0].completion is not None
