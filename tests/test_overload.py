"""Overload behaviour: what happens past the breakdown point.

The paper's evaluation stops at the breakdown utilization; a kernel a
downstream user adopts must also behave sanely *beyond* it.  These
tests document the overload semantics of each policy:

* EDF exhibits the classic domino effect -- a late job's old deadline
  outranks everything, so overload spreads to innocent tasks;
* fixed-priority scheduling isolates higher-priority tasks from
  lower-priority overload completely;
* CSD inherits isolation across bands: an overloaded FP band cannot
  disturb the DP bands;
* transient overload drains: pending releases are queued, not lost,
  and the system returns to meeting deadlines once the burst passes.
"""

import pytest

from repro.core.csd import CSDScheduler
from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.core.rm import RMScheduler
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program
from repro.timeunits import ms


class TestEdfDomino:
    def test_overload_spreads_under_edf(self):
        """A single overloaded task drags an easily-schedulable one
        into missing deadlines (late deadlines dominate selection)."""
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_thread("light", Program([Compute(ms(1))]), period=ms(10))
        k.create_thread("heavy", Program([Compute(ms(12))]), period=ms(10))
        trace = k.run_until(ms(200))
        light_misses = [
            j for j in trace.deadline_violations(k.now) if j.thread == "light"
        ]
        assert light_misses  # the domino effect

    def test_same_workload_isolated_under_rm(self):
        k = Kernel(RMScheduler(ZERO_OVERHEAD))
        k.create_thread("light", Program([Compute(ms(1))]), period=ms(10))
        k.create_thread("heavy", Program([Compute(ms(25))]), period=ms(20))
        trace = k.run_until(ms(200))
        light_misses = [
            j for j in trace.deadline_violations(k.now) if j.thread == "light"
        ]
        assert not light_misses  # strict priority protects it
        heavy_misses = [
            j for j in trace.deadline_violations(k.now) if j.thread == "heavy"
        ]
        assert heavy_misses


class TestCsdBandIsolation:
    def test_fp_overload_cannot_touch_dp_bands(self):
        """CSD's strict inter-band priority: an overloaded FP band
        never disturbs the DP tasks above it."""
        k = Kernel(CSDScheduler(ZERO_OVERHEAD, dp_queue_count=1))
        k.create_thread(
            "dp_task", Program([Compute(ms(2))]), period=ms(10), csd_queue=0
        )
        k.create_thread(
            "fp_hog", Program([Compute(ms(50))]), period=ms(20), csd_queue=1
        )
        trace = k.run_until(ms(300))
        dp_misses = [
            j for j in trace.deadline_violations(k.now) if j.thread == "dp_task"
        ]
        assert not dp_misses
        assert trace.deadline_violations(k.now)  # the hog itself misses

    def test_dp_overload_starves_fp_but_not_dp1(self):
        """Conversely, DP overload starves the FP band -- the cost of
        the strict hierarchy."""
        k = Kernel(CSDScheduler(ZERO_OVERHEAD, dp_queue_count=1))
        k.create_thread(
            "dp_hog", Program([Compute(ms(15))]), period=ms(10), csd_queue=0
        )
        k.create_thread(
            "fp_task", Program([Compute(ms(1))]), period=ms(20), csd_queue=1
        )
        trace = k.run_until(ms(200))
        fp_misses = [
            j for j in trace.deadline_violations(k.now) if j.thread == "fp_task"
        ]
        assert fp_misses


class TestTransientOverload:
    def test_pending_releases_drain_after_burst(self):
        """An aperiodic burst queues activations (none lost); after the
        burst the backlog drains and the thread is idle again."""
        from repro.kernel.thread import ThreadState

        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_thread("worker", Program([Compute(ms(2))]), priority=1)
        for i in range(5):
            k.activate("worker", at=ms(i) if i else None)
        trace = k.run_until(ms(100))
        assert len(trace.jobs_of("worker")) == 5
        assert all(j.completion is not None for j in trace.jobs_of("worker"))
        assert k.threads["worker"].state == ThreadState.IDLE
        assert k.threads["worker"].pending_releases == 0

    def test_periodic_task_recovers_after_transient(self):
        """A one-off long job (modeling a transient fault) delays its
        successors but the task re-synchronizes with its period."""
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_thread("steady", Program([Compute(ms(2))]), period=ms(10))
        # A one-shot aperiodic 25 ms hog with a very early deadline
        # hijacks the CPU once.
        k.create_thread("transient", Program([Compute(ms(25))]),
                        priority=0, deadline=ms(1))
        k.activate("transient", at=ms(5))
        trace = k.run_until(ms(200))
        steady_jobs = trace.jobs_of("steady")
        # Early jobs miss during the transient...
        assert any(j.missed for j in steady_jobs[:4])
        # ...but everything from 60 ms on completes in time again.
        late_jobs = [j for j in steady_jobs if j.release >= ms(60)]
        assert late_jobs
        assert all(not j.missed for j in late_jobs)
        assert all(j.completion is not None for j in late_jobs)

    def test_zero_miss_steady_state_after_fault_burst(self):
        """Recovery semantics under the fault subsystem: a transient
        burst of injected WCET overruns and crashes causes misses
        while it lasts, but once it ends the defended kernel returns
        to a zero-miss steady state -- and stays there."""
        from repro.analysis.metrics import recovery_time_ns
        from repro.faults import FaultInjector, FaultPlan
        from repro.faults.chaos import build_chaos_kernel

        burst_end = ms(200)
        plan = FaultPlan.generate(
            11,
            burst_end,  # every fault lands inside the burst window
            threads=["ctrl", "sense", "log", "bulk"],
            wcet_overrun_rate=60.0,
            crash_rate=10.0,
        )
        assert len(plan) > 0
        kernel = build_chaos_kernel(defenses=True)
        FaultInjector(kernel, plan).install()
        trace = kernel.run_until(ms(600))
        # The burst hurt (otherwise this test shows nothing)...
        assert trace.deadline_violations(kernel.now)
        # ...nothing died permanently...
        assert not [t for t in kernel.threads.values() if t.dead]
        # ...and past the burst plus the longest back-off the system is
        # clean: no violation instant after the recovery margin.
        margin = burst_end + ms(100)
        for job in trace.deadline_violations(kernel.now):
            instant = (
                job.completion if job.completion is not None else job.deadline
            )
            assert instant <= margin, f"violation at {instant} after recovery"
        assert recovery_time_ns(trace, kernel.now, burst_end) <= ms(100)
        # Every post-margin release completed on time.
        settled = [j for j in trace.jobs if j.release >= margin]
        assert settled
        assert all(
            j.completion is not None and j.completion <= j.deadline
            for j in settled
        )
