"""Property-based tests for the fieldbus: conservation and ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fieldbus import Fieldbus
from repro.net.frame import Frame

requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1_000_000),   # request time (ns)
        st.integers(min_value=0, max_value=0x7FF),       # can id
        st.integers(min_value=0, max_value=8),           # payload bytes
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(requests)
def test_every_frame_delivered_exactly_once(reqs):
    bus = Fieldbus(1_000_000)
    for time, can_id, size in reqs:
        bus.queue(time, Frame(can_id=can_id, size=size))
    deliveries = bus.process(horizon=10_000_000_000)
    assert len(deliveries) == len(reqs)
    assert bus.pending_count == 0
    # Conservation of wire bits.
    assert bus.bits_carried == sum(Frame(can_id=c, size=s).bits for _, c, s in reqs)


@settings(max_examples=200, deadline=None)
@given(requests)
def test_bus_never_overlaps_transmissions(reqs):
    bus = Fieldbus(1_000_000)
    for time, can_id, size in reqs:
        bus.queue(time, Frame(can_id=can_id, size=size))
    deliveries = bus.process(horizon=10_000_000_000)
    # Completion times strictly increase and each frame takes at least
    # its own wire time after the earliest possible start.
    previous_completion = 0
    for d in deliveries:
        duration = bus.frame_time_ns(d.frame.size)
        assert d.time >= previous_completion + duration or previous_completion == 0
        assert d.time >= duration
        previous_completion = d.time


@settings(max_examples=200, deadline=None)
@given(requests)
def test_delivery_never_precedes_request_plus_wire_time(reqs):
    bus = Fieldbus(1_000_000)
    stamped = []
    for time, can_id, size in reqs:
        frame = Frame(can_id=can_id, size=size, sender=f"s{len(stamped)}")
        bus.queue(time, frame)
        stamped.append((time, frame))
    deliveries = bus.process(horizon=10_000_000_000)
    by_sender = {f.sender: t for t, f in stamped}
    for d in deliveries:
        request_time = by_sender[d.frame.sender]
        assert d.time >= request_time + bus.frame_time_ns(d.frame.size)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=15))
def test_simultaneous_requests_deliver_in_priority_order(ids):
    """All frames queued at t=0: strict lowest-id-first service."""
    bus = Fieldbus(1_000_000)
    for i, can_id in enumerate(ids):
        bus.queue(0, Frame(can_id=can_id, size=0, sender=f"s{i}"))
    deliveries = bus.process(horizon=10_000_000_000)
    served = [d.frame.can_id for d in deliveries]
    assert served == sorted(served)
