"""Unit tests for the EDF, RM, and CSD scheduler classes."""

import pytest

from repro.core.csd import CSDScheduler
from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.queues import Schedulable
from repro.core.rm import RMHeapScheduler, RMScheduler


def ent(name, key, ready=False, deadline=None, queue=None):
    e = Schedulable(name, (key, name))
    e.ready = ready
    e.abs_deadline = deadline
    e.csd_queue = queue
    return e


class TestEDFScheduler:
    def test_select_earliest_deadline(self):
        s = EDFScheduler(ZERO_OVERHEAD)
        a = ent("a", 1, ready=True, deadline=200)
        b = ent("b", 2, ready=True, deadline=100)
        s.add_task(a)
        s.add_task(b)
        task, _ = s.select()
        assert task is b

    def test_costs_match_table1(self):
        model = OverheadModel()
        s = EDFScheduler(model)
        tasks = [ent(f"t{i}", i, ready=True, deadline=100 + i) for i in range(5)]
        for t in tasks:
            s.add_task(t)
        assert s.on_block(tasks[0]) == model.edf_block(5)
        assert s.on_unblock(tasks[0]) == model.edf_unblock(5)
        _, cost = s.select()
        assert cost == model.edf_select(5)

    def test_stats_accumulate(self):
        s = EDFScheduler(OverheadModel())
        a = ent("a", 1, ready=True, deadline=10)
        s.add_task(a)
        s.on_block(a)
        s.on_unblock(a)
        s.select()
        assert s.stats.blocks == 1
        assert s.stats.unblocks == 1
        assert s.stats.selects == 1
        assert s.stats.charged_total_ns > 0

    def test_pi_is_deadline_overwrite(self):
        s = EDFScheduler(OverheadModel())
        holder = ent("h", 2, ready=True, deadline=500)
        donor = ent("d", 1, ready=False, deadline=100)
        s.add_task(holder)
        s.add_task(donor)
        s.raise_priority(holder, donor)
        assert holder.pi_deadline == 100
        task, _ = s.select()
        assert task is holder
        s.restore_priority(holder)
        assert holder.pi_deadline is None
        assert holder.pi_key is None

    def test_pi_inherits_tie_break_key(self):
        """A donation from an equal-deadline donor must still be
        effective: the holder inherits the donor's tie-break key, so it
        beats third parties that tie on the deadline but rank between
        donor and holder."""
        s = EDFScheduler(ZERO_OVERHEAD)
        holder = ent("h", 9, ready=True, deadline=100)
        middle = ent("m", 5, ready=True, deadline=100)
        donor = ent("d", 1, ready=False, deadline=100)
        for t in (holder, middle, donor):
            s.add_task(t)
        task, _ = s.select()
        assert task is middle  # key 5 beats key 9 on the tie
        s.raise_priority(holder, donor)
        assert holder.pi_key == donor.effective_key
        task, _ = s.select()
        assert task is holder  # donor's key 1 now wins the tie
        assert s.priority_rank(holder) < s.priority_rank(middle)
        s.restore_priority(holder)
        task, _ = s.select()
        assert task is middle

    def test_pi_key_is_transitive(self):
        """Chained donations propagate the strongest (deadline, key)
        rank, not just the deadline."""
        s = EDFScheduler(ZERO_OVERHEAD)
        top = ent("t", 1, ready=False, deadline=100)
        mid = ent("m", 5, ready=False, deadline=100)
        bottom = ent("b", 9, ready=True, deadline=100)
        for t in (top, mid, bottom):
            s.add_task(t)
        s.raise_priority(mid, top)
        s.raise_priority(bottom, mid)
        assert bottom.pi_key == top.effective_key

    def test_remove_task(self):
        s = EDFScheduler(ZERO_OVERHEAD)
        a = ent("a", 1, ready=True, deadline=10)
        s.add_task(a)
        s.remove_task(a)
        assert s.tasks() == []

    def test_priority_rank_uses_deadline(self):
        s = EDFScheduler(ZERO_OVERHEAD)
        a = ent("a", 1, ready=True, deadline=200)
        b = ent("b", 2, ready=True, deadline=100)
        s.add_task(a)
        s.add_task(b)
        assert s.priority_rank(b) < s.priority_rank(a)


class TestRMScheduler:
    def test_select_highest_priority(self):
        s = RMScheduler(ZERO_OVERHEAD)
        a = ent("a", 10, ready=True)
        b = ent("b", 5, ready=True)
        s.add_task(a)
        s.add_task(b)
        task, _ = s.select()
        assert task is b

    def test_costs_match_table1(self):
        model = OverheadModel()
        s = RMScheduler(model)
        tasks = [ent(f"t{i}", i, ready=True) for i in range(8)]
        for t in tasks:
            s.add_task(t)
        assert s.on_block(tasks[0]) == model.rm_block(8)
        assert s.on_unblock(tasks[0]) == model.rm_unblock(8)
        _, cost = s.select()
        assert cost == model.rm_select(8)

    def test_standard_pi_repositions(self):
        s = RMScheduler(OverheadModel())
        holder = ent("h", 10, ready=True)
        donor = ent("d", 1, ready=False)
        s.add_task(holder)
        s.add_task(donor)
        s.raise_priority(holder, donor)
        assert holder.effective_key == donor.effective_key
        task, _ = s.select()
        assert task is holder
        s.restore_priority(holder)
        assert holder.effective_key == holder.base_key
        s.check_invariants()

    def test_swap_with_placeholder(self):
        s = RMScheduler(OverheadModel())
        holder = ent("h", 10, ready=True)
        donor = ent("d", 1, ready=False)
        middle = ent("m", 5, ready=True)
        for t in (holder, donor, middle):
            s.add_task(t)
        cost = s.swap_with_placeholder(holder, donor)
        assert cost == s.model.pi_o1_step()
        task, _ = s.select()
        assert task is holder
        s.check_invariants()
        s.swap_with_placeholder(holder, donor)
        task, _ = s.select()
        assert task is middle or task is holder
        s.check_invariants()

    def test_swap_foreign_task_returns_none(self):
        s = RMScheduler(OverheadModel())
        a = ent("a", 1, ready=True)
        s.add_task(a)
        assert s.swap_with_placeholder(a, ent("x", 2)) is None


class TestRMHeapScheduler:
    def test_select_and_costs(self):
        model = OverheadModel()
        s = RMHeapScheduler(model)
        a = ent("a", 2, ready=True)
        b = ent("b", 1, ready=True)
        s.add_task(a)
        s.add_task(b)
        task, cost = s.select()
        assert task is b
        assert cost == model.heap_select(2)
        assert s.on_block(b) == model.heap_block(2)
        task, _ = s.select()
        assert task is a

    def test_pi_rekeys(self):
        s = RMHeapScheduler(OverheadModel())
        holder = ent("h", 9, ready=True)
        donor = ent("d", 1, ready=True)
        s.add_task(holder)
        s.add_task(donor)
        s.on_block(donor)
        s.raise_priority(holder, donor)
        task, _ = s.select()
        assert task is holder


class TestCSDScheduler:
    def make(self, dp=2, model=None):
        return CSDScheduler(model if model else ZERO_OVERHEAD, dp_queue_count=dp)

    def test_queue_count(self):
        assert self.make(dp=2).queue_count == 3  # CSD-3

    def test_add_task_to_assigned_queue(self):
        s = self.make()
        a = ent("a", 1, ready=True, deadline=10, queue=0)
        b = ent("b", 2, ready=True, deadline=20, queue=1)
        c = ent("c", 3, ready=True, queue=2)
        for t in (a, b, c):
            s.add_task(t)
        assert s.queue_index_of(a) == 0
        assert s.queue_index_of(b) == 1
        assert s.queue_index_of(c) == 2
        assert s.queue_lengths() == [1, 1, 1]

    def test_unassigned_defaults_to_fp(self):
        s = self.make()
        t = ent("t", 1, ready=True)
        s.add_task(t)
        assert s.queue_index_of(t) == s.fp_index

    def test_out_of_range_queue_rejected(self):
        s = self.make(dp=1)
        with pytest.raises(ValueError):
            s.add_task(ent("t", 1, queue=5))

    def test_dp1_beats_dp2_beats_fp(self):
        """Strict inter-queue priority (Section 5.3)."""
        s = self.make()
        dp1 = ent("dp1", 9, ready=True, deadline=900, queue=0)
        dp2 = ent("dp2", 1, ready=True, deadline=10, queue=1)
        fp = ent("fp", 0, ready=True, queue=2)
        for t in (dp1, dp2, fp):
            s.add_task(t)
        task, _ = s.select()
        assert task is dp1  # despite dp2's earlier deadline
        s.on_block(dp1)
        task, _ = s.select()
        assert task is dp2
        s.on_block(dp2)
        task, _ = s.select()
        assert task is fp

    def test_edf_within_dp_queue(self):
        s = self.make(dp=1)
        a = ent("a", 1, ready=True, deadline=300, queue=0)
        b = ent("b", 2, ready=True, deadline=100, queue=0)
        s.add_task(a)
        s.add_task(b)
        task, _ = s.select()
        assert task is b

    def test_select_cost_includes_queue_parse(self):
        model = OverheadModel()
        s = CSDScheduler(model, dp_queue_count=2)
        fp = ent("fp", 1, ready=True, queue=2)
        s.add_task(fp)
        _, cost = s.select()
        assert cost == 3 * model.queue_parse_ns + model.rm_select(1)

    def test_select_cost_parses_first_live_dp_queue(self):
        model = OverheadModel()
        s = CSDScheduler(model, dp_queue_count=2)
        dp2a = ent("a", 1, ready=True, deadline=10, queue=1)
        dp2b = ent("b", 2, ready=True, deadline=20, queue=1)
        s.add_task(dp2a)
        s.add_task(dp2b)
        _, cost = s.select()
        assert cost == 3 * model.queue_parse_ns + model.edf_select(2)

    def test_block_costs_by_queue_kind(self):
        model = OverheadModel()
        s = CSDScheduler(model, dp_queue_count=1)
        dp = ent("dp", 1, ready=True, deadline=10, queue=0)
        fp1 = ent("fp1", 2, ready=True, queue=1)
        fp2 = ent("fp2", 3, ready=True, queue=1)
        for t in (dp, fp1, fp2):
            s.add_task(t)
        assert s.on_block(dp) == model.edf_block(1)
        assert s.on_block(fp1) == model.rm_block(2)

    def test_same_queue_fp_pi(self):
        s = self.make(dp=1)
        holder = ent("h", 10, ready=True, queue=1)
        donor = ent("d", 2, ready=False, queue=1)
        s.add_task(holder)
        s.add_task(donor)
        s.raise_priority(holder, donor)
        task, _ = s.select()
        assert task is holder
        s.restore_priority(holder)
        assert holder.effective_key == holder.base_key

    def test_cross_queue_pi_migrates_and_restores(self):
        """FP holder inherits from a DP donor: it must temporarily beat
        every other FP task (it now blocks a DP-level task)."""
        s = self.make(dp=1)
        holder = ent("h", 10, ready=True, queue=1)
        other_fp = ent("o", 1, ready=True, queue=1)
        donor = ent("d", 2, ready=False, deadline=50, queue=0)
        for t in (holder, other_fp, donor):
            s.add_task(t)
        s.raise_priority(holder, donor)
        assert s.queue_index_of(holder) == 0
        task, _ = s.select()
        assert task is holder
        s.restore_priority(holder)
        assert s.queue_index_of(holder) == 1
        task, _ = s.select()
        assert task is other_fp

    def test_swap_with_placeholder_fp_only(self):
        s = self.make(dp=1)
        holder = ent("h", 10, ready=True, queue=1)
        donor = ent("d", 2, ready=False, queue=1)
        dp = ent("dp", 1, ready=False, deadline=10, queue=0)
        for t in (holder, donor, dp):
            s.add_task(t)
        assert s.swap_with_placeholder(holder, donor) is not None
        assert s.swap_with_placeholder(holder, dp) is None

    def test_remove_task(self):
        s = self.make(dp=1)
        a = ent("a", 1, ready=True, deadline=10, queue=0)
        s.add_task(a)
        s.remove_task(a)
        assert s.tasks() == []
        with pytest.raises(ValueError):
            s.queue_index_of(a)
