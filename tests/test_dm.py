"""Tests for deadline-monotonic support (Section 5.3's 'any
fixed-priority scheduler such as deadline-monotonic')."""

import pytest

from repro.core.overhead import ZERO_OVERHEAD
from repro.core.schedulability import dm_response_times, dm_schedulable, rm_schedulable
from repro.core.task import TaskSpec, Workload
from repro.sim.kernelsim import simulate_workload
from repro.timeunits import ms


def wl(*triples_ms):
    return Workload(
        TaskSpec(name=f"t{i}", period=ms(p), wcet=ms(c), deadline=ms(d))
        for i, (p, c, d) in enumerate(triples_ms)
    )


class TestDMAnalysis:
    def test_equals_rm_for_implicit_deadlines(self):
        w = Workload(
            [
                TaskSpec(name="a", period=ms(10), wcet=ms(3)),
                TaskSpec(name="b", period=ms(20), wcet=ms(5)),
            ]
        )
        assert dm_schedulable(w, ZERO_OVERHEAD) == rm_schedulable(w, ZERO_OVERHEAD)

    def test_dm_beats_rm_on_constrained_deadlines(self):
        """The classic case: a long-period task with a tight deadline
        must outrank a short-period task.  RM gets it wrong, DM right."""
        w = wl((20, 6, 20), (100, 4, 6))
        assert not rm_schedulable(w, ZERO_OVERHEAD)
        assert dm_schedulable(w, ZERO_OVERHEAD)

    def test_response_times_ordered_by_deadline(self):
        w = wl((20, 6, 20), (100, 4, 6))
        responses = dm_response_times(w, ZERO_OVERHEAD)
        # t1 (deadline 6) runs first: response = its own cost.
        assert responses["t1"] == ms(4)
        # t0 waits behind t1 once.
        assert responses["t0"] == ms(10)

    def test_empty_workload(self):
        assert dm_schedulable(Workload([]))


class TestDMInKernel:
    def test_dm_policy_simulates(self):
        w = wl((20, 6, 20), (100, 4, 6))
        kernel, trace = simulate_workload(
            w, "dm", duration=ms(200), model=ZERO_OVERHEAD
        )
        assert not trace.deadline_violations(kernel.now)

    def test_rm_policy_misses_same_workload(self):
        w = wl((20, 6, 20), (100, 4, 6))
        kernel, trace = simulate_workload(
            w, "rm", duration=ms(200), model=ZERO_OVERHEAD
        )
        assert trace.deadline_violations(kernel.now)

    def test_dm_key_on_thread(self):
        from repro.kernel.kernel import Kernel
        from repro.core.rm import RMScheduler
        from repro.kernel.program import Compute, Program

        k = Kernel(RMScheduler(ZERO_OVERHEAD))
        t = k.create_thread(
            "t", Program([Compute(ms(1))]), period=ms(100), deadline=ms(7),
            fp_policy="dm",
        )
        assert t.base_key == (ms(7), "t")

    def test_unknown_policy_rejected(self):
        from repro.kernel.kernel import Kernel
        from repro.core.rm import RMScheduler
        from repro.kernel.program import Compute, Program

        k = Kernel(RMScheduler(ZERO_OVERHEAD))
        with pytest.raises(ValueError):
            k.create_thread(
                "t", Program([Compute(1)]), period=ms(10), fp_policy="lifo"
            )
