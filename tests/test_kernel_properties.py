"""Property-based tests: kernel invariants under random applications.

Hypothesis generates small random applications (periodic threads with
random compute/lock/event structure) and checks the invariants the
paper's correctness arguments rest on:

* mutual exclusion always holds, under either semaphore scheme;
* the EMERALDS optimizations never change *what* happens -- with a
  zero-cost model both schemes produce identical job completion times
  (Section 6.2.3's argument that only execution chunks are swapped);
* priority inheritance is always undone (no priority leaks);
* the FP queue's structural invariants survive arbitrary PI traffic;
* job accounting is conserved (releases = completions + in-flight).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.rm import RMScheduler
from repro.kernel.kernel import Kernel
from repro.kernel.program import Acquire, Compute, Program, Release, Signal, Wait
from repro.kernel.thread import ThreadState
from repro.timeunits import ms, us


# ----------------------------------------------------------------------
# random application generator
# ----------------------------------------------------------------------

@st.composite
def applications(draw):
    """A small random periodic application description."""
    n_threads = draw(st.integers(2, 5))
    n_sems = draw(st.integers(1, 2))
    threads = []
    for i in range(n_threads):
        period = draw(st.sampled_from([5, 10, 20, 40]))
        ops = []
        sections = draw(st.integers(1, 3))
        for _ in range(sections):
            ops.append(Compute(us(draw(st.integers(10, 400)))))
            if draw(st.booleans()):
                sem = f"s{draw(st.integers(0, n_sems - 1))}"
                ops.append(Acquire(sem))
                ops.append(Compute(us(draw(st.integers(10, 300)))))
                ops.append(Release(sem))
        threads.append((f"t{i}", ms(period), ops))
    return n_sems, threads


def build(app, scheme, scheduler_cls, model):
    n_sems, threads = app
    kernel = Kernel(scheduler_cls(model), sem_scheme=scheme)
    for s in range(n_sems):
        kernel.create_semaphore(f"s{s}")
    for name, period, ops in threads:
        kernel.create_thread(name, Program(list(ops)), period=period)
    return kernel


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(applications(), st.sampled_from(["standard", "emeralds"]))
def test_mutual_exclusion_always_holds(app, scheme):
    kernel = build(app, scheme, EDFScheduler, OverheadModel())
    holders_ok = []

    # Check at every scheduling decision that each binary semaphore has
    # at most one holder and that holders think they hold it.
    original_dispatch = kernel._dispatch

    def checked_dispatch():
        original_dispatch()
        for sem in kernel.semaphores.values():
            if sem.capacity == 1:
                assert sem.available in (0, 1)
                if sem.holder is not None:
                    assert sem.available == 0
                    assert sem.name in sem.holder.held_sems
        holders_ok.append(True)

    kernel._dispatch = checked_dispatch
    kernel.run_until(ms(100))
    assert holders_ok  # the check actually ran


@settings(max_examples=40, deadline=None)
@given(applications())
def test_schemes_agree_under_zero_cost(app):
    """With every primitive free, the EMERALDS scheme must produce the
    same schedule outcomes as the standard scheme: the optimization
    only removes overhead, never changes semantics."""
    completions = {}
    for scheme in ("standard", "emeralds"):
        kernel = build(app, scheme, EDFScheduler, ZERO_OVERHEAD)
        trace = kernel.run_until(ms(100))
        completions[scheme] = [
            (j.thread, j.release, j.completion) for j in trace.jobs
        ]
    assert completions["standard"] == completions["emeralds"]


@settings(max_examples=40, deadline=None)
@given(applications(), st.sampled_from(["standard", "emeralds"]))
def test_priority_inheritance_fully_undone(app, scheme):
    """After the run (at a quiescent point) no thread retains an
    inherited priority."""
    kernel = build(app, scheme, RMScheduler, OverheadModel())
    kernel.run_until(ms(100))
    # Drain: run on until every semaphore is free.
    guard = 0
    while any(s.locked for s in kernel.semaphores.values()) and guard < 50:
        kernel.run_for(ms(10))
        guard += 1
    for thread in kernel.threads.values():
        if not any(s.locked for s in kernel.semaphores.values()):
            assert thread.effective_key == thread.base_key
            assert thread.pi_deadline is None
            assert thread.pi_donor_of is None


@settings(max_examples=40, deadline=None)
@given(applications(), st.sampled_from(["standard", "emeralds"]))
def test_fp_queue_invariants_survive(app, scheme):
    kernel = build(app, scheme, RMScheduler, OverheadModel())
    for _ in range(20):
        kernel.run_for(ms(5))
        kernel.scheduler.check_invariants()


@settings(max_examples=40, deadline=None)
@given(applications(), st.sampled_from(["standard", "emeralds"]))
def test_job_accounting_conserved(app, scheme):
    kernel = build(app, scheme, EDFScheduler, OverheadModel())
    trace = kernel.run_until(ms(100))
    released = len(trace.jobs)
    completed = sum(1 for j in trace.jobs if j.completion is not None)
    in_flight = sum(
        1
        for t in kernel.threads.values()
        if t.state != ThreadState.IDLE or t.pending_releases
    )
    assert completed <= released
    assert released - completed <= len(kernel.threads) + sum(
        t.pending_releases for t in kernel.threads.values()
    )


@settings(max_examples=30, deadline=None)
@given(applications(), st.sampled_from(["standard", "emeralds"]))
def test_overheads_only_delay_never_reorder_releases(app, scheme):
    """Releases are driven by the virtual clock: overheads may delay
    completions but release times are exact nominal multiples."""
    kernel = build(app, scheme, EDFScheduler, OverheadModel())
    trace = kernel.run_until(ms(100))
    periods = {name: period for name, period, _ in app[1]}
    phase_jobs = {}
    for j in trace.jobs:
        expected = phase_jobs.get(j.thread, 0)
        assert j.release % periods[j.thread] == 0
        phase_jobs[j.thread] = expected + 1


@settings(max_examples=25, deadline=None)
@given(applications())
def test_emeralds_never_costs_extra_switches(app):
    """The EMERALDS scheme may save context switches but must never add
    any (with identical zero-cost timing the schedules coincide, so the
    switch count cannot increase)."""
    switches = {}
    for scheme in ("standard", "emeralds"):
        kernel = build(app, scheme, EDFScheduler, ZERO_OVERHEAD)
        trace = kernel.run_until(ms(100))
        switches[scheme] = trace.context_switches
    assert switches["emeralds"] <= switches["standard"]
