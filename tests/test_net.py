"""Tests for the fieldbus substrate: frames, arbitration, clusters."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD, OverheadModel
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, Wait
from repro.net import Cluster, Fieldbus, Frame, NetInterface, frame_bits, net_send
from repro.timeunits import ms, us


def zero_kernel():
    return Kernel(EDFScheduler(ZERO_OVERHEAD))


class TestFrame:
    def test_bits(self):
        assert frame_bits(0) == 47
        assert frame_bits(8) == 47 + 64

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            Frame(can_id=1, size=9)
        with pytest.raises(ValueError):
            Frame(can_id=-1)

    def test_frame_bits_property(self):
        assert Frame(can_id=1, size=4).bits == 47 + 32


class TestFieldbus:
    def test_frame_time_at_1mbps(self):
        bus = Fieldbus(bit_rate_bps=1_000_000)
        # 47 + 64 bits at 1 Mbit/s = 111 us.
        assert bus.frame_time_ns(8) == 111_000
        assert bus.min_frame_time_ns == 47_000

    def test_single_frame_delivery_time(self):
        bus = Fieldbus(1_000_000)
        bus.queue(0, Frame(can_id=5, size=8))
        deliveries = bus.process(horizon=ms(1))
        assert len(deliveries) == 1
        assert deliveries[0].time == 111_000

    def test_priority_arbitration(self):
        """Two frames pending together: the lower id wins the bus."""
        bus = Fieldbus(1_000_000)
        bus.queue(0, Frame(can_id=0x20, size=0))
        bus.queue(0, Frame(can_id=0x10, size=0))
        deliveries = bus.process(horizon=ms(1))
        assert [d.frame.can_id for d in deliveries] == [0x10, 0x20]
        # Second frame starts only after the first completes.
        assert deliveries[1].time == 2 * bus.frame_time_ns(0)

    def test_late_request_does_not_preempt(self):
        """A high-priority frame arriving mid-transmission waits (CAN
        is non-preemptive)."""
        bus = Fieldbus(1_000_000)
        bus.queue(0, Frame(can_id=0x50, size=8))
        bus.queue(1_000, Frame(can_id=0x01, size=0))
        deliveries = bus.process(horizon=ms(1))
        assert [d.frame.can_id for d in deliveries] == [0x50, 0x01]

    def test_horizon_defers_future_work(self):
        bus = Fieldbus(1_000_000)
        bus.queue(ms(5), Frame(can_id=1, size=0))
        assert bus.process(horizon=ms(1)) == []
        assert bus.pending_count == 1
        assert len(bus.process(horizon=ms(6))) == 1

    def test_utilization(self):
        bus = Fieldbus(1_000_000)
        bus.queue(0, Frame(can_id=1, size=8))
        bus.process(horizon=ms(1))
        assert bus.utilization(ms(1)) == pytest.approx(0.111, rel=1e-3)

    def test_arbitration_wait_stat(self):
        bus = Fieldbus(1_000_000)
        bus.queue(0, Frame(can_id=1, size=0))
        bus.queue(0, Frame(can_id=2, size=0))
        bus.process(horizon=ms(1))
        assert bus.total_arbitration_wait_ns == bus.frame_time_ns(0)


def make_driver_program(interface, received):
    """A user-level rx driver: wait for the interrupt, then drain the
    queue (the rx event is a binary latch, so back-to-back frames
    coalesce into one wake-up -- drivers must drain)."""

    def pop(kernel, thread):
        while True:
            frame = interface.receive()
            if frame is None:
                break
            received.append((kernel.now, frame.can_id, frame.payload))

    return Program([Wait(interface.rx_event_name), Call(pop)])


class TestCluster:
    def test_two_node_roundtrip(self):
        cluster = Cluster(Fieldbus(1_000_000))
        tx_kernel = zero_kernel()
        rx_kernel = zero_kernel()
        tx_iface = cluster.add_node("tx", tx_kernel)
        rx_iface = cluster.add_node("rx", rx_kernel)

        tx_kernel.create_thread(
            "sender",
            Program([Compute(us(10)), net_send(tx_iface, can_id=0x11, size=4,
                                               payload="hello")]),
            period=ms(10),
            deadline=ms(5),
        )
        received = []
        rx_kernel.create_thread(
            "driver", make_driver_program(rx_iface, received),
            period=ms(10), deadline=ms(9),
        )
        cluster.run_until(ms(30))
        assert len(received) == 3
        time, can_id, payload = received[0]
        assert can_id == 0x11 and payload == "hello"
        # Latency >= wire time of a 4-byte frame (79 us at 1 Mbit/s).
        assert time >= us(10) + 79_000

    def test_sender_does_not_hear_itself(self):
        cluster = Cluster(Fieldbus(1_000_000))
        k = zero_kernel()
        iface = cluster.add_node("solo", k)
        k.create_thread(
            "sender", Program([net_send(iface, can_id=1, size=0)]),
            period=ms(10), deadline=ms(5),
        )
        cluster.run_until(ms(20))
        assert iface.frames_received == 0

    def test_acceptance_filter(self):
        cluster = Cluster(Fieldbus(1_000_000))
        tx_kernel, rx_kernel = zero_kernel(), zero_kernel()
        tx_iface = cluster.add_node("tx", tx_kernel)
        rx_iface = cluster.add_node("rx", rx_kernel, accept={0x11})
        tx_kernel.create_thread(
            "sender",
            Program(
                [net_send(tx_iface, can_id=0x11, size=0),
                 net_send(tx_iface, can_id=0x22, size=0)]
            ),
            period=ms(10), deadline=ms(5),
        )
        received = []
        rx_kernel.create_thread(
            "driver", make_driver_program(rx_iface, received),
            period=ms(10), deadline=ms(9),
        )
        cluster.run_until(ms(15))
        assert [r[1] for r in received] == [0x11, 0x11]
        assert rx_iface.frames_filtered == 2

    def test_causality_never_violated(self):
        """Every delivery lands in the receiver's local future."""
        cluster = Cluster(Fieldbus(1_000_000))
        kernels = [zero_kernel() for _ in range(4)]
        ifaces = [cluster.add_node(f"n{i}", k) for i, k in enumerate(kernels)]
        received = []
        for i, (k, iface) in enumerate(zip(kernels, ifaces)):
            k.create_thread(
                "sender",
                Program([Compute(us(7 * (i + 1))),
                         net_send(iface, can_id=0x10 + i, size=2)]),
                period=ms(5), deadline=ms(4),
            )
            k.create_thread(
                "driver", make_driver_program(iface, received),
                period=ms(5), deadline=ms(5),
            )
        cluster.run_until(ms(50))
        assert received  # traffic flowed
        # arrival times strictly positive and reception happened after
        # the frame physically fits on the wire
        assert all(t >= cluster.bus.min_frame_time_ns for t, _, _ in received)

    def test_bus_contention_orders_by_priority(self):
        """Simultaneous periodic frames deliver lowest-id first."""
        cluster = Cluster(Fieldbus(1_000_000))
        kernels = [zero_kernel() for _ in range(3)]
        ids = [0x30, 0x10, 0x20]
        ifaces = []
        for i, k in enumerate(kernels):
            iface = cluster.add_node(f"n{i}", k)
            ifaces.append(iface)
            k.create_thread(
                "sender", Program([net_send(iface, can_id=ids[i], size=0)]),
                period=ms(50), deadline=ms(40),
            )
        listener = zero_kernel()
        listen_iface = cluster.add_node("listener", listener)
        received = []
        def drain(kern, t):
            while True:
                frame = listen_iface.receive()
                if frame is None:
                    break
                received.append(frame.can_id)

        listener.create_thread(
            "driver",
            Program([Wait(listen_iface.rx_event_name), Call(drain)]),
            period=ms(2), deadline=ms(2),
        )
        cluster.run_until(ms(20))
        assert received[:3] == [0x10, 0x20, 0x30]

    def test_node_name_collision(self):
        cluster = Cluster()
        cluster.add_node("a", zero_kernel())
        with pytest.raises(ValueError):
            cluster.add_node("a", zero_kernel())

    def test_run_backwards_rejected(self):
        cluster = Cluster()
        cluster.add_node("a", zero_kernel())
        cluster.run_until(ms(5))
        with pytest.raises(ValueError):
            cluster.run_until(ms(1))

    def test_empty_cluster_advances_time(self):
        cluster = Cluster()
        cluster.run_until(ms(3))
        assert cluster.now == ms(3)

    def test_deadline_violation_aggregation(self):
        cluster = Cluster()
        k = zero_kernel()
        cluster.add_node("n", k)
        k.create_thread("t", Program([Compute(ms(2))]), period=ms(1))
        cluster.run_until(ms(10))
        assert cluster.total_deadline_violations() > 0
