"""Tests for suspend / resume / kill thread management."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.program import Acquire, Compute, Program, Release, Wait
from repro.timeunits import ms, us


def zero_kernel():
    return Kernel(EDFScheduler(ZERO_OVERHEAD))


class TestSuspendResume:
    def test_suspended_thread_stops_running(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        k.run_until(ms(10))
        k.suspend_thread("t")
        before = len(k.trace.jobs_of("t"))
        k.run_until(ms(30))
        # Releases queue up but no new job executes to completion.
        completed = [j for j in k.trace.jobs_of("t") if j.completion is not None]
        assert len(completed) <= before

    def test_resume_continues_execution(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        k.run_until(ms(6))
        k.suspend_thread("t")
        k.run_until(ms(20))
        k.resume_thread("t")
        trace = k.run_until(ms(40))
        completed = [j for j in trace.jobs_of("t") if j.completion is not None]
        # Execution resumed: more completions after the resume.
        assert completed[-1].completion > ms(20)

    def test_wakeup_during_suspension_is_deferred_not_lost(self):
        k = zero_kernel()
        k.create_event("E")
        k.create_thread(
            "waiter", Program([Wait("E"), Compute(ms(1))]), period=ms(100)
        )
        k.create_thread(
            "signaller",
            Program([Compute(ms(2)),]),
            period=ms(100), deadline=ms(50),
        )
        k.run_until(ms(1))  # waiter is blocked on E
        k.suspend_thread("waiter")
        k.events_by_name["E"].signal(k)  # arrives while suspended
        k.run_until(ms(5))
        waiter = k.threads["waiter"]
        assert waiter.blocked_on == "suspended"
        k.resume_thread("waiter")
        trace = k.run_until(ms(20))
        job = trace.jobs_of("waiter")[0]
        assert job.completion is not None  # the signal was not lost

    def test_suspend_blocked_thread_keeps_block_reason_until_wake(self):
        k = zero_kernel()
        k.create_event("E")
        k.create_thread("w", Program([Wait("E")]), period=ms(100))
        k.run_until(ms(1))
        k.suspend_thread("w")
        w = k.threads["w"]
        assert w.suspended
        assert w.blocked_on == "event:E"  # still waiting on the event

    def test_double_suspend_rejected(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        k.suspend_thread("t")
        with pytest.raises(KernelError):
            k.suspend_thread("t")

    def test_resume_unsuspended_rejected(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        with pytest.raises(KernelError):
            k.resume_thread("t")


class TestKill:
    def test_killed_thread_never_runs_again(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        k.run_until(ms(7))
        k.kill_thread("t")
        jobs_before = len(k.trace.jobs_of("t"))
        k.run_until(ms(50))
        assert len(k.trace.jobs_of("t")) == jobs_before
        assert k.threads["t"].dead

    def test_killing_lock_holder_refused(self):
        k = zero_kernel()
        k.create_semaphore("S")
        k.create_thread(
            "t", Program([Acquire("S"), Compute(ms(5)), Release("S")]),
            period=ms(100),
        )
        k.run_until(ms(1))  # inside the critical section
        with pytest.raises(KernelError):
            k.kill_thread("t")

    def test_killed_waiter_removed_from_semaphore(self):
        # Standard scheme: under EMERALDS the waiter would be *parked*
        # by the hint check instead (covered below).
        k = Kernel(EDFScheduler(ZERO_OVERHEAD), sem_scheme="standard")
        k.create_semaphore("S")
        k.create_thread(
            "holder", Program([Acquire("S"), Compute(ms(5)), Release("S")]),
            period=ms(100), deadline=ms(90),
        )
        k.create_thread(
            "waiter", Program([Acquire("S"), Release("S")]),
            period=ms(100), deadline=ms(50), phase=us(100),
        )
        k.run_until(ms(1))  # waiter is queued on S
        assert k.threads["waiter"] in k.semaphores["S"].waiters
        k.kill_thread("waiter")
        assert k.threads["waiter"] not in k.semaphores["S"].waiters
        trace = k.run_until(ms(20))
        # The holder finishes normally.
        assert trace.jobs_of("holder")[0].completion is not None

    def test_killed_parked_thread_removed(self):
        """EMERALDS scheme: the hint check parks the waiter; killing it
        must purge the parked list too."""
        k = zero_kernel()
        k.create_semaphore("S")
        k.create_thread(
            "holder", Program([Acquire("S"), Compute(ms(5)), Release("S")]),
            period=ms(100), deadline=ms(90),
        )
        k.create_thread(
            "waiter", Program([Acquire("S"), Release("S")]),
            period=ms(100), deadline=ms(50), phase=us(100),
        )
        k.run_until(ms(1))
        sem = k.semaphores["S"]
        assert k.threads["waiter"] in sem.parked
        k.kill_thread("waiter")
        assert k.threads["waiter"] not in sem.parked
        trace = k.run_until(ms(20))
        assert trace.jobs_of("holder")[0].completion is not None

    def test_kill_running_thread_mid_compute(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(10))]), period=ms(100))
        k.create_thread("other", Program([Compute(ms(1))]), period=ms(100),
                        deadline=ms(95))
        k.run_until(ms(2))
        k.kill_thread("t")
        trace = k.run_until(ms(50))
        # The other thread proceeds untouched; t's job never completes.
        assert trace.jobs_of("other")[0].completion is not None
        assert all(j.completion is None for j in trace.jobs_of("t"))

    def test_double_kill_rejected(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        k.kill_thread("t")
        with pytest.raises(KernelError):
            k.kill_thread("t")
