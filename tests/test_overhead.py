"""Unit tests for the Table 1 cost model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.overhead import OverheadModel, ZERO_OVERHEAD


@pytest.fixture
def model():
    return OverheadModel()


class TestTable1Formulas:
    """The exact published formulas, in nanoseconds."""

    def test_edf_block_is_constant_1_6us(self, model):
        assert model.edf_block(1) == 1600
        assert model.edf_block(50) == 1600

    def test_edf_unblock_is_constant_1_2us(self, model):
        assert model.edf_unblock(50) == 1200

    def test_edf_select_linear(self, model):
        # 1.2 + 0.25 n us
        assert model.edf_select(0) == 1200
        assert model.edf_select(10) == 3700
        assert model.edf_select(40) == 11200

    def test_rm_block_linear(self, model):
        # 1.0 + 0.36 n us
        assert model.rm_block(0) == 1000
        assert model.rm_block(10) == 4600

    def test_rm_unblock_constant(self, model):
        assert model.rm_unblock(50) == 1400

    def test_rm_select_constant(self, model):
        assert model.rm_select(50) == 600

    @pytest.mark.parametrize(
        "n,levels",
        [(0, 0), (1, 1), (3, 2), (7, 3), (15, 4), (57, 6), (58, 6)],
    )
    def test_heap_levels(self, model, n, levels):
        # 0.4 + 2.8 ceil(log2(n + 1)) us
        assert model.heap_block(n) == 400 + 2800 * levels
        assert model.heap_unblock(n) == 1900 + 700 * levels

    def test_heap_select_constant(self, model):
        assert model.heap_select(50) == 600

    def test_heap_crossover_near_58_tasks(self, model):
        """Table 1's discussion: the heap only wins for very large n
        (58 on their hardware).  Check that the queue beats the heap
        below the crossover and loses above it."""

        def queue_total(n):
            return model.rm_block(n) + model.rm_unblock(n) + 2 * model.rm_select(n)

        def heap_total(n):
            return model.heap_block(n) + model.heap_unblock(n) + 2 * model.heap_select(n)

        assert queue_total(20) < heap_total(20)
        assert queue_total(100) > heap_total(100)


class TestPerPeriod:
    def test_per_period_formula(self):
        # t = 1.5 (t_b + t_u + 2 t_s)
        assert OverheadModel.per_period(1000, 2000, 3000) == round(1.5 * 9000)

    def test_per_period_custom_factor(self):
        assert OverheadModel.per_period(1000, 1000, 1000, blocking_factor=1.0) == 4000


class TestPriorityInheritanceCosts:
    def test_pi_standard_linear(self, model):
        assert model.pi_standard_step(0) == 150
        assert model.pi_standard_step(15) == 150 + 200 * 15

    def test_pi_o1_constant(self, model):
        assert model.pi_o1_step() == model.pi_o1_step_ns

    def test_pi_dp_constant(self, model):
        assert model.pi_dp_step() == model.pi_dp_step_ns


class TestZeroOverhead:
    @given(st.integers(min_value=0, max_value=1000))
    def test_everything_is_free(self, n):
        z = ZERO_OVERHEAD
        assert z.edf_block(n) == 0
        assert z.edf_unblock(n) == 0
        assert z.edf_select(n) == 0
        assert z.rm_block(n) == 0
        assert z.rm_select(n) == 0
        assert z.heap_block(n) == 0
        assert z.heap_unblock(n) == 0
        assert z.pi_standard_step(n) == 0
        assert z.pi_o1_step() == 0
        assert z.pi_dp_step() == 0
        assert z.context_switch_ns == 0
        assert z.syscall_ns == 0


class TestMonotonicity:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=500))
    def test_costs_monotone_in_queue_length(self, a, b):
        lo, hi = sorted((a, b))
        m = OverheadModel()
        assert m.edf_select(lo) <= m.edf_select(hi)
        assert m.rm_block(lo) <= m.rm_block(hi)
        assert m.heap_block(lo) <= m.heap_block(hi)
        assert m.heap_unblock(lo) <= m.heap_unblock(hi)
        assert m.pi_standard_step(lo) <= m.pi_standard_step(hi)
