"""Tests for the small-memory footprint accounting."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.footprint import (
    KERNEL_CODE_BYTES,
    FootprintModel,
    kernel_footprint,
)
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program
from repro.timeunits import ms


def small_kernel():
    k = Kernel(EDFScheduler(ZERO_OVERHEAD))
    k.create_thread("a", Program([Compute(ms(1))]), period=ms(10))
    k.create_thread("b", Program([Compute(ms(1))]), period=ms(20))
    k.create_semaphore("m")
    k.create_event("e")
    k.create_mailbox("box", capacity=4, max_message_size=32)
    k.create_channel("c", slots=4)
    k.create_timer("t", ms(5), lambda kern: None)
    return k


class TestFootprint:
    def test_code_size_matches_paper(self):
        assert KERNEL_CODE_BYTES == 13 * 1024

    def test_itemization_covers_all_objects(self):
        report = kernel_footprint(small_kernel())
        categories = report.by_category()
        assert categories["threads"] > 0
        assert categories["sync"] > 0
        assert categories["ipc"] > 0
        assert categories["timers"] > 0
        assert categories["scheduler"] > 0

    def test_thread_cost(self):
        model = FootprintModel()
        empty = kernel_footprint(Kernel(EDFScheduler(ZERO_OVERHEAD)))
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_thread("a", Program([Compute(ms(1))]), period=ms(10))
        one = kernel_footprint(k)
        delta = one.data_bytes - empty.data_bytes
        assert delta == model.tcb_bytes + model.stack_bytes + model.queue_node_bytes

    def test_mailbox_buffer_scales_with_capacity(self):
        model = FootprintModel()
        k1 = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k1.create_mailbox("m", capacity=2, max_message_size=64)
        k2 = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k2.create_mailbox("m", capacity=8, max_message_size=64)
        diff = kernel_footprint(k2).data_bytes - kernel_footprint(k1).data_bytes
        assert diff == 6 * 64

    def test_typical_app_fits_small_memory_parts(self):
        """The engine-control-sized configuration must fit 32 KB."""
        report = kernel_footprint(small_kernel())
        assert report.fits(32 * 1024)
        assert not report.fits(KERNEL_CODE_BYTES)  # code alone fills that

    def test_render_mentions_code_and_total(self):
        text = kernel_footprint(small_kernel()).render()
        assert "kernel code" in text
        assert "total:" in text

    def test_custom_model(self):
        fat = FootprintModel(stack_bytes=4096)
        thin = FootprintModel(stack_bytes=128)
        k = small_kernel()
        assert kernel_footprint(k, fat).data_bytes > kernel_footprint(k, thin).data_bytes

    def test_example_applications_fit_128k(self):
        """Every example application must fit the paper's top-end part."""
        import sys
        sys.path.insert(0, "examples")
        import importlib

        for module_name in ("quickstart", "engine_control", "voice_pipeline"):
            module = importlib.import_module(module_name)
            if module_name == "engine_control":
                kernel = module.build_kernel("emeralds")
            else:
                kernel = module.build_kernel()
            report = kernel_footprint(kernel)
            assert report.fits(128 * 1024), (
                f"{module_name}: {report.total_bytes} bytes"
            )
