"""Behavioural tests for mailboxes, shared memory, and state messages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.ipc.mailbox import MailboxError
from repro.ipc.state_message import StateChannel, StateMessageError, TornRead, required_slots
from repro.kernel.kernel import Kernel
from repro.kernel.memory import ProtectionFault
from repro.kernel.program import (
    Acquire,
    Compute,
    Program,
    Recv,
    Release,
    Send,
    StateRead,
    StateWrite,
)
from repro.timeunits import ms, us


def zero_kernel(**kw):
    return Kernel(EDFScheduler(ZERO_OVERHEAD), **kw)


class TestMailbox:
    def test_send_then_recv(self):
        k = zero_kernel()
        k.create_mailbox("m")
        k.create_thread(
            "tx", Program([Send("m", size=8, payload="ping")]),
            period=ms(100), deadline=ms(1),
        )
        k.create_thread(
            "rx", Program([Recv("m"), Compute(us(5))]),
            period=ms(100), deadline=ms(10),
        )
        k.run_until(ms(5))
        assert k.threads["rx"].last_received == "ping"

    def test_recv_blocks_until_send(self):
        k = zero_kernel()
        k.create_mailbox("m")
        k.create_thread(
            "rx", Program([Recv("m"), Compute(us(5))]),
            period=ms(100), deadline=ms(1),
        )
        k.create_thread(
            "tx", Program([Compute(ms(2)), Send("m", size=8, payload=42)]),
            period=ms(100), deadline=ms(50),
        )
        trace = k.run_until(ms(5))
        rx_job = trace.jobs_of("rx")[0]
        assert rx_job.completion == ms(2) + us(5)
        assert k.threads["rx"].last_received == 42

    def test_send_blocks_when_full(self):
        k = zero_kernel()
        k.create_mailbox("m", capacity=1)
        k.create_thread(
            "tx",
            Program([Send("m", size=4, payload=1), Send("m", size=4, payload=2),
                     Compute(us(5))]),
            period=ms(100), deadline=ms(5),
        )
        k.create_thread(
            "rx", Program([Compute(ms(1)), Recv("m"), Recv("m")]),
            period=ms(100), deadline=ms(50),
        )
        trace = k.run_until(ms(10))
        mbox = k.mailboxes["m"]
        assert mbox.blocked_sends == 1
        assert not trace.deadline_violations(k.now)
        assert k.threads["rx"].last_received == 2

    def test_fifo_order(self):
        k = zero_kernel()
        k.create_mailbox("m", capacity=4)
        received = []
        from repro.kernel.program import Call

        k.create_thread(
            "tx",
            Program([Send("m", size=4, payload=i) for i in range(3)]),
            period=ms(100), deadline=ms(1),
        )
        k.create_thread(
            "rx",
            Program(
                sum(
                    (
                        [Recv("m"), Call(lambda kern, t: received.append(t.last_received))]
                        for _ in range(3)
                    ),
                    [],
                )
            ),
            period=ms(100), deadline=ms(50),
        )
        k.run_until(ms(10))
        assert received == [0, 1, 2]

    def test_oversized_message_rejected(self):
        k = zero_kernel()
        k.create_mailbox("m", max_message_size=8)
        k.create_thread(
            "tx", Program([Send("m", size=16)]), period=ms(100), deadline=ms(1)
        )
        with pytest.raises(MailboxError):
            k.run_until(ms(5))

    def test_send_buffer_protection_fault_kills_thread(self):
        """A protection violation terminates the offending thread; the
        kernel itself survives (Section 3's protection boundary)."""
        k = zero_kernel()
        k.create_mailbox("m")
        proc = k.create_process("app")
        proc.map_region("wo", 64, readable=False)
        k.create_thread(
            "tx", Program([Send("m", size=8, buffer="wo")]),
            period=ms(100), deadline=ms(1), process=proc,
        )
        k.create_thread(
            "innocent", Program([Compute(ms(1))]), period=ms(10), deadline=ms(9)
        )
        trace = k.run_until(ms(50))
        assert k.threads["tx"].dead
        assert any(kind == "protection-fault" for _, kind, _ in trace.events)
        # The rest of the system keeps running.
        assert len(trace.jobs_of("innocent")) == 5
        assert not trace.deadline_violations(k.now) or all(
            j.thread == "tx" for j in trace.deadline_violations(k.now)
        )

    def test_recv_buffer_protection_fault_kills_thread(self):
        k = zero_kernel()
        k.create_mailbox("m")
        proc = k.create_process("app")
        proc.map_region("ro", 64, writable=False)
        k.create_thread(
            "rx", Program([Recv("m", buffer="ro")]),
            period=ms(100), deadline=ms(1), process=proc,
        )
        k.run_until(ms(5))
        assert k.threads["rx"].dead

    def test_strict_fault_policy_raises(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD), fault_policy="raise")
        k.create_mailbox("m")
        proc = k.create_process("app")
        proc.map_region("wo", 64, readable=False)
        k.create_thread(
            "tx", Program([Send("m", size=8, buffer="wo")]),
            period=ms(100), deadline=ms(1), process=proc,
        )
        with pytest.raises(ProtectionFault):
            k.run_until(ms(5))

    def test_faulting_lock_holder_releases_its_locks(self):
        k = zero_kernel()
        k.create_mailbox("m")
        k.create_semaphore("S")
        proc = k.create_process("app")
        proc.map_region("wo", 64, readable=False)
        k.create_thread(
            "bad",
            Program([Acquire("S"), Send("m", size=8, buffer="wo"),
                     Release("S")]),
            period=ms(100), deadline=ms(1), process=proc,
        )
        k.create_thread(
            "good",
            Program([Compute(us(50)), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(100), deadline=ms(50),
        )
        trace = k.run_until(ms(20))
        assert k.threads["bad"].dead
        assert not k.semaphores["S"].locked
        # good eventually got the lock and finished.
        assert trace.jobs_of("good")[0].completion is not None

    def test_copy_cost_charged_per_byte(self):
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        k.create_mailbox("m")
        k.create_thread(
            "tx", Program([Send("m", size=64, payload=b"x")]),
            period=ms(100), deadline=ms(1),
        )
        trace = k.run_until(ms(5))
        assert trace.kernel_time["ipc"] == (
            model.ipc_fixed_ns + 64 * model.ipc_copy_per_byte_ns
        )


class TestSharedMemory:
    def test_map_write_read_across_processes(self):
        k = zero_kernel()
        shm = k.create_shared_memory("buf", 128)
        writer = k.create_process("writer")
        reader = k.create_process("reader")
        shm.map_into(writer, writable=True)
        shm.map_into(reader, writable=False)
        shm.write(writer, 0, b"hello")
        assert shm.read(reader, 0, 5) == b"hello"

    def test_readonly_mapping_rejects_write(self):
        k = zero_kernel()
        shm = k.create_shared_memory("buf", 64)
        proc = k.create_process("p")
        shm.map_into(proc, writable=False)
        with pytest.raises(ProtectionFault):
            shm.write(proc, 0, b"x")

    def test_unmapped_process_faults(self):
        k = zero_kernel()
        shm = k.create_shared_memory("buf", 64)
        proc = k.create_process("p")
        with pytest.raises(ProtectionFault):
            shm.read(proc, 0, 1)

    def test_bounds_checked(self):
        k = zero_kernel()
        shm = k.create_shared_memory("buf", 16)
        proc = k.create_process("p")
        shm.map_into(proc, writable=True)
        with pytest.raises(ValueError):
            shm.write(proc, 10, b"0123456789")
        with pytest.raises(ValueError):
            shm.read(proc, -1, 4)

    def test_double_map_rejected(self):
        k = zero_kernel()
        shm = k.create_shared_memory("buf", 16)
        proc = k.create_process("p")
        shm.map_into(proc)
        with pytest.raises(ValueError):
            shm.map_into(proc)

    def test_unmap(self):
        k = zero_kernel()
        shm = k.create_shared_memory("buf", 16)
        proc = k.create_process("p")
        shm.map_into(proc)
        shm.unmap_from(proc)
        with pytest.raises(ProtectionFault):
            shm.read(proc, 0, 1)


class TestStateChannelUnit:
    def test_read_latest(self):
        c = StateChannel("c", slots=3)
        c.write(1)
        c.write(2)
        assert c.read() == 2

    def test_single_writer_enforced(self):
        c = StateChannel("c", slots=2)
        c.write(1, writer_name="w")
        with pytest.raises(StateMessageError):
            c.write(2, writer_name="other")

    def test_minimum_slots(self):
        with pytest.raises(ValueError):
            StateChannel("c", slots=1)

    def test_begin_end_read_consistent_without_writes(self):
        c = StateChannel("c", slots=3)
        c.write("v1")
        token = c.begin_read()
        assert c.end_read(token) == "v1"

    def test_torn_read_detected_when_writer_laps(self):
        c = StateChannel("c", slots=2)
        c.write("a")
        token = c.begin_read()
        c.write("b")
        c.write("c")  # wraps back onto the slot being read
        with pytest.raises(TornRead):
            c.end_read(token)
        assert c.torn_reads == 1

    def test_enough_slots_prevent_tearing(self):
        c = StateChannel("c", slots=4)
        c.write("a")
        token = c.begin_read()
        c.write("b")
        c.write("c")  # only 2 writes; 4 slots protect the read
        assert c.end_read(token) == "a"

    @given(st.integers(1, 10_000), st.integers(0, 100_000))
    def test_required_slots_bound(self, period, read_time):
        n = required_slots(period, read_time)
        assert n >= 2
        # Enough that the writer cannot wrap within the read window.
        assert (n - 1) * period > read_time or read_time == 0


class TestStateChannelInKernel:
    def test_write_read_roundtrip(self):
        k = zero_kernel()
        k.create_channel("c", slots=4)
        k.create_thread(
            "w", Program([StateWrite("c", value=7)]),
            period=ms(10), deadline=ms(1),
        )
        k.create_thread(
            "r", Program([Compute(us(10)), StateRead("c")]),
            period=ms(10), deadline=ms(5),
        )
        k.run_until(ms(5))
        assert k.threads["r"].last_read == 7

    def test_no_syscall_charged(self):
        """State messages bypass the kernel trap -- their whole point."""
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        k.create_channel("c", slots=4)
        k.create_thread(
            "w", Program([StateWrite("c", value=1)]), period=ms(10), deadline=ms(1)
        )
        trace = k.run_until(ms(5))
        assert trace.kernel_time.get("syscall", 0) == 0
        assert trace.kernel_time["state-msg"] == model.state_msg_write_ns

    def test_preempted_read_with_enough_slots_is_clean(self):
        """A slow reader preempted by the writer still gets a coherent
        value when the channel is sized per required_slots."""
        write_period = ms(1)
        read_time = ms(3)  # reader is lapped 3 times per read
        slots = required_slots(write_period, read_time)
        k = zero_kernel()
        k.create_channel("c", slots=slots)
        k.create_thread(
            "w", Program([StateWrite("c", value=0)]),
            period=write_period, deadline=us(500),
        )
        k.create_thread(
            "r", Program([StateRead("c", duration=read_time)]),
            period=ms(10), deadline=ms(10),
        )
        trace = k.run_until(ms(50))
        assert k.channels["c"].torn_reads == 0
        assert not trace.deadline_violations(k.now)

    def test_undersized_channel_tears_and_retries(self):
        k = zero_kernel()
        k.create_channel("c", slots=2)
        k.create_thread(
            "w", Program([StateWrite("c", value=0)]),
            period=ms(1), deadline=us(500),
        )
        k.create_thread(
            "r", Program([StateRead("c", duration=ms(3))]),
            period=ms(20), deadline=ms(20),
        )
        k.run_until(ms(40))
        assert k.channels["c"].torn_reads > 0
        # The retry loop still eventually completes each job...
        assert any(
            j.completion is not None for j in k.trace.jobs_of("r")
        ) or k.channels["c"].torn_reads > 5

    def test_second_writer_thread_rejected(self):
        k = zero_kernel()
        k.create_channel("c", slots=4)
        k.create_thread(
            "w1", Program([StateWrite("c", value=1)]), period=ms(10), deadline=ms(1)
        )
        k.create_thread(
            "w2", Program([StateWrite("c", value=2)]), period=ms(10), deadline=ms(2)
        )
        with pytest.raises(StateMessageError):
            k.run_until(ms(5))
