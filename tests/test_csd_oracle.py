"""Property test: the CSD scheduler against a naive oracle.

Hypothesis drives a random block/unblock sequence over a CSD-3
scheduler and re-derives every selection decision from first
principles: strict queue priority (DP1 > DP2 > FP), EDF inside DP
queues (earliest effective deadline), fixed priority inside the FP
queue.  Any divergence is a scheduler bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csd import CSDScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.core.queues import Schedulable


def oracle_select(tasks):
    """First-principles CSD selection over ``tasks`` (with .csd_queue)."""
    best_queue = None
    for t in tasks:
        if not t.ready:
            continue
        if best_queue is None or t.csd_queue < best_queue:
            best_queue = t.csd_queue
    if best_queue is None:
        return None
    contenders = [t for t in tasks if t.ready and t.csd_queue == best_queue]
    if best_queue == 2:  # the FP queue
        return min(contenders, key=lambda t: (t.effective_key, t.name))
    # DP queues: EDF on the effective (deadline, tie-break key) rank --
    # priority inheritance carries the donor's key with its deadline.
    return min(contenders, key=lambda t: (*t.edf_rank(), t.name))


@st.composite
def csd_population(draw):
    n = draw(st.integers(3, 10))
    tasks = []
    for i in range(n):
        t = Schedulable(f"t{i}", (draw(st.integers(0, 50)), f"t{i}"))
        t.csd_queue = draw(st.integers(0, 2))
        t.ready = draw(st.booleans())
        t.abs_deadline = draw(st.integers(1, 10_000))
        tasks.append(t)
    ops = draw(
        st.lists(st.integers(0, n - 1), max_size=40)
    )
    return tasks, ops


@settings(max_examples=300, deadline=None)
@given(csd_population())
def test_csd_select_matches_oracle(population):
    tasks, ops = population
    scheduler = CSDScheduler(ZERO_OVERHEAD, dp_queue_count=2)
    for t in tasks:
        scheduler.add_task(t)
    selected, _ = scheduler.select()
    assert selected is oracle_select(tasks)
    for index in ops:
        t = tasks[index]
        if t.ready:
            scheduler.on_block(t)
        else:
            scheduler.on_unblock(t)
        selected, _ = scheduler.select()
        assert selected is oracle_select(tasks)


@settings(max_examples=200, deadline=None)
@given(csd_population(), st.data())
def test_csd_pi_preserves_oracle_agreement(population, data):
    """Same oracle check, but with random same-queue PI raises and
    restores interleaved (DP deadline overwrites, FP repositions)."""
    tasks, ops = population
    scheduler = CSDScheduler(ZERO_OVERHEAD, dp_queue_count=2)
    for t in tasks:
        scheduler.add_task(t)
    raised = []
    for index in ops:
        t = tasks[index]
        action = data.draw(st.sampled_from(["flip", "raise", "restore"]))
        if action == "flip":
            if t.ready:
                scheduler.on_block(t)
            else:
                scheduler.on_unblock(t)
        elif action == "raise":
            donor = tasks[data.draw(st.integers(0, len(tasks) - 1))]
            if donor.csd_queue == t.csd_queue and donor is not t and t not in raised:
                scheduler.raise_priority(t, donor)
                raised.append(t)
        elif action == "restore" and raised:
            target = raised.pop()
            scheduler.restore_priority(target)
        selected, _ = scheduler.select()
        assert selected is oracle_select(tasks)
