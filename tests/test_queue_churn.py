"""Randomized churn property tests for the scheduler queues.

Each queue discipline (:class:`UnsortedQueue`, :class:`SortedQueue`,
:class:`ReadyHeap`) is driven through long random sequences of
add/remove/block/unblock (plus discipline-specific mutations:
deadline retargeting and priority inheritance for EDF, ``reposition``
for the sorted list) while a brute-force reference model tracks the
same population.  After **every** operation the structure's own
``check_invariants`` must hold and ``select()`` must agree with the
reference answer.

Keys and deadlines are globally unique, so the reference selection is
a total order and the comparison is exact -- no tie-break ambiguity.
"""

import random

import pytest

from repro.core.queues import ReadyHeap, Schedulable, SortedQueue, UnsortedQueue

SEEDS = [0, 1, 2, 3, 4]
OPS = 400


class _Churn:
    """Shared scaffolding: unique value generation + reference model."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self._counter = 0
        self.members = []  # reference population, insertion order

    def unique(self) -> int:
        """A fresh value, random in the high bits, unique in the low."""
        self._counter += 1
        return self.rng.randrange(1_000_000) * 10_000 + self._counter

    def new_task(self) -> Schedulable:
        task = Schedulable(f"t{self._counter}", (self.unique(),))
        task.abs_deadline = self.unique()
        task.ready = self.rng.random() < 0.6
        return task

    def ready_members(self):
        return [t for t in self.members if t.ready]

    def blocked_members(self):
        return [t for t in self.members if not t.ready]


def _check(queue, churn, expected_select):
    queue.check_invariants()
    assert len(queue) == len(churn.members)
    assert queue.ready_count == len(churn.ready_members())
    assert queue.select() is expected_select(churn)


def _edf_expected(churn):
    ready = churn.ready_members()
    if not ready:
        return None
    return min(ready, key=lambda t: t.effective_deadline)


def _fp_expected(churn):
    ready = churn.ready_members()
    if not ready:
        return None
    return min(ready, key=lambda t: (t.effective_key, t.name))


def _drive(queue, churn, mutate, expected_select):
    """The churn loop: weighted random ops, full validation each step."""
    rng = churn.rng
    for _ in range(OPS):
        roll = rng.random()
        if roll < 0.30 or not churn.members:
            task = churn.new_task()
            queue.add(task)
            churn.members.append(task)
        elif roll < 0.40:
            task = rng.choice(churn.members)
            queue.remove(task)
            churn.members.remove(task)
        elif roll < 0.60 and churn.ready_members():
            queue.block(rng.choice(churn.ready_members()))
        elif roll < 0.80 and churn.blocked_members():
            queue.unblock(rng.choice(churn.blocked_members()))
        else:
            mutate(queue, churn)
        _check(queue, churn, expected_select)
    # Drain: every remaining task must come back out cleanly.
    while churn.members:
        task = churn.rng.choice(churn.members)
        queue.remove(task)
        churn.members.remove(task)
        _check(queue, churn, expected_select)


@pytest.mark.parametrize("seed", SEEDS)
def test_unsorted_queue_churn(seed):
    """EDF queue: O(1) flag flips + deadline/PI mutations stay exact."""

    def mutate(queue, churn):
        task = churn.rng.choice(churn.members)
        if churn.rng.random() < 0.5:
            task.abs_deadline = churn.unique()
        elif task.pi_deadline is None:
            task.pi_deadline = churn.unique()
        else:
            task.pi_deadline = None

    churn = _Churn(seed)
    _drive(UnsortedQueue(), churn, mutate, _edf_expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_sorted_queue_churn(seed):
    """FP linked list: highestp tracking survives reposition churn."""

    def mutate(queue, churn):
        task = churn.rng.choice(churn.members)
        task.effective_key = (churn.unique(),)
        queue.reposition(task)

    churn = _Churn(seed)
    _drive(SortedQueue(), churn, mutate, _fp_expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_ready_heap_churn(seed):
    """Binary heap with lazy invalidation: stale entries never win.

    Keys only change while a task is *blocked* (its heap entry, if
    any, is already invalidated); changing the key of a live entry is
    outside the structure's contract.
    """

    def mutate(queue, churn):
        blocked = churn.blocked_members()
        if blocked:
            churn.rng.choice(blocked).effective_key = (churn.unique(),)

    churn = _Churn(seed)
    _drive(ReadyHeap(), churn, mutate, _fp_expected)


def test_sorted_queue_swap_and_move_keep_invariants():
    """The O(1) PI primitives preserve every structural invariant."""
    rng = random.Random(99)
    queue = SortedQueue()
    tasks = []
    for i in range(8):
        task = Schedulable(f"p{i}", (i * 10,))
        task.ready = i % 2 == 0
        queue.add(task)
        tasks.append(task)
    queue.check_invariants()
    for _ in range(100):
        a, b = rng.sample(tasks, 2)
        if rng.random() < 0.5:
            queue.swap_positions(a, b)
        else:
            queue.move_before(a, b)
        queue.check_invariants()
        # Selection still returns the first ready task in list order.
        order = queue.tasks()
        first_ready = next((t for t in order if t.ready), None)
        assert queue.select() is first_ready
