"""Tests for the deterministic metrics registry and the collector."""

import json

import pytest

from repro.obs.collector import ObsCollector
from repro.obs.metrics import (
    DEFAULT_RESPONSE_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.scenarios import (
    DEMO_HORIZON_NS,
    demo_metrics_fingerprint,
    pi_demo_kernel,
    run_pi_demo,
)
from repro.perf.sweeps import parallel_map


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", task="a").inc()
        reg.counter("jobs_total", task="a").inc(4)
        assert reg.counter("jobs_total", task="a").value == 5

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", task="a").inc()
        reg.counter("jobs_total", task="b").inc(2)
        assert reg.counter("jobs_total", task="a").value == 1
        assert reg.counter("jobs_total", task="b").value == 2

    def test_gauge_tracks_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.set(3)
        assert g.value == 3
        assert g.max_seen == 7

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", task="a")

    def test_histogram_buckets(self):
        h = Histogram("resp", (), buckets=(10, 20, 50))
        for v in (5, 10, 11, 100):
            h.observe(v)
        assert h.counts == [2, 1, 0, 1]  # le=10, le=20, le=50, +Inf
        assert h.count == 4
        assert h.total == 126

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (), buckets=(10, 10))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", (), buckets=())

    def test_export_independent_of_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("one", task="x").inc()
        a.gauge("two").set(3)
        b.gauge("two").set(3)
        b.counter("one", task="x").inc()
        assert a.to_json() == b.to_json()
        assert a.to_prometheus() == b.to_prometheus()

    def test_prometheus_histogram_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("resp_ns", buckets=(10, 20), task="a")
        h.observe(15)
        text = reg.to_prometheus()
        assert '# TYPE resp_ns histogram' in text
        assert 'resp_ns_bucket{task="a",le="10"} 0' in text
        assert 'resp_ns_bucket{task="a",le="+Inf"} 1' in text
        assert 'resp_ns_sum{task="a"} 15' in text
        assert 'resp_ns_count{task="a"} 1' in text


def _sample_registry(scale: int = 1) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("jobs_total", task="a").inc(3 * scale)
    g = reg.gauge("depth")
    g.set(2 * scale)
    g.set(scale)
    reg.histogram("resp_ns", buckets=(10, 20), task="a").observe(15 * scale)
    return reg


class TestMerge:
    def test_variadic_merge_folds_all_kinds(self):
        a, b = _sample_registry(1), _sample_registry(2)
        merged = MetricsRegistry().merge(a, b)
        assert merged.counter("jobs_total", task="a").value == 9
        assert merged.gauge("depth").value == 2  # later argument wins
        assert merged.gauge("depth").max_seen == 4
        h = merged.histogram("resp_ns", buckets=(10, 20), task="a")
        assert h.count == 2 and h.total == 45

    def test_merge_returns_self_for_chaining(self):
        reg = MetricsRegistry()
        assert reg.merge(_sample_registry()) is reg

    def test_merge_into_empty_is_identity(self):
        """Idempotence anchor: folding one registry into a fresh one
        reproduces its exports byte for byte."""
        reg = _sample_registry()
        assert MetricsRegistry().merge(reg).to_json() == reg.to_json()
        assert (
            MetricsRegistry().merge(reg).to_prometheus()
            == reg.to_prometheus()
        )

    def test_double_merge_equals_single_pass(self):
        """Regression: merging shard-by-shard (the worker aggregation
        path) must equal merging everything in one variadic call."""
        shards = [_sample_registry(s) for s in (1, 2, 3)]
        one_pass = MetricsRegistry().merge(*shards)
        stepwise = MetricsRegistry()
        for shard in shards:
            stepwise.merge(shard)
        assert one_pass.to_json() == stepwise.to_json()

    def test_merged_shim_warns_and_matches_canonical(self):
        shards = [_sample_registry(s) for s in (1, 2)]
        with pytest.warns(DeprecationWarning, match="merge"):
            via_shim = MetricsRegistry.merged(shards)
        assert via_shim.to_json() == MetricsRegistry().merge(*shards).to_json()


class TestCollector:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="unknown obs mode"):
            ObsCollector(mode="verbose")

    def test_double_attach_rejected(self):
        kernel = pi_demo_kernel()
        ObsCollector().attach(kernel)
        with pytest.raises(ValueError, match="already has an observer"):
            ObsCollector().attach(kernel)

    def test_demo_counts_pi_and_blocking(self):
        _kernel, _trace, collector = run_pi_demo("standard")
        # Both semaphores saw contention and donations (2 periods).
        assert collector.sems["M"].blocks == 2
        assert collector.sems["S"].blocks == 2
        assert collector.sems["M"].donations > 0
        assert collector.sems["M"].blocked_ns > 0
        assert collector.switches > 0
        assert collector.queue_depth_max >= 1

    def test_counters_and_full_mode_agree_on_shared_metrics(self):
        _k, _t, full = run_pi_demo("standard", mode="full")
        kernel = pi_demo_kernel("standard", record="jobs-only")
        counters = ObsCollector(mode="counters").attach(kernel)
        kernel.run_until(DEMO_HORIZON_NS)
        d_full = json.loads(full.metrics_json())
        d_cnt = json.loads(counters.metrics_json())
        for name, entry in d_cnt.items():
            if name.startswith(("task_", "sem_", "sched_")):
                assert entry == d_full[name], name

    def test_off_recording_still_counts_completions(self):
        kernel = pi_demo_kernel("standard", record="off")
        collector = ObsCollector(mode="counters").attach(kernel)
        kernel.run_until(DEMO_HORIZON_NS)
        reg = json.loads(collector.metrics_json())
        series = reg["task_jobs_completed_total"]["series"]
        by_task = {s["labels"]["task"]: s["value"] for s in series}
        assert by_task["a"] == 2 and by_task["b"] == 2 and by_task["c"] == 2

    def test_on_switch_reference_matches_inlined_counters(self):
        # The kernel inlines on_switch; the method must stay
        # equivalent for callers outside the dispatcher.
        collector = ObsCollector()
        collector.on_switch(0, None, "a", False, 3)
        collector.on_switch(5, "a", "b", True, 5)
        assert collector.switches == 2
        assert collector.dispatch_counts == {"a": 1, "b": 1}
        assert collector.preempt_counts == {"a": 1}
        assert collector.queue_depth_max == 5
        assert collector.queue_depth_sum == 8


class TestDeterminism:
    def test_fingerprint_stable_across_runs(self):
        assert demo_metrics_fingerprint("standard") == demo_metrics_fingerprint(
            "standard"
        )

    def test_fingerprint_differs_between_schemes(self):
        assert demo_metrics_fingerprint("standard") != demo_metrics_fingerprint(
            "emeralds"
        )

    def test_fingerprint_identical_across_worker_counts(self):
        items = ["standard", "emeralds", "standard"]
        serial = parallel_map(demo_metrics_fingerprint, items, workers=1)
        forked = parallel_map(demo_metrics_fingerprint, items, workers=2)
        assert serial == forked
        assert serial[0] == serial[2]
