"""Tests for the fieldbus dependability layer: CAN error confinement,
bounded retransmission, heap arbitration equivalence, rx bounds,
replica freshness, heartbeat membership, and the network chaos
harness."""

import random

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.faults.chaos import run_net_chaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import Fault, FaultPlan
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Program
from repro.net import (
    BUS_OFF,
    ERROR_ACTIVE,
    ERROR_PASSIVE,
    CanErrorState,
    Cluster,
    Fieldbus,
    Frame,
    GlobalStateChannel,
    HeartbeatMonitor,
    MessageStream,
    bus_response_times,
)
from repro.net.depend import net_registry
from repro.net.errorstate import (
    BUS_OFF_RECOVERY_BITS,
    SUSPEND_TRANSMISSION_BITS,
)
from repro.net.frame import ERROR_FRAME_BITS, frame_bits
from repro.obs.collector import ObsCollector
from repro.obs.metrics import MetricsRegistry
from repro.timeunits import ms, us


def zero_kernel():
    return Kernel(EDFScheduler(ZERO_OVERHEAD))


def notes(trace, kind):
    return [(t, d) for (t, k, d) in trace.events if k == kind]


BIT = 1_000  # ns per bit at 1 Mbit/s


# ----------------------------------------------------------------------
# CAN error state machine
# ----------------------------------------------------------------------
class TestCanErrorState:
    def test_starts_error_active(self):
        state = CanErrorState("n", BIT)
        assert state.state == ERROR_ACTIVE
        assert state.severity == 0

    def test_tx_errors_reach_error_passive(self):
        state = CanErrorState("n", BIT)
        for _ in range(16):  # 16 * 8 = 128
            state.on_tx_error(0)
        assert state.state == ERROR_PASSIVE
        assert state.tec == 128

    def test_success_decrements_and_recovers_active(self):
        state = CanErrorState("n", BIT)
        for _ in range(16):
            state.on_tx_error(0)
        state.on_tx_success(1)
        assert state.tec == 127
        assert state.state == ERROR_ACTIVE

    def test_rec_drives_error_passive_too(self):
        state = CanErrorState("n", BIT)
        for _ in range(128):
            state.on_rx_error(0)
        assert state.state == ERROR_PASSIVE
        state.on_rx_success(1)
        assert state.state == ERROR_ACTIVE

    def test_bus_off_at_256_and_deterministic_recovery(self):
        state = CanErrorState("n", BIT)
        for _ in range(32):  # 32 * 8 = 256
            state.on_tx_error(100)
        assert state.state == BUS_OFF
        assert state.bus_off_events == 1
        expected = 100 + BUS_OFF_RECOVERY_BITS * BIT
        assert state.bus_off_until == expected
        # Nothing but maybe_recover leaves bus-off.
        state.on_tx_success(expected - 1)
        assert state.state == BUS_OFF
        assert not state.maybe_recover(expected - 1)
        assert state.maybe_recover(expected)
        assert state.state == ERROR_ACTIVE
        assert state.tec == 0 and state.rec == 0

    def test_transitions_are_logged_in_order(self):
        state = CanErrorState("n", BIT)
        for i in range(32):
            state.on_tx_error(i)
        kinds = [s for _, s in state.transitions]
        assert kinds == [ERROR_PASSIVE, BUS_OFF]
        times = [t for t, _ in state.transitions]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# fault_hook verdict validation (satellite b)
# ----------------------------------------------------------------------
class TestVerdictValidation:
    def test_unknown_verdict_raises_with_allowed_list(self):
        bus = Fieldbus(1_000_000)
        bus.fault_hook = lambda start, frame: "mangle"
        bus.queue(0, Frame(can_id=1, size=0))
        with pytest.raises(ValueError) as err:
            bus.process(ms(1))
        message = str(err.value)
        assert "mangle" in message
        for verdict in ("ok", "drop", "corrupt"):
            assert verdict in message

    def test_none_verdict_raises(self):
        bus = Fieldbus(1_000_000)
        bus.fault_hook = lambda start, frame: None
        bus.queue(0, Frame(can_id=1, size=0))
        with pytest.raises(ValueError):
            bus.process(ms(1))


# ----------------------------------------------------------------------
# heap arbitration vs the O(n^2) reference (satellite c)
# ----------------------------------------------------------------------
def reference_arbitrate(requests, bit_rate_bps, horizons):
    """The seed implementation: min-scan over a list + list.remove."""
    pending = list(requests)
    busy_until = 0
    deliveries = []
    for horizon in horizons:
        while pending:
            earliest = min(r.time for r in pending)
            start = max(earliest, busy_until)
            if start > horizon:
                break
            candidates = [r for r in pending if r.time <= start]
            winner = min(
                candidates, key=lambda r: (r.frame.can_id, r.sequence)
            )
            pending.remove(winner)
            duration = frame_bits(winner.frame.size) * 1_000_000_000 // bit_rate_bps
            completion = start + duration
            busy_until = completion
            deliveries.append((completion, winner.frame.can_id, winner.frame.sender))
    return deliveries


class TestHeapArbitrationEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_delivery_order_matches_reference(self, seed):
        rng = random.Random(f"heap-arb:{seed}")
        bus = Fieldbus(1_000_000)
        for _ in range(200):
            frame = Frame(
                can_id=rng.randrange(0x800),
                size=rng.randrange(9),
                sender=f"n{rng.randrange(5)}",
            )
            bus.queue(rng.randrange(ms(50)), frame)
        requests = [r for _, _, r in bus._future]
        # Process in chunks so ready-carryover across calls is covered.
        horizons = [ms(10), ms(25), ms(200)]
        got = []
        for horizon in horizons:
            got.extend(
                (d.time, d.frame.can_id, d.frame.sender)
                for d in bus.process(horizon)
            )
        expected = reference_arbitrate(requests, 1_000_000, horizons)
        assert got == expected
        assert bus.pending_count == 0


# ----------------------------------------------------------------------
# bounded retransmission + error frames + bus-off deferral
# ----------------------------------------------------------------------
class TestRetransmission:
    def _dropping_bus(self, drops, max_retransmits=8):
        """A dependable bus whose hook drops the first ``drops`` wins."""
        bus = Fieldbus(1_000_000).enable_dependability(max_retransmits)
        remaining = {"n": drops}

        def hook(start, frame):
            if remaining["n"] > 0:
                remaining["n"] -= 1
                return "drop"
            return "ok"

        bus.fault_hook = hook
        return bus

    def test_dropped_frame_is_retransmitted_and_delivered(self):
        bus = self._dropping_bus(drops=1)
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        deliveries = bus.process(ms(1))
        assert len(deliveries) == 1
        assert bus.frames_retransmitted == 1
        assert bus.error_frames == 1
        # first attempt + error frame + retry
        frame_t = bus.frame_time_ns(0)
        assert deliveries[0].time == 2 * frame_t + bus.error_frame_time_ns

    def test_error_frame_occupies_the_wire(self):
        bus = self._dropping_bus(drops=1)
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        bus.process(ms(1))
        assert bus.bits_carried == 2 * frame_bits(0) + ERROR_FRAME_BITS

    def test_retransmits_exhausted_after_bound(self):
        bus = self._dropping_bus(drops=100, max_retransmits=3)
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        deliveries = bus.process(ms(5))
        assert deliveries == []
        assert bus.frames_retransmitted == 3
        assert bus.retransmits_exhausted == 1
        assert bus.frames_dropped == 4  # initial attempt + 3 retries

    def test_zero_bound_never_retries(self):
        bus = self._dropping_bus(drops=100, max_retransmits=0)
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        assert bus.process(ms(5)) == []
        assert bus.frames_retransmitted == 0
        assert bus.retransmits_exhausted == 0

    def test_error_passive_sender_suspends_transmission(self):
        bus = Fieldbus(1_000_000).enable_dependability(8)
        state = bus.error_state("a")
        state.tec = 128
        state._update(0)
        assert state.state == ERROR_PASSIVE
        drops = {"n": 1}

        def hook(start, frame):
            if drops["n"]:
                drops["n"] -= 1
                return "drop"
            return "ok"

        bus.fault_hook = hook
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        deliveries = bus.process(ms(1))
        frame_t = bus.frame_time_ns(0)
        suspend = SUSPEND_TRANSMISSION_BITS * bus.bit_time_ns
        assert deliveries[0].time == (
            2 * frame_t + bus.error_frame_time_ns + suspend
        )

    def test_bus_off_sender_traffic_deferred_until_recovery(self):
        bus = Fieldbus(1_000_000).enable_dependability(0)
        state = bus.error_state("a")
        for _ in range(32):
            state.on_tx_error(0)
        assert state.bus_off
        recovery = state.bus_off_until
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        assert bus.process(recovery - 1) == []
        assert bus.frames_deferred_bus_off == 1
        deliveries = bus.process(recovery + ms(1))
        assert len(deliveries) == 1
        assert deliveries[0].time == recovery + bus.frame_time_ns(0)
        assert bus.error_state("a").state == ERROR_ACTIVE

    def test_healthy_sender_overtakes_deferred_bus_off_traffic(self):
        bus = Fieldbus(1_000_000).enable_dependability(0)
        state = bus.error_state("a")
        for _ in range(32):
            state.on_tx_error(0)
        recovery = state.bus_off_until
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        bus.queue(0, Frame(can_id=9, size=0, sender="b"))
        deliveries = bus.process(ms(2))
        # b's lower-priority frame goes first (a is off the bus); a's
        # deferred frame follows only once the recovery window elapses.
        assert [d.frame.sender for d in deliveries] == ["b", "a"]
        assert deliveries[1].time >= recovery

    def test_disarmed_bus_matches_seed_behavior(self):
        """With the layer disarmed a drop burns only the frame time --
        the exact seed semantics the PR-1 tests pinned."""
        bus = Fieldbus(1_000_000)
        bus.fault_hook = lambda start, frame: (
            "drop" if start == 0 else "ok"
        )
        bus.queue(0, Frame(can_id=1, size=0))
        bus.queue(0, Frame(can_id=2, size=0))
        deliveries = bus.process(ms(1))
        assert len(deliveries) == 1
        assert deliveries[0].time == 2 * bus.frame_time_ns(0)
        assert bus.error_frames == 0 and bus.frames_retransmitted == 0


# ----------------------------------------------------------------------
# rx bounds + CRC-drop path (satellites a and d)
# ----------------------------------------------------------------------
class TestReceivePath:
    def _pair(self, rx_capacity=64, accept=None, dependability=False):
        cluster = Cluster()
        cluster.add_node("tx", zero_kernel())
        cluster.add_node(
            "rx", zero_kernel(), accept=accept, rx_capacity=rx_capacity
        )
        if dependability:
            # Zero retry bound: these tests pin the receive path itself,
            # not the retransmission loop layered on top of it.
            cluster.enable_dependability(max_retransmits=0)
        return cluster

    def test_rx_capacity_must_be_positive(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            cluster.add_node("n", zero_kernel(), rx_capacity=0)

    def test_overflow_drops_and_counts(self):
        cluster = self._pair(rx_capacity=2)
        rx = cluster.interfaces["rx"]
        # No driver drains rx_queue, so the third delivery overflows.
        for i in range(4):
            cluster.interfaces["tx"].transmit(Frame(can_id=0x10 + i, size=0))
        cluster.run_until(ms(2))
        kernel = cluster.nodes["rx"]
        assert rx.rx_overflowed == 2
        assert len(rx.rx_queue) + len(rx._incoming) == 2
        overflow_notes = notes(kernel.trace, "rx-overflow")
        assert len(overflow_notes) == 2
        assert "rx" in overflow_notes[0][1]

    def test_unbounded_capacity_still_available(self):
        cluster = self._pair(rx_capacity=None)
        for i in range(100):
            cluster.interfaces["tx"].transmit(Frame(can_id=0x10, size=0))
        cluster.run_until(ms(10))
        assert cluster.interfaces["rx"].rx_overflowed == 0

    def test_corrupted_frame_dropped_before_filter_no_interrupt(self):
        """CRC-drop path: counter bumps, trace notes, no interrupt, and
        the REC rises even when the id would have been filtered."""
        cluster = self._pair(accept=[0x99], dependability=True)
        rx = cluster.interfaces["rx"]
        kernel = cluster.nodes["rx"]
        cluster.bus.fault_hook = lambda start, frame: "corrupt"
        # 0x10 is not in rx's acceptance set -- CRC still runs first.
        cluster.interfaces["tx"].transmit(Frame(can_id=0x10, size=0))
        cluster.run_until(ms(2))
        assert rx.frames_crc_dropped == 1
        assert rx.frames_filtered == 0
        assert rx.frames_received == 0
        assert len(rx.rx_queue) == 0 and len(rx._incoming) == 0
        crc_notes = notes(kernel.trace, "frame-crc-dropped")
        assert len(crc_notes) == 1
        assert cluster.bus.error_state("rx").rec == 1
        # The tx side took the TEC hit for the corrupted transmission.
        assert cluster.bus.error_state("tx").tec == 8

    def test_clean_frame_decrements_rec(self):
        cluster = self._pair(dependability=True)
        state = cluster.bus.error_state("rx")
        state.rec = 5
        cluster.interfaces["tx"].transmit(Frame(can_id=0x10, size=0))
        cluster.run_until(ms(2))
        assert state.rec == 4

    def test_crc_drop_under_seeded_fault_plan(self):
        """Satellite d: the FaultInjector's frame_corrupt faults land on
        the CRC-drop path and interact correctly with filters."""
        cluster = self._pair(accept=[0x10], dependability=True)
        kernel = cluster.nodes["tx"]
        plan = FaultPlan(
            (
                Fault(time=0, kind="frame_corrupt"),
                Fault(time=ms(1), kind="frame_drop"),
            )
        )
        FaultInjector(kernel, plan, bus=cluster.bus).install()
        tx = cluster.interfaces["tx"]
        for i in range(3):
            kernel.schedule_event(
                i * ms(1),
                lambda: tx.transmit(Frame(can_id=0x10, size=0)),
                label="tx",
            )
        cluster.run_until(ms(5))
        rx = cluster.interfaces["rx"]
        assert rx.frames_crc_dropped == 1  # the corrupt fault
        assert cluster.bus.frames_dropped >= 1  # the drop fault
        assert rx.frames_received == 1  # only the clean third frame


# ----------------------------------------------------------------------
# replica sequencing + freshness
# ----------------------------------------------------------------------
def _publishing_cluster(
    nodes=3,
    publish_period=ms(10),
    stop_at=None,
    resume_at=None,
    **channel_kwargs,
):
    cluster = Cluster()
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        cluster.add_node(name, zero_kernel())
    channel = GlobalStateChannel(
        cluster, "t", can_id=0x10, writer_node="n0",
        driver_period=publish_period, **channel_kwargs,
    )

    def pub(kern, thread):
        if stop_at is not None and stop_at <= kern.now < (resume_at or 2**62):
            return
        channel.publish(kern, thread, kern.now)

    cluster.nodes["n0"].create_thread(
        "pub", Program([Call(pub)]), period=publish_period,
        deadline=publish_period,
    )
    return cluster, channel


class TestReplicaFreshness:
    def test_sequenced_updates_and_latency(self):
        cluster, channel = _publishing_cluster(sequenced=True)
        cluster.run_until(ms(100))
        status = channel.status("n1")
        assert status.updates > 5
        assert status.gaps == 0 and status.duplicates == 0
        assert 0 < status.latency_max_ns <= ms(11)
        # The replica converged on the writer's last published value.
        assert channel.local_channel("n1").read() is not None

    def test_unsequenced_channel_has_no_status(self):
        cluster, channel = _publishing_cluster()
        cluster.run_until(ms(50))
        assert not channel.sequenced
        assert channel.status_by_node == {}

    def test_gap_detection_on_dropped_frame(self):
        cluster, channel = _publishing_cluster(sequenced=True)
        dropped = {"n": 0}

        def hook(start, frame):
            # Drop exactly the third bus frame.
            dropped["n"] += 1
            return "drop" if dropped["n"] == 3 else "ok"

        cluster.bus.fault_hook = hook
        cluster.run_until(ms(100))
        status = channel.status("n1")
        assert status.gaps == 1
        assert notes(cluster.nodes["n1"].trace, "gs-seq-gap")

    def test_duplicates_are_discarded(self):
        cluster, channel = _publishing_cluster(sequenced=True)
        cluster.run_until(ms(50))
        # Replay sequence 1 from the writer interface.
        cluster.interfaces["n0"].kernel.schedule_event(
            ms(50),
            lambda: cluster.interfaces["n0"].transmit(
                Frame(can_id=0x10, payload=(1, 0, "old"), size=8)
            ),
            label="replay",
        )
        before = channel.local_channel("n1").read()
        cluster.run_until(ms(80))
        status = channel.status("n1")
        assert status.duplicates == 1
        assert channel.local_channel("n1").read() != "old"

    def test_freshness_hold_policy(self):
        cluster, channel = _publishing_cluster(
            stop_at=ms(100), freshness_ns=ms(30), stale_policy="hold",
        )
        cluster.run_until(ms(200))
        status = channel.status("n1")
        assert status.stale
        assert status.stale_count == 1
        assert status.staleness_max_ns > ms(30)
        # hold: the last good value stays readable
        assert channel.local_channel("n1").read() is not None
        assert notes(cluster.nodes["n1"].trace, "gs-stale")

    def test_freshness_invalidate_policy_and_callback(self):
        seen = []
        cluster, channel = _publishing_cluster(
            stop_at=ms(100), freshness_ns=ms(30), stale_policy="invalidate",
            on_stale=lambda node, status: seen.append(node),
        )
        cluster.run_until(ms(200))
        assert channel.status("n1").stale
        assert channel.local_channel("n1").read() is None
        assert sorted(seen) == ["n1", "n2"]

    def test_resync_after_stale_episode(self):
        cluster, channel = _publishing_cluster(
            stop_at=ms(100), resume_at=ms(160), freshness_ns=ms(30),
        )
        cluster.run_until(ms(300))
        status = channel.status("n1")
        assert status.stale_count == 1
        assert status.resyncs == 1
        assert not status.stale
        assert notes(cluster.nodes["n1"].trace, "gs-resync")

    def test_stale_policy_validated(self):
        cluster = Cluster()
        cluster.add_node("n0", zero_kernel())
        cluster.add_node("n1", zero_kernel())
        with pytest.raises(ValueError):
            GlobalStateChannel(
                cluster, "t", can_id=0x10, writer_node="n0",
                freshness_ns=ms(10), stale_policy="explode",
            )


# ----------------------------------------------------------------------
# heartbeat membership
# ----------------------------------------------------------------------
def _hb_cluster(nodes=3, period=ms(10), **kwargs):
    cluster = Cluster()
    for i in range(nodes):
        cluster.add_node(f"n{i}", zero_kernel())
    monitor = HeartbeatMonitor(cluster, period=period, **kwargs)
    return cluster, monitor


class TestMembership:
    def test_all_alive_no_transitions(self):
        cluster, monitor = _hb_cluster()
        cluster.run_until(ms(100))
        assert monitor.changes == 0
        assert monitor.view("n0") == {"n1": True, "n2": True}

    def test_silenced_node_detected_within_two_periods(self):
        period = ms(10)
        cluster, monitor = _hb_cluster(period=period)
        victim = cluster.nodes["n2"]
        crash_at = ms(50)
        victim.schedule_event(
            crash_at, lambda: victim.crash_thread("hb-tx:n2", "test"),
            label="silence",
        )
        cluster.run_until(ms(120))
        downs = [e for e in monitor.events if e[2] == "n2" and e[3] == "down"]
        assert {e[1] for e in downs} == {"n0", "n1"}
        for time, _observer, _peer, _status in downs:
            assert time <= crash_at + 2 * period + monitor.watch_period
        assert monitor.view("n0")["n2"] is False
        assert notes(cluster.nodes["n0"].trace, "membership-down")

    def test_membership_deterministic_across_runs(self):
        def run():
            cluster, monitor = _hb_cluster()
            victim = cluster.nodes["n1"]
            victim.schedule_event(
                ms(40), lambda: victim.crash_thread("hb-tx:n1", "test"),
                label="silence",
            )
            cluster.run_until(ms(150))
            return tuple(monitor.events)

        assert run() == run()

    def test_rejoin_marks_node_up_again(self):
        cluster, monitor = _hb_cluster()
        victim = cluster.nodes["n2"]
        victim.set_restart_policy("hb-tx:n2", max_restarts=1, backoff_ns=ms(30))
        victim.schedule_event(
            ms(50), lambda: victim.crash_thread("hb-tx:n2", "test"),
            label="silence",
        )
        cluster.run_until(ms(200))
        ups = [e for e in monitor.events if e[2] == "n2" and e[3] == "up"]
        assert {e[1] for e in ups} == {"n0", "n1"}
        assert monitor.view("n0")["n2"] is True

    def test_rejoin_triggers_replica_rebroadcast(self):
        cluster, monitor = _hb_cluster()
        channel = GlobalStateChannel(
            cluster, "t", can_id=0x20, writer_node="n0",
            driver_period=ms(10), sequenced=True,
        )
        channel.attach_membership(monitor)

        def pub(kern, thread):
            channel.publish(kern, thread, kern.now)

        cluster.nodes["n0"].create_thread(
            "pub", Program([Call(pub)]), period=ms(10), deadline=ms(10)
        )
        victim = cluster.nodes["n2"]
        victim.set_restart_policy("hb-tx:n2", max_restarts=1, backoff_ns=ms(30))
        victim.schedule_event(
            ms(50), lambda: victim.crash_thread("hb-tx:n2", "test"),
            label="silence",
        )
        cluster.run_until(ms(200))
        assert channel.resync_broadcasts >= 1
        assert notes(cluster.nodes["n0"].trace, "gs-rebroadcast")

    def test_parameter_validation(self):
        cluster = Cluster()
        cluster.add_node("n0", zero_kernel())
        with pytest.raises(ValueError):
            HeartbeatMonitor(cluster, period=0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(cluster, timeout_factor=0.5)
        with pytest.raises(ValueError):
            HeartbeatMonitor(Cluster())


# ----------------------------------------------------------------------
# response-time analysis with the error term
# ----------------------------------------------------------------------
class TestAnalysisErrorTerm:
    def _streams(self):
        return [
            MessageStream("a", can_id=1, size=8, period=ms(5)),
            MessageStream("b", can_id=2, size=8, period=ms(10)),
        ]

    def test_error_term_adds_retry_cost(self):
        bus = Fieldbus(1_000_000)
        base = bus_response_times(self._streams(), bus)
        with_errors = bus_response_times(
            self._streams(), bus, max_retransmits=2
        )
        extra = 2 * (bus.error_frame_time_ns + bus.frame_time_ns(8))
        assert with_errors["a"] == base["a"] + extra

    def test_negative_retransmits_rejected(self):
        with pytest.raises(ValueError):
            bus_response_times(self._streams(), Fieldbus(), max_retransmits=-1)

    def test_zero_term_matches_seed_analysis(self):
        bus = Fieldbus(1_000_000)
        assert bus_response_times(self._streams(), bus) == bus_response_times(
            self._streams(), bus, max_retransmits=0
        )


# ----------------------------------------------------------------------
# metrics plumbing
# ----------------------------------------------------------------------
class TestDependMetrics:
    def test_net_registry_exports_everything(self):
        cluster, channel = _publishing_cluster(sequenced=True)
        cluster.enable_dependability()
        monitor = HeartbeatMonitor(cluster, period=ms(20))
        cluster.run_until(ms(100))
        exported = net_registry(cluster, [channel], monitor).to_dict()
        for name in (
            "bus_frames_delivered_total",
            "can_tec",
            "net_rx_overflow_total",
            "gs_updates_total",
            "membership_changes_total",
        ):
            assert name in exported
        series = exported["gs_updates_total"]["series"]
        assert {s["labels"]["node"] for s in series} == {"n1", "n2"}

    def test_registry_merge_adds_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", node="n").inc(3)
        b.counter("x", node="n").inc(4)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.counter("x", node="n").value == 7
        assert a.gauge("g").value == 9

    def test_collector_registry_source(self):
        kernel = zero_kernel()
        collector = ObsCollector().attach(kernel)
        collector.add_registry_source(
            lambda reg: reg.counter("extra_total").inc(5)
        )
        exported = collector.as_registry().to_dict()
        assert exported["extra_total"]["series"][0]["value"] == 5


# ----------------------------------------------------------------------
# the network chaos harness
# ----------------------------------------------------------------------
class TestNetChaos:
    def test_clean_run_delivers_everything(self):
        result = run_net_chaos(1, ms(300))
        assert result.delivery_ratio == 1.0
        assert result.frames_retransmitted == 0
        assert result.seq_gaps == 0

    def test_retries_restore_full_delivery_under_drops(self):
        result = run_net_chaos(3, ms(400), drop_p=0.1)
        assert result.delivery_ratio == 1.0
        assert result.frames_retransmitted > 0
        assert result.error_frames > 0

    def test_without_retries_ratio_tracks_drop_rate(self):
        result = run_net_chaos(3, ms(400), drop_p=0.1, max_retransmits=0)
        assert result.delivery_ratio < 1.0
        assert result.seq_gaps > 0
        # Roughly 1 - p (loose bound: small-sample Bernoulli).
        assert 0.6 <= result.delivery_ratio <= 0.99

    def test_same_seed_same_signature(self):
        a = run_net_chaos(9, ms(300), drop_p=0.15, corrupt_p=0.05)
        b = run_net_chaos(9, ms(300), drop_p=0.15, corrupt_p=0.05)
        assert a.signature == b.signature
        assert a.membership_events == b.membership_events

    def test_different_seeds_differ(self):
        a = run_net_chaos(1, ms(300), drop_p=0.2)
        b = run_net_chaos(2, ms(300), drop_p=0.2)
        assert a.signature != b.signature

    def test_silence_and_rejoin_timeline(self):
        result = run_net_chaos(
            2, ms(500), silence_node="n2", silence_at=ms(200),
            rejoin_backoff_ns=ms(120),
        )
        downs = [e for e in result.membership_events if e[3] == "down"]
        ups = [e for e in result.membership_events if e[3] == "up"]
        assert {e[1] for e in downs} == {"n0", "n1", "n3"}
        assert {e[1] for e in ups} == {"n0", "n1", "n3"}
        # detection within two heartbeat periods of the silencing
        assert max(e[0] for e in downs) <= ms(200) + 2 * ms(50)
        assert result.rebroadcasts >= 1

    def test_signature_stable_across_worker_counts(self):
        from repro.perf.sweeps import parallel_map

        cases = [(s, 0.1) for s in (1, 2, 3, 4)]
        serial = parallel_map(_chaos_case, cases, workers=1)
        parallel = parallel_map(_chaos_case, cases, workers=2)
        assert [r.signature for r in serial] == [
            r.signature for r in parallel
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_net_chaos(1, ms(100), nodes=1)
        with pytest.raises(ValueError):
            run_net_chaos(1, ms(100), drop_p=0.8, corrupt_p=0.5)
        with pytest.raises(ValueError):
            run_net_chaos(1, ms(100), silence_node="bogus")


def _chaos_case(case):
    """Module-level so parallel_map workers can pickle it."""
    seed, drop_p = case
    return run_net_chaos(seed, ms(200), drop_p=drop_p)
