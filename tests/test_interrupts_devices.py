"""Tests for interrupts, device models, timers, and the syscall facade."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.kernel.devices import AperiodicDevice, PeriodicDevice
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program, StateWrite, Wait
from repro.kernel.syscalls import Syscalls
from repro.timeunits import ms, us


def zero_kernel(**kw):
    return Kernel(EDFScheduler(ZERO_OVERHEAD), **kw)


class TestInterruptController:
    def test_isr_runs_on_interrupt(self):
        k = zero_kernel()
        fired = []
        k.interrupts.register(3, lambda kern, vec: fired.append((kern.now, vec)))
        k.interrupts.raise_interrupt(3, at=ms(2))
        k.run_until(ms(5))
        assert fired == [(ms(2), 3)]

    def test_interrupt_entry_cost_charged(self):
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        k.interrupts.register(1, lambda kern, vec: None)
        k.interrupts.raise_interrupt(1, at=ms(1))
        trace = k.run_until(ms(2))
        assert trace.kernel_time["interrupt"] == model.interrupt_entry_ns

    def test_masked_interrupts_dropped(self):
        k = zero_kernel()
        fired = []
        k.interrupts.register(2, lambda kern, vec: fired.append(vec))
        k.interrupts.mask(2)
        k.interrupts.raise_interrupt(2, at=ms(1))
        k.run_until(ms(2))
        assert fired == []
        assert k.interrupts.dropped_masked == 1
        k.interrupts.unmask(2)
        k.interrupts.raise_interrupt(2, at=ms(3))
        k.run_until(ms(4))
        assert fired == [2]

    def test_user_level_driver_pattern(self):
        """The Figure 1 pattern: ISR signals an event, a user thread
        (the driver) does the real work."""
        k = zero_kernel()
        k.interrupts.register_event_handler(5, "irq5")
        k.create_thread(
            "driver",
            Program([Wait("irq5"), Compute(us(100))]),
            priority=1,
        )
        k.activate("driver")
        k.interrupts.raise_interrupt(5, at=ms(1))
        trace = k.run_until(ms(2))
        job = trace.jobs_of("driver")[0]
        assert job.completion == ms(1) + us(100)

    def test_interrupt_preempts_running_thread(self):
        k = zero_kernel()
        k.interrupts.register_event_handler(7, "irq7")
        k.create_thread("worker", Program([Compute(ms(10))]), period=ms(100))
        k.create_thread(
            "driver", Program([Wait("irq7"), Compute(us(50))]),
            period=ms(100), deadline=ms(2),
        )
        k.interrupts.raise_interrupt(7, at=ms(1))
        trace = k.run_until(ms(5))
        segs = [s for s in trace.segments if s.who == "driver" and s.start >= ms(1)]
        assert segs and segs[0].start == ms(1)


class TestDevices:
    def test_periodic_device_rate(self):
        k = zero_kernel()
        count = []
        k.interrupts.register(1, lambda kern, vec: count.append(kern.now))
        PeriodicDevice(k, "adc", vector=1, period=ms(2))
        k.run_until(ms(11))
        assert count == [0, ms(2), ms(4), ms(6), ms(8), ms(10)]

    def test_periodic_device_jitter_bounded(self):
        k = zero_kernel()
        times = []
        k.interrupts.register(1, lambda kern, vec: times.append(kern.now))
        PeriodicDevice(k, "adc", vector=1, period=ms(2), jitter=us(100), seed=1)
        k.run_until(ms(10))
        for i, t in enumerate(times):
            assert ms(2) * i <= t <= ms(2) * i + us(100)

    def test_periodic_device_validation(self):
        k = zero_kernel()
        with pytest.raises(ValueError):
            PeriodicDevice(k, "bad", vector=1, period=0)
        with pytest.raises(ValueError):
            PeriodicDevice(k, "bad", vector=1, period=10, jitter=10)

    def test_aperiodic_device_explicit_arrivals(self):
        k = zero_kernel()
        seen = []
        k.interrupts.register(4, lambda kern, vec: seen.append(kern.now))
        AperiodicDevice(k, "btn", vector=4, arrivals=[ms(1), ms(3)])
        k.run_until(ms(5))
        assert seen == [ms(1), ms(3)]

    def test_aperiodic_device_sporadic_separation(self):
        k = zero_kernel()
        seen = []
        k.interrupts.register(4, lambda kern, vec: seen.append(kern.now))
        AperiodicDevice(
            k, "net", vector=4, mean_interarrival=ms(1),
            min_interarrival=us(500), seed=3, horizon=ms(50),
        )
        k.run_until(ms(50))
        assert len(seen) > 5
        gaps = [b - a for a, b in zip(seen, seen[1:])]
        assert all(g >= us(500) for g in gaps)

    def test_aperiodic_device_argument_validation(self):
        k = zero_kernel()
        with pytest.raises(ValueError):
            AperiodicDevice(k, "bad", vector=1)
        with pytest.raises(ValueError):
            AperiodicDevice(k, "bad", vector=1, arrivals=[1], mean_interarrival=5)


class TestTimers:
    def test_one_shot_fires_once(self):
        k = zero_kernel()
        fired = []
        k.create_timer("t", ms(3), lambda kern: fired.append(kern.now))
        k.timers["t"].start()
        k.run_until(ms(10))
        assert fired == [ms(3)]

    def test_periodic_timer_rearms(self):
        k = zero_kernel()
        fired = []
        k.create_timer("t", ms(2), lambda kern: fired.append(kern.now), periodic=True)
        k.timers["t"].start()
        k.run_until(ms(9))
        assert fired == [ms(2), ms(4), ms(6), ms(8)]

    def test_cancel(self):
        k = zero_kernel()
        fired = []
        k.create_timer("t", ms(2), lambda kern: fired.append(kern.now))
        k.timers["t"].start()
        k.timers["t"].cancel()
        k.run_until(ms(5))
        assert fired == []
        assert not k.timers["t"].armed

    def test_double_start_rejected(self):
        k = zero_kernel()
        k.create_timer("t", ms(2), lambda kern: None)
        k.timers["t"].start()
        with pytest.raises(RuntimeError):
            k.timers["t"].start()

    def test_custom_first_delay(self):
        k = zero_kernel()
        fired = []
        k.create_timer("t", ms(5), lambda kern: fired.append(kern.now), periodic=True)
        k.timers["t"].start(delay=ms(1))
        k.run_until(ms(8))
        assert fired == [ms(1), ms(6)]


class TestSyscallsFacade:
    def test_get_time_charges_and_counts(self):
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        sys = Syscalls(k)
        t = sys.get_time()
        assert t == k.now
        assert sys.counts["get_time"] == 1
        assert k.trace.kernel_time["syscall"] == model.syscall_ns

    def test_signal_event(self):
        k = zero_kernel()
        k.create_event("E")
        sys = Syscalls(k)
        assert sys.signal_event("E") == 0
        assert k.events_by_name["E"].pending

    def test_state_write_and_read(self):
        k = zero_kernel()
        k.create_channel("c", slots=3)
        sys = Syscalls(k)
        sys.state_write("c", 99)
        assert sys.state_read("c") == 99

    def test_activate_thread(self):
        k = zero_kernel()
        k.create_thread("ap", Program([Compute(us(10))]), priority=1)
        sys = Syscalls(k)
        sys.activate_thread("ap")
        trace = k.run_until(ms(1))
        assert len(trace.jobs_of("ap")) == 1

    def test_raise_interrupt(self):
        k = zero_kernel()
        hits = []
        k.interrupts.register(9, lambda kern, vec: hits.append(vec))
        sys = Syscalls(k)
        sys.raise_interrupt(9)
        k.run_until(ms(1))
        assert hits == [9]
