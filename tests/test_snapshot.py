"""Checkpoint/restore snapshots: byte-identity is the contract.

Every test here pins the same invariant from a different angle: a
sweep point restored from a shared-prefix snapshot (fork or deepcopy)
must be **byte-identical** to cold-starting that point -- full-record
trace signatures, metrics exports, membership timelines, everything.
The graceful-degradation paths (``REPRO_SNAPSHOT=0``, no ``os.fork``)
must produce the same bytes too, just slower.
"""

import copy

import pytest

from repro.faults.chaos import (
    chaos_continue,
    chaos_prefix,
    net_chaos_continue,
    net_chaos_prefix,
    run_chaos,
    run_net_chaos,
)
from repro.net.cluster import CLUSTER_WORKERS_ENV
from repro.perf import snapshot as snapshot_mod
from repro.perf.snapshot import (
    SNAPSHOT_ENV,
    SnapshotCache,
    SnapshotError,
    SnapshotServer,
    deep_snapshot,
    fork_available,
    resolve_snapshot_mode,
)
from repro.perf.sweeps import PrefixSpec, prefix_map
from repro.sim.engine import EventQueue
from repro.timeunits import ms

requires_fork = pytest.mark.skipif(
    not fork_available(), reason="os.fork unavailable"
)

MODES = [pytest.param("fork", marks=requires_fork), "deepcopy"]

DUR = ms(300)
WARM = ms(225)
SEEDS = (1, 2)
RATES = (5.0, 50.0)


def _chaos_cold(rate, seed):
    return run_chaos(
        seed,
        DUR,
        wcet_overrun_rate=rate,
        crash_rate=rate / 10,
        clock_jitter_rate=rate / 2,
        faults_from=WARM,
    )


def _chaos_plan(case):
    rate, seed = case
    spec = PrefixSpec(
        key=("chaos", WARM),
        t_split=WARM,
        build=lambda: chaos_prefix(True, t_split=WARM),
    )

    def continuation(kernel):
        return chaos_continue(
            kernel,
            seed,
            DUR,
            wcet_overrun_rate=rate,
            crash_rate=rate / 10,
            clock_jitter_rate=rate / 2,
            faults_from=WARM,
        )

    return spec, continuation


class TestChaosEquality:
    """Kernel fault sweeps: restored == cold, across seeds and modes."""

    @pytest.mark.parametrize("mode", MODES)
    def test_restored_points_equal_cold(self, mode):
        cases = [(rate, seed) for rate in RATES for seed in SEEDS]
        cold = [_chaos_cold(rate, seed) for rate, seed in cases]
        restored = prefix_map(_chaos_plan, cases, mode=mode)
        assert restored == cold
        for a, b in zip(cold, restored):
            assert a.trace_signature == b.trace_signature
            assert a.trace_signature  # non-trivial signature

    def test_zero_rate_pause_is_pure_chunking(self):
        """With no faults, the warm-up pause is just a chunked run:
        the signature must match the single-run reference exactly."""
        paused = run_chaos(1, DUR, faults_from=WARM)
        reference = run_chaos(1, DUR)
        assert paused.trace_signature == reference.trace_signature

    @pytest.mark.parametrize("mode", MODES)
    def test_metrics_exports_identical(self, mode):
        """The observability collector survives the snapshot: JSON and
        Prometheus exports of a restored run match the cold run
        byte-for-byte."""

        def plan(case):
            (seed,) = case
            spec = PrefixSpec(
                key=("chaos-obs", WARM),
                t_split=WARM,
                build=lambda: chaos_prefix(True, t_split=WARM, obs="full"),
            )

            def continuation(kernel):
                result = chaos_continue(
                    kernel, seed, DUR,
                    wcet_overrun_rate=20.0, faults_from=WARM,
                )
                return (
                    result,
                    kernel.obs.metrics_json(),
                    kernel.obs.metrics_prometheus(),
                )

            return spec, continuation

        def cold(seed):
            kernel = chaos_prefix(True, t_split=WARM, obs="full")
            result = chaos_continue(
                kernel, seed, DUR, wcet_overrun_rate=20.0, faults_from=WARM
            )
            return (
                result,
                kernel.obs.metrics_json(),
                kernel.obs.metrics_prometheus(),
            )

        cases = [(seed,) for seed in SEEDS]
        expected = [cold(seed) for (seed,) in cases]
        restored = prefix_map(plan, cases, mode=mode)
        assert restored == expected


class TestNetChaosEquality:
    """Cluster sweeps: membership timelines included, all worker counts."""

    NET = dict(
        dependability=True,
        max_retransmits=8,
        silence_node="n2",
        silence_at=ms(120),
        rejoin_backoff_ns=ms(100),
    )
    NET_DUR = ms(400)
    NET_WARM = ms(100)

    def _plan(self, case):
        drop_p, seed = case
        spec = PrefixSpec(
            key=("netchaos", self.NET_DUR, self.NET_WARM),
            t_split=self.NET_WARM,
            build=lambda: net_chaos_prefix(
                self.NET_DUR, t_split=self.NET_WARM, **self.NET
            ),
        )

        def continuation(state):
            return net_chaos_continue(
                state, seed, drop_p=drop_p, faults_from=self.NET_WARM
            )

        return spec, continuation

    @pytest.mark.parametrize("workers", ["0", "2"])
    @pytest.mark.parametrize("mode", MODES)
    def test_restored_cluster_equal_cold(self, mode, workers, monkeypatch):
        monkeypatch.setenv(CLUSTER_WORKERS_ENV, workers)
        cases = [(drop_p, seed) for drop_p in (0.15,) for seed in SEEDS]
        cold = [
            run_net_chaos(
                seed,
                self.NET_DUR,
                drop_p=drop_p,
                faults_from=self.NET_WARM,
                **self.NET,
            )
            for drop_p, seed in cases
        ]
        restored = prefix_map(self._plan, cases, mode=mode)
        assert restored == cold
        for a, b in zip(cold, restored):
            assert a.signature == b.signature
            assert a.membership_events == b.membership_events
            # The silenced node must actually exercise the timeline.
            assert a.membership_events


class TestDeepSnapshot:
    """The closure-aware deepcopy that makes in-process snapshots safe."""

    def _queue_with_closure(self):
        counts = {"fired": 0}
        queue = EventQueue()

        def action():
            counts["fired"] += 1

        queue.schedule(10, action, label="closure")
        return queue, counts

    def test_copy_fires_without_touching_original(self):
        queue, counts = self._queue_with_closure()
        snap = deep_snapshot({"queue": queue, "counts": counts})
        event = snap["queue"].pop_due(10)
        event.action()
        assert snap["counts"]["fired"] == 1
        assert counts["fired"] == 0

    def test_stdlib_deepcopy_shares_closures(self):
        """The hazard deep_snapshot exists for: stdlib deepcopy treats
        functions as atomic, so a copied event mutates the ORIGINAL."""
        queue, counts = self._queue_with_closure()
        clone = copy.deepcopy({"queue": queue, "counts": counts})
        event = clone["queue"].pop_due(10)
        event.action()
        assert counts["fired"] == 1  # leaked through the shared closure
        assert clone["counts"]["fired"] == 0


class TestSnapshotCache:
    def test_hits_misses_and_private_copies(self):
        built = []

        def build():
            built.append(1)
            return {"clock": 225, "log": []}

        cache = SnapshotCache(capacity=2)
        first = cache.restore("cfg-a", 225, build)
        second = cache.restore("cfg-a", 225, build)
        assert len(built) == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert first == second and first is not second
        # Restored copies are private: mutating one leaks nowhere.
        first["log"].append("x")
        assert cache.restore("cfg-a", 225, build)["log"] == []

        cache.restore("cfg-b", 225, build)
        assert len(built) == 2  # different config hash = different master
        cache.restore("cfg-a", 300, build)
        assert len(built) == 3  # different split point too
        assert len(cache) == 2  # FIFO eviction held capacity

        cache.clear()
        assert len(cache) == 0
        cache.restore("cfg-a", 225, build)
        assert len(built) == 4


class TestGracefulDegradation:
    """``REPRO_SNAPSHOT=0`` and fork-less platforms fall back to cold
    runs transparently -- same results, no snapshot machinery."""

    def _poison_server(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("SnapshotServer constructed in cold mode")

        monkeypatch.setattr(snapshot_mod, "SnapshotServer", boom)

    def test_env_zero_disables_snapshots(self, monkeypatch):
        monkeypatch.setenv(SNAPSHOT_ENV, "0")
        self._poison_server(monkeypatch)
        cases = [(rate, seed) for rate in (50.0,) for seed in SEEDS]
        cold = [_chaos_cold(rate, seed) for rate, seed in cases]
        assert prefix_map(_chaos_plan, cases) == cold

    def test_auto_without_fork_degrades_to_cold(self, monkeypatch):
        monkeypatch.setenv(SNAPSHOT_ENV, "auto")
        monkeypatch.setattr(snapshot_mod, "fork_available", lambda: False)
        self._poison_server(monkeypatch)
        assert resolve_snapshot_mode() == "cold"
        assert resolve_snapshot_mode("fork") == "cold"
        cases = [(rate, seed) for rate in (5.0,) for seed in SEEDS]
        cold = [_chaos_cold(rate, seed) for rate, seed in cases]
        assert prefix_map(_chaos_plan, cases) == cold

    def test_single_member_groups_run_cold(self, monkeypatch):
        """A prefix shared by nobody is not worth a server."""
        self._poison_server(monkeypatch)
        cases = [(5.0, 1)]
        assert prefix_map(_chaos_plan, cases, mode="fork") == [
            _chaos_cold(5.0, 1)
        ]


class TestSnapshotServer:
    @requires_fork
    def test_continuation_error_propagates(self):
        def bad_continuation(state):
            raise ValueError("boom in child")

        server = SnapshotServer(lambda: {"t": 0}, [bad_continuation])
        with pytest.raises(SnapshotError, match="boom in child"):
            server.ready()
            server.results()
        server.close()

    @requires_fork
    def test_children_see_private_state(self):
        """Copy-on-write isolation: every child mutates its own copy."""

        def continuation(state):
            state["log"].append(state["who"])
            state["who"] += 1
            return (state["who"], tuple(state["log"]))

        with SnapshotServer(
            lambda: {"who": 0, "log": []}, [continuation] * 3
        ) as server:
            assert server.ready() >= 0.0
            results = server.results()
        assert results == [(1, (0,)), (1, (0,)), (1, (0,))]


class TestResolveMode:
    def test_env_spellings(self, monkeypatch):
        expected_auto = "fork" if fork_available() else "cold"
        for raw, want in (
            ("", expected_auto),
            ("1", expected_auto),
            ("on", expected_auto),
            ("auto", expected_auto),
            ("0", "cold"),
            ("off", "cold"),
            ("cold", "cold"),
            ("deepcopy", "deepcopy"),
        ):
            monkeypatch.setenv(SNAPSHOT_ENV, raw)
            assert resolve_snapshot_mode() == want, raw

    def test_invalid_values_rejected(self, monkeypatch):
        monkeypatch.setenv(SNAPSHOT_ENV, "banana")
        with pytest.raises(ValueError, match="REPRO_SNAPSHOT"):
            resolve_snapshot_mode()
        with pytest.raises(ValueError, match="unknown snapshot mode"):
            resolve_snapshot_mode("banana")
