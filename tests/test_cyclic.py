"""Tests for the cyclic time-slice executive baseline (Section 5 intro)."""

import pytest

from repro.core.cyclic import (
    CyclicScheduleError,
    TABLE_ENTRY_BYTES,
    build_cyclic_schedule,
)
from repro.core.task import TaskSpec, Workload, table2_workload
from repro.timeunits import ms


def wl(*pairs_ms):
    return Workload(
        TaskSpec(name=f"t{i}", period=ms(p), wcet=ms(c))
        for i, (p, c) in enumerate(pairs_ms)
    )


class TestConstruction:
    def test_harmonic_workload_schedules(self):
        schedule = build_cyclic_schedule(wl((10, 2), (20, 5), (40, 10)))
        assert schedule.hyperperiod == ms(40)
        assert schedule.frame <= ms(10)
        assert schedule.hyperperiod % schedule.frame == 0

    def test_every_job_fully_scheduled(self):
        w = wl((10, 3), (20, 4))
        schedule = build_cyclic_schedule(w)
        total = {t.name: 0 for t in w}
        for s in schedule.slices:
            total[s.task] += s.duration
        assert total["t0"] == 2 * ms(3)  # two jobs per hyperperiod
        assert total["t1"] == ms(4)

    def test_frames_never_overflow(self):
        schedule = build_cyclic_schedule(wl((10, 4), (20, 6), (40, 4)))
        for busy in schedule.frame_utilizations():
            assert busy <= schedule.frame

    def test_slices_respect_release_and_deadline(self):
        w = wl((10, 2), (20, 5))
        schedule = build_cyclic_schedule(w)
        specs = {t.name: t for t in w}
        progress = {}
        for s in sorted(schedule.slices, key=lambda s: s.frame):
            spec = specs[s.task]
            job_index = progress.get(s.task, 0)
            start = s.frame * schedule.frame
            assert start + schedule.frame <= schedule.hyperperiod + schedule.frame

    def test_overutilized_rejected(self):
        with pytest.raises(CyclicScheduleError):
            build_cyclic_schedule(wl((10, 6), (20, 10)))

    def test_empty_rejected(self):
        with pytest.raises(CyclicScheduleError):
            build_cyclic_schedule(Workload([]))

    def test_explicit_frame_must_divide(self):
        with pytest.raises(CyclicScheduleError):
            build_cyclic_schedule(wl((10, 2), (20, 2)), frame=ms(3))

    def test_table_bytes(self):
        schedule = build_cyclic_schedule(wl((10, 2), (20, 5)))
        assert schedule.table_bytes == schedule.table_entries * TABLE_ENTRY_BYTES


class TestPaperClaims:
    def test_relatively_prime_periods_blow_up_the_table(self):
        """Section 5: 'relatively prime periods result in very large
        time-slice schedules, wasting scarce memory resources'."""
        harmonic = build_cyclic_schedule(wl((10, 1), (20, 2), (40, 2)))
        prime = build_cyclic_schedule(wl((7, 1), (11, 1), (13, 1)))
        # Hyperperiod 7*11*13 = 1001 ms vs 40 ms.
        assert prime.hyperperiod == ms(1001)
        assert prime.table_entries > 20 * harmonic.table_entries

    def test_infeasible_tables_rejected_outright(self):
        """Long, relatively prime periods can push the table past any
        small-memory budget; the builder refuses."""
        w = wl((9.97, 0.5), (11.19, 0.5), (13.01, 0.5), (17.03, 0.5))
        with pytest.raises(CyclicScheduleError):
            build_cyclic_schedule(w)

    def test_aperiodic_response_worse_than_priority_scheduling(self):
        """Section 5: aperiodic tasks get poor response because their
        arrival cannot be anticipated offline.  Under a (high) priority
        scheduler the same job would be served almost immediately."""
        w = wl((10, 4), (20, 8))  # U = 0.8: frames are mostly busy
        schedule = build_cyclic_schedule(w)
        response = schedule.worst_case_aperiodic_response(ms(2))
        assert response is not None
        # A priority scheduler serves it in ~2 ms (plus preemption of
        # lower tasks); the cyclic executive needs several frames.
        assert response > ms(4)

    def test_aperiodic_response_unbounded_at_full_utilization(self):
        w = wl((10, 5), (20, 10))  # U = 1: zero slack
        schedule = build_cyclic_schedule(w)
        assert schedule.worst_case_aperiodic_response(ms(1)) is None

    def test_table2_workload_feasible_under_cyclic_but_huge(self):
        """The Table 2 workload is EDF-feasible, and its cyclic table
        (if one exists) is enormous compared to priority scheduling's
        O(n) task table."""
        try:
            schedule = build_cyclic_schedule(table2_workload())
        except CyclicScheduleError:
            return  # also an acceptable outcome: no legal frame
        assert schedule.table_entries > 10 * len(table2_workload())
