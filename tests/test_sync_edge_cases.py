"""Edge cases of the Section 6 semaphore machinery.

Covers the paths the paper calls out explicitly:

* "T3 becomes T1's place-holder and T2 is simply put back to its
  original position" (end of Section 6.2) -- a second, higher-priority
  donor arriving while a swap is in place;
* nested semaphore holds with donors on both;
* parked threads as PI donors;
* the registry only arming when the parser proves a thread can block
  while holding the semaphore.
"""

import pytest

from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.rm import RMScheduler
from repro.kernel.kernel import Kernel
from repro.kernel.program import Acquire, Compute, Program, Release, Wait
from repro.timeunits import ms, us


def fp_kernel(scheme="emeralds", model=None):
    return Kernel(RMScheduler(model or ZERO_OVERHEAD), sem_scheme=scheme)


class TestPlaceholderReplacement:
    def build(self):
        """T1 (lowest) holds S; T2 then T3 (highest) block on it."""
        k = fp_kernel(model=OverheadModel())
        k.create_semaphore("S")
        k.create_event("E2")
        k.create_event("E3")
        k.create_thread(
            "T1",
            Program([Acquire("S"), Compute(ms(2)), Release("S"), Compute(us(10))]),
            period=ms(400),
        )
        k.create_thread(
            "T2",
            Program([Wait("E2"), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(200),
        )
        k.create_thread(
            "T3",
            Program([Wait("E3"), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(100),
        )

        def fire(event):
            return lambda kern: kern.events_by_name[event].signal(kern)

        k.create_timer("e2", us(200), fire("E2"))
        k.create_timer("e3", us(600), fire("E3"))
        for t in k.timers.values():
            t.start()
        return k

    def test_second_donor_replaces_placeholder(self):
        k = self.build()
        # Run past both events but before T1 releases.
        k.run_until(ms(1))
        t1, t2, t3 = k.threads["T1"], k.threads["T2"], k.threads["T3"]
        sem = k.semaphores["S"]
        assert sem.holder is t1
        # T3 (higher priority) must be the current place-holder.
        assert t1.pi_donor_of == "T3"
        # T1 occupies T3's priority slot.
        assert t1.effective_key == t3.base_key
        # T2 is back at its own position.
        assert t2.effective_key == t2.base_key
        k.scheduler.check_invariants()

    def test_everything_restored_after_release(self):
        k = self.build()
        trace = k.run_until(ms(20))
        for name in ("T1", "T2", "T3"):
            t = k.threads[name]
            assert t.effective_key == t.base_key
            assert t.pi_donor_of is None
        assert not k.semaphores["S"].locked
        k.scheduler.check_invariants()
        assert not trace.deadline_violations(k.now)

    def test_wakeup_order_respects_priority(self):
        """When T1 releases, T3 must get the lock before T2."""
        k = self.build()
        trace = k.run_until(ms(20))
        t2_done = trace.jobs_of("T2")[0].completion
        t3_done = trace.jobs_of("T3")[0].completion
        assert t3_done < t2_done


class TestNestedHolds:
    def test_holder_of_two_contended_sems_keeps_highest_donation(self):
        """T1 holds S1 and S2; a donor blocks on each.  Releasing one
        must leave the other donation in force."""
        k = fp_kernel(scheme="standard")
        k.create_semaphore("S1")
        k.create_semaphore("S2")
        k.create_event("E")
        k.create_thread(
            "T1",
            Program(
                [Acquire("S1"), Acquire("S2"), Compute(ms(2)),
                 Release("S2"), Compute(ms(1)), Release("S1")]
            ),
            period=ms(400),
        )
        k.create_thread(
            "mid",
            Program([Wait("E"), Acquire("S2"), Compute(us(10)), Release("S2")]),
            period=ms(200),
        )
        k.create_thread(
            "high",
            Program([Wait("E"), Acquire("S1"), Compute(us(10)), Release("S1")]),
            period=ms(100),
        )
        k.create_timer("e", us(300), lambda kern: kern.events_by_name["E"].signal(kern))
        k.timers["e"].start()
        # Run until T1 released S2 but still holds S1.
        k.run_until(ms(2) + us(500))
        t1 = k.threads["T1"]
        assert "S1" in t1.held_sems and "S2" not in t1.held_sems
        # The "high" donor (blocked on S1) must still be in force.
        assert t1.effective_key == k.threads["high"].base_key
        trace = k.run_until(ms(50))
        assert t1.effective_key == t1.base_key
        assert not trace.deadline_violations(k.now)

    def test_emeralds_nested_holds_with_swaps(self):
        """Same scenario under the EMERALDS scheme: the swap machinery
        plus recompute must cooperate."""
        k = fp_kernel(scheme="emeralds", model=OverheadModel())
        k.create_semaphore("S1")
        k.create_semaphore("S2")
        k.create_event("E")
        k.create_thread(
            "T1",
            Program(
                [Acquire("S1"), Acquire("S2"), Compute(ms(2)),
                 Release("S2"), Compute(ms(1)), Release("S1")]
            ),
            period=ms(400),
        )
        k.create_thread(
            "mid",
            Program([Wait("E"), Acquire("S2"), Compute(us(10)), Release("S2")]),
            period=ms(200),
        )
        k.create_thread(
            "high",
            Program([Wait("E"), Acquire("S1"), Compute(us(10)), Release("S1")]),
            period=ms(100),
        )
        k.create_timer("e", us(300), lambda kern: kern.events_by_name["E"].signal(kern))
        k.timers["e"].start()
        trace = k.run_until(ms(50))
        k.scheduler.check_invariants()
        for name in ("T1", "mid", "high"):
            t = k.threads[name]
            assert t.effective_key == t.base_key
            assert t.pi_donor_of is None
        assert not trace.deadline_violations(k.now)


class TestParkedDonors:
    def test_parked_thread_donates_priority(self):
        """A parked thread is a PI donor: the holder must run at the
        parked thread's priority until release."""
        k = fp_kernel(scheme="emeralds", model=OverheadModel())
        k.create_semaphore("S")
        k.create_event("E")
        k.create_thread(
            "holder",
            Program([Acquire("S"), Compute(ms(2)), Release("S")]),
            period=ms(400),
        )
        k.create_thread(
            "parker",
            Program([Wait("E"), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(100),
        )
        k.create_timer("e", us(200), lambda kern: kern.events_by_name["E"].signal(kern))
        k.timers["e"].start()
        k.run_until(ms(1))
        holder = k.threads["holder"]
        sem = k.semaphores["S"]
        assert sem.parks == 1
        assert holder in (sem.holder,)
        assert holder.effective_key == k.threads["parker"].base_key
        assert k.threads["parker"] in sem.donor_threads()


class TestRegistryGating:
    def test_registry_off_for_safe_semaphores(self):
        """Nobody blocks while holding S -> the parser disarms the
        registry entirely."""
        k = fp_kernel(scheme="emeralds")
        sem = k.create_semaphore("S")
        k.create_thread(
            "t",
            Program([Wait("E"), Acquire("S"), Compute(us(10)), Release("S")]),
            period=ms(10),
        )
        k.create_event("E")
        assert sem.registry_enabled is False

    def test_registry_on_when_blocking_while_holding(self):
        k = fp_kernel(scheme="emeralds")
        sem = k.create_semaphore("S")
        k.create_event("E")
        k.create_thread(
            "t",
            Program([Acquire("S"), Wait("E"), Release("S")]),
            period=ms(10),
        )
        assert sem.registry_enabled is True

    def test_registry_armed_even_if_thread_created_first(self):
        """Order independence: thread first, semaphore second."""
        k = fp_kernel(scheme="emeralds")
        k.create_event("E")
        k.create_thread(
            "t",
            Program([Acquire("S"), Wait("E"), Release("S")]),
            period=ms(10),
        )
        sem = k.create_semaphore("S")
        assert sem.registry_enabled is True

    def test_parser_flags_nested_acquires(self):
        from repro.sync.parser import held_across_blocking

        p = Program([Acquire("outer"), Acquire("inner"), Release("inner"),
                     Release("outer")])
        assert held_across_blocking(p) == {"outer"}

    def test_parser_flags_period_boundary_carryover(self):
        from repro.sync.parser import held_across_blocking

        p = Program([Acquire("S"), Compute(us(10))])  # never released!
        assert "S" in held_across_blocking(p)

    def test_parser_cvwait_releases_own_mutex(self):
        from repro.kernel.program import CvWait
        from repro.sync.parser import held_across_blocking

        p = Program(
            [Acquire("m"), Acquire("other"), CvWait("cv", "m"),
             Release("other"), Release("m")]
        )
        flagged = held_across_blocking(p)
        # 'other' is held across the cv wait; nested acquire also flags 'm'.
        assert "other" in flagged
