"""Fault injection and kernel overload protection.

Covers the extension subsystem (beyond the paper): seeded fault plans,
the injector's seven fault kinds, per-job execution budgets with their
four actions, deadline-miss handlers firing at miss time, bounded
restart with exponential back-off, CSD overload shedding, and the
determinism guarantee (same seed + same plan = byte-identical traces).
"""

import pytest

from repro.core.csd import CSDScheduler
from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.faults import Fault, FaultInjector, FaultPlan
from repro.faults.chaos import run_chaos
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.program import Acquire, Compute, Program, Release
from repro.net import Fieldbus, Frame
from repro.timeunits import ms, us


def zero_kernel(scheduler=None):
    return Kernel(scheduler=scheduler or EDFScheduler(ZERO_OVERHEAD))


def notes_of(trace, kind):
    return [(t, d) for (t, k, d) in trace.events if k == kind]


class TestFaultPlan:
    def test_plans_sort_and_compare(self):
        a = Fault(ms(5), "crash", "w")
        b = Fault(ms(1), "wcet_overrun", "w", 100)
        plan = FaultPlan([a, b])
        assert plan.faults == (b, a)
        assert plan == FaultPlan([b, a])
        assert len(plan) == 2
        assert plan.by_kind("crash") == (a,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Fault(-1, "crash")
        with pytest.raises(ValueError):
            Fault(0, "meteor_strike")
        with pytest.raises(ValueError):
            Fault(0, "crash", magnitude=-5)
        with pytest.raises(ValueError):
            FaultPlan.generate(1, 0)
        with pytest.raises(ValueError):
            # a thread-targeted rate with no threads to hit
            FaultPlan.generate(1, ms(100), crash_rate=1.0)

    def test_generation_is_deterministic(self):
        kwargs = dict(
            threads=["a", "b"],
            vectors=[3, 7],
            wcet_overrun_rate=20.0,
            crash_rate=5.0,
            spurious_irq_rate=10.0,
            dropped_irq_rate=5.0,
            clock_jitter_rate=10.0,
            frame_drop_rate=5.0,
            frame_corrupt_rate=5.0,
        )
        p1 = FaultPlan.generate(9, ms(500), **kwargs)
        p2 = FaultPlan.generate(9, ms(500), **kwargs)
        p3 = FaultPlan.generate(10, ms(500), **kwargs)
        assert p1.signature() == p2.signature()
        assert p1.signature() != p3.signature()
        assert len(p1) > 0

    def test_kind_streams_are_independent(self):
        """Adding a second fault kind must not perturb the first one's
        arrival times (per-kind RNG streams)."""
        solo = FaultPlan.generate(3, ms(500), threads=["a"], crash_rate=10.0)
        mixed = FaultPlan.generate(
            3, ms(500), threads=["a"], crash_rate=10.0, clock_jitter_rate=50.0
        )
        assert solo.by_kind("crash") == mixed.by_kind("crash")


class TestWcetOverrun:
    def test_overrun_stretches_the_compute(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        plan = FaultPlan([Fault(ms(10), "wcet_overrun", "t", ms(3))])
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(30))
        jobs = trace.jobs_of("t")
        assert jobs[0].completion == ms(1)  # before the fault: nominal
        assert jobs[1].completion == ms(14)  # 10 + (1 + 3)
        assert notes_of(trace, "fault-wcet-overrun") == [(ms(10), f"t +{ms(3)}")]

    def test_two_pending_overruns_add_up(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(20))
        # Both pending when the job-2 compute starts at 20 ms: their
        # magnitudes stack onto the same op.
        plan = FaultPlan(
            [
                Fault(ms(15), "wcet_overrun", "t", ms(2)),
                Fault(ms(18), "wcet_overrun", "t", ms(3)),
            ]
        )
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(40))
        assert trace.jobs_of("t")[1].completion == ms(26)  # 20 + 1 + 2 + 3

    def test_double_install_rejected(self):
        k = zero_kernel()
        injector = FaultInjector(k, FaultPlan())
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()


class TestBudgets:
    def make(self, action):
        k = zero_kernel()
        k.create_thread("hog", Program([Compute(ms(8))]), period=ms(10))
        k.set_budget("hog", ms(3), action=action)
        if action == "restart":
            k.set_restart_policy("hog", max_restarts=5, backoff_ns=0)
        return k

    def test_validation(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        with pytest.raises(KernelError):
            k.set_budget("t", 0)
        with pytest.raises(KernelError):
            k.set_budget("t", ms(1), action="explode")
        with pytest.raises(KernelError):
            k.set_restart_policy("t", -1)

    def test_warn_keeps_running(self):
        k = self.make("warn")
        trace = k.run_until(ms(10))
        assert trace.jobs_of("hog")[0].completion == ms(8)
        overruns = notes_of(trace, "budget-overrun")
        assert overruns == [(ms(3), "hog job 1 action=warn")]  # once per job

    def test_suspend_job_fires_at_exhaustion_instant(self):
        k = self.make("suspend_job")
        trace = k.run_until(ms(25))
        aborted = notes_of(trace, "job-aborted")
        # Every job dies exactly one budget after its release.
        assert aborted == [(ms(3), "hog"), (ms(13), "hog"), (ms(23), "hog")]
        assert all(j.aborted for j in trace.jobs_of("hog"))
        assert k.threads["hog"].jobs_aborted == 3
        assert not k.threads["hog"].dead

    def test_kill_removes_the_thread(self):
        k = self.make("kill")
        trace = k.run_until(ms(25))
        assert k.threads["hog"].dead
        assert len(trace.jobs_of("hog")) == 1
        assert notes_of(trace, "kill") == [(ms(3), "hog")]

    def test_restart_applies_the_policy(self):
        k = self.make("restart")
        trace = k.run_until(ms(25))
        assert not k.threads["hog"].dead
        assert k.threads["hog"].restart_count == 3
        assert len(notes_of(trace, "restart")) == 3

    def test_budget_frees_the_cpu_for_others(self):
        """The whole point: a runaway job cannot eat another task's
        slack once its budget aborts it."""
        k = zero_kernel()
        k.create_thread("victim", Program([Compute(ms(2))]), period=ms(10))
        k.create_thread("hog", Program([Compute(ms(30))]), period=ms(20))
        k.set_budget("hog", ms(5), action="suspend_job")
        trace = k.run_until(ms(100))
        assert not [
            j for j in trace.deadline_violations(k.now) if j.thread == "victim"
        ]

    def test_budget_spans_preemptions(self):
        """The budget meters accumulated execution, not wall time: a
        preempted job's clock stops while it is off the CPU."""
        k = zero_kernel()
        # urgent preempts long repeatedly (shorter deadline); long's
        # budget still only counts its own execution.
        k.create_thread("urgent", Program([Compute(ms(1))]), period=ms(5))
        k.create_thread("long", Program([Compute(ms(6))]), period=ms(40))
        k.set_budget("long", ms(8), action="suspend_job")
        trace = k.run_until(ms(40))
        job = trace.jobs_of("long")[0]
        assert not job.aborted  # 6 ms of work fits an 8 ms budget
        assert job.completion is not None


class TestDeadlineMissHandlers:
    def test_handler_fires_at_the_miss_instant(self):
        k = zero_kernel()
        k.create_thread("slow", Program([Compute(ms(15))]), period=ms(10))
        fired = []
        k.on_deadline_miss(
            "slow", lambda kern, thread, rec: fired.append((kern.now, rec.deadline))
        )
        k.run_until(ms(12))
        assert fired == [(ms(10), ms(10))]  # at the deadline, not at completion
        assert k.threads["slow"].miss_count == 1

    def test_no_false_positive_on_time(self):
        k = zero_kernel()
        k.create_thread("fine", Program([Compute(ms(1))]), period=ms(10))
        fired = []
        k.on_deadline_miss("fine", lambda *a: fired.append(a))
        k.run_until(ms(100))
        assert fired == []
        assert k.threads["fine"].miss_count == 0

    def test_handler_can_react_on_the_timeline(self):
        """A handler that crashes the offender at miss time: the
        overload ends mid-run, not post-hoc."""
        k = zero_kernel()
        k.create_thread("victim", Program([Compute(ms(2))]), period=ms(10))
        k.create_thread("hog", Program([Compute(ms(50))]), period=ms(20))
        k.set_restart_policy("hog", max_restarts=0)

        def put_down(kern, thread, record):
            kern.crash_thread(thread.name, reason="miss handler")

        k.on_deadline_miss("hog", put_down)
        trace = k.run_until(ms(100))
        assert k.threads["hog"].dead
        # The victim only suffers until the hog's first deadline.
        late = [
            j
            for j in trace.deadline_violations(k.now)
            if j.thread == "victim" and j.release > ms(20)
        ]
        assert not late

    def test_requires_a_deadline(self):
        k = zero_kernel()
        k.create_thread("free", Program([Compute(ms(1))]), priority=1)
        with pytest.raises(KernelError):
            k.on_deadline_miss("free", lambda *a: None)


class TestCrashAndRestart:
    def test_crash_without_policy_kills(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        plan = FaultPlan([Fault(ms(5), "crash", "t")])
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(50))
        assert k.threads["t"].dead
        assert len(trace.jobs_of("t")) == 1

    def test_bounded_restart_with_exponential_backoff(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(5))
        k.set_restart_policy("t", max_restarts=2, backoff_ns=ms(3))
        plan = FaultPlan(
            [
                Fault(ms(5) + us(200), "crash", "t"),
                Fault(ms(30) + us(200), "crash", "t"),
                Fault(ms(55) + us(200), "crash", "t"),
            ]
        )
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(80))
        restarts = notes_of(trace, "restart")
        assert restarts == [
            (ms(5) + us(200), f"t #1 backoff={ms(3)}"),
            (ms(30) + us(200), f"t #2 backoff={ms(6)}"),  # doubled
        ]
        # The second back-off (6 ms from 30.2) swallows the release at 35.
        assert notes_of(trace, "release-skipped-backoff") == [(ms(35), "t")]
        # Third crash exhausts the bound.
        assert notes_of(trace, "restart-exhausted") == [(ms(55) + us(200), "t")]
        assert k.threads["t"].dead

    def test_crash_releases_held_semaphores(self):
        k = zero_kernel()
        k.create_semaphore("lock")
        k.create_thread(
            "holder",
            Program([Acquire("lock"), Compute(ms(10)), Release("lock")]),
            period=ms(20),
        )
        k.create_thread(
            "waiter",
            Program([Acquire("lock"), Compute(ms(1)), Release("lock")]),
            period=ms(20),
            phase=ms(1),
        )
        k.set_restart_policy("holder", max_restarts=1)
        plan = FaultPlan([Fault(ms(2), "crash", "holder")])
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(20))
        # The waiter got the lock and finished despite the holder dying
        # inside its critical section.
        assert trace.jobs_of("waiter")[0].completion is not None
        assert not k.threads["holder"].held_sems

    def test_crash_of_unknown_target_is_moot(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        plan = FaultPlan([Fault(ms(1), "crash", "ghost")])
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(5))
        assert notes_of(trace, "fault-crash-moot") == [(ms(1), "ghost")]


class TestIrqAndJitterFaults:
    def test_spurious_irq_is_delivered(self):
        k = zero_kernel()
        hits = []
        k.interrupts.register(7, lambda kern, vec: hits.append(kern.now))
        plan = FaultPlan([Fault(ms(3), "spurious_irq", "7")])
        FaultInjector(k, plan).install()
        k.run_until(ms(10))
        assert hits == [ms(3)]

    def test_dropped_irq_masks_a_window(self):
        k = zero_kernel()
        hits = []
        k.interrupts.register(4, lambda kern, vec: hits.append(kern.now))
        plan = FaultPlan([Fault(ms(2), "dropped_irq", "4", ms(3))])
        FaultInjector(k, plan).install()
        k.interrupts.raise_interrupt(4, at=ms(1))  # before: delivered
        k.interrupts.raise_interrupt(4, at=ms(4))  # inside window: lost
        k.interrupts.raise_interrupt(4, at=ms(6))  # after: delivered
        k.run_until(ms(10))
        assert hits == [ms(1), ms(6)]
        assert k.interrupts.dropped_masked == 1

    def test_tick_jitter_charges_kernel_time(self):
        k = zero_kernel()
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        plan = FaultPlan([Fault(us(500), "clock_jitter", "", us(200))])
        FaultInjector(k, plan).install()
        trace = k.run_until(ms(10))
        # The job loses the jitter window: 1 ms of work ends at 1.2 ms.
        assert trace.jobs_of("t")[0].completion == ms(1) + us(200)
        assert trace.kernel_time.get("fault", 0) == us(200)

    def test_timer_jitter_delays_the_firing(self):
        k = zero_kernel()
        fires = []
        timer = k.create_timer("tick", ms(5), lambda kern: fires.append(kern.now))
        timer.start()
        plan = FaultPlan([Fault(ms(1), "clock_jitter", "tick", us(700))])
        FaultInjector(k, plan).install()
        k.run_until(ms(10))
        assert fires == [ms(5) + us(700)]

    def test_timer_delay_validation(self):
        k = zero_kernel()
        timer = k.create_timer("t", ms(5), lambda kern: None)
        with pytest.raises(ValueError):
            timer.delay(-1)
        timer.delay(ms(1))  # unarmed: a no-op, not an error


class TestFrameFaults:
    def run_bus(self, plan):
        k = zero_kernel()
        bus = Fieldbus(1_000_000)
        injector = FaultInjector(k, plan, bus=bus).install()
        bus.queue(0, Frame(can_id=1, size=0, sender="a"))
        bus.queue(0, Frame(can_id=2, size=0, sender="a"))
        return bus, bus.process(horizon=ms(1)), injector

    def test_frame_drop_loses_one_frame(self):
        bus, deliveries, _ = self.run_bus(FaultPlan([Fault(0, "frame_drop")]))
        assert [d.frame.can_id for d in deliveries] == [2]
        assert bus.frames_dropped == 1
        assert bus.frames_delivered == 1
        # The dropped frame still occupied the wire.
        assert deliveries[0].time == 2 * bus.frame_time_ns(0)

    def test_frame_corrupt_sets_the_flag(self):
        bus, deliveries, _ = self.run_bus(FaultPlan([Fault(0, "frame_corrupt")]))
        assert [d.frame.corrupted for d in deliveries] == [True, False]
        assert bus.frames_corrupted == 1

    def test_frame_fault_requires_a_bus(self):
        k = zero_kernel()
        with pytest.raises(ValueError):
            FaultInjector(k, FaultPlan([Fault(0, "frame_drop")])).install()

    def test_receiver_discards_corrupted_frames(self):
        from repro.net import Cluster

        cluster = Cluster(Fieldbus(1_000_000))
        tx = zero_kernel()
        rx = zero_kernel()
        tx_iface = cluster.add_node("tx", tx)
        rx_iface = cluster.add_node("rx", rx)
        plan = FaultPlan([Fault(0, "frame_corrupt")])
        FaultInjector(tx, plan, bus=cluster.bus).install()
        from repro.net import net_send

        tx.create_thread(
            "sender",
            Program([net_send(tx_iface, can_id=1, size=0)]),
            period=ms(5),
        )
        cluster.run_until(ms(12))
        # First frame corrupted and discarded at the receiver's CRC
        # check; later frames arrive.
        assert rx_iface.frames_crc_dropped == 1
        assert rx_iface.frames_received >= 1


class TestCsdShedding:
    def build(self, shed):
        k = zero_kernel(
            CSDScheduler(ZERO_OVERHEAD, dp_queue_count=1, shed_overload=shed)
        )
        k.create_thread(
            "crit",
            Program([Compute(ms(2))]),
            period=ms(10),
            csd_queue=0,
            criticality=2,
        )
        k.create_thread(
            "hog",
            Program([Compute(ms(15))]),
            period=ms(10),
            csd_queue=0,
            criticality=1,
        )
        k.create_thread(
            "minor",
            Program([Compute(ms(1))]),
            period=ms(10),
            csd_queue=0,
            criticality=0,
        )
        return k

    @staticmethod
    def on_time(trace, name):
        return sum(
            1
            for j in trace.jobs_of(name)
            if j.completion is not None and j.completion <= j.deadline
        )

    def test_low_criticality_releases_are_shed(self):
        k = self.build(shed=True)
        trace = k.run_until(ms(200))
        shed = notes_of(trace, "release-shed")
        shed_names = {d for (_, d) in shed}
        # The bottom-criticality task is shed while the band overruns;
        # the hog itself may also be shed once the critical task backs
        # up behind it (it is strictly less critical).
        assert "minor" in shed_names
        assert shed_names <= {"minor", "hog"}
        assert sum(k.scheduler.shed_counts.values()) == len(shed)

    def test_shedding_improves_critical_service(self):
        """Graceful degradation: with shedding, the critical task gets
        its releases serviced instead of starving behind the band's
        backlog (without shedding it accumulates pending releases and
        barely runs at all)."""
        with_shed = self.build(shed=True)
        trace_shed = with_shed.run_until(ms(200))
        without = self.build(shed=False)
        trace_bare = without.run_until(ms(200))
        assert self.on_time(trace_shed, "crit") > self.on_time(
            trace_bare, "crit"
        )

    def test_disabled_by_default(self):
        k = self.build(shed=False)
        trace = k.run_until(ms(100))
        assert not notes_of(trace, "release-shed")
        assert k.scheduler.shed_counts == {}


class TestDeterminismUnderFaults:
    KW = dict(wcet_overrun_rate=20.0, crash_rate=5.0, clock_jitter_rate=10.0)

    def test_same_seed_same_trace(self):
        a = run_chaos(7, ms(300), **self.KW)
        b = run_chaos(7, ms(300), **self.KW)
        assert a.trace_signature == b.trace_signature
        assert a == b

    def test_different_seed_differs(self):
        a = run_chaos(7, ms(300), **self.KW)
        b = run_chaos(8, ms(300), **self.KW)
        assert a.trace_signature != b.trace_signature

    def test_explicit_plan_replays_identically(self):
        plan = FaultPlan.generate(
            5, ms(300), threads=["ctrl", "sense", "log", "bulk"], **self.KW
        )
        a = run_chaos(5, ms(300), plan=plan)
        b = run_chaos(5, ms(300), plan=plan)
        assert a.trace_signature == b.trace_signature

    def test_defenses_prevent_thread_loss(self):
        """The chaos headline: under a crash-heavy storm the bare
        kernel loses threads forever; the defended one never does."""
        kw = dict(wcet_overrun_rate=50.0, crash_rate=5.0)
        defended = run_chaos(1, ms(500), defenses=True, **kw)
        bare = run_chaos(1, ms(500), defenses=False, **kw)
        assert defended.threads_dead == ()
        assert bare.threads_dead != ()
        assert min(defended.service_ratio.values()) > min(
            bare.service_ratio.values()
        )


class TestDominoContainment:
    def test_budget_contains_the_edf_domino(self):
        """The scenario of test_overload.TestEdfDomino, with the hog on
        a budget: the light task no longer misses."""
        k = zero_kernel()
        k.create_thread("light", Program([Compute(ms(1))]), period=ms(10))
        k.create_thread("heavy", Program([Compute(ms(12))]), period=ms(10))
        k.set_budget("heavy", ms(8), action="suspend_job")
        trace = k.run_until(ms(200))
        light_misses = [
            j for j in trace.deadline_violations(k.now) if j.thread == "light"
        ]
        assert not light_misses  # contained
        # The hog pays: its jobs abort at the budget.
        assert k.threads["heavy"].jobs_aborted > 0
