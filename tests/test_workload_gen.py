"""Tests for the Section 5.7 random workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.workload import PERIOD_CLASSES_MS, generate_base_workloads, generate_workload
from repro.timeunits import ms


class TestGenerateWorkload:
    def test_task_count(self):
        assert len(generate_workload(17, seed=1)) == 17

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            generate_workload(0)

    def test_deterministic_for_seed(self):
        a = generate_workload(10, seed=42)
        b = generate_workload(10, seed=42)
        assert [(t.period, t.wcet) for t in a] == [(t.period, t.wcet) for t in b]

    def test_different_seeds_differ(self):
        a = generate_workload(10, seed=1)
        b = generate_workload(10, seed=2)
        assert [(t.period, t.wcet) for t in a] != [(t.period, t.wcet) for t in b]

    def test_periods_from_the_three_classes(self):
        w = generate_workload(200, seed=3)
        lo = min(c[0] for c in PERIOD_CLASSES_MS)
        hi = max(c[1] for c in PERIOD_CLASSES_MS)
        for t in w:
            assert ms(lo) <= t.period <= ms(hi)

    def test_all_classes_represented(self):
        """With 200 tasks each class (1/3 probability) must appear."""
        w = generate_workload(200, seed=4)
        hits = [0, 0, 0]
        for t in w:
            for k, (lo, hi) in enumerate(PERIOD_CLASSES_MS):
                if ms(lo) <= t.period <= ms(hi):
                    hits[k] += 1
                    break
        assert all(h > 20 for h in hits)

    def test_target_utilization_respected(self):
        w = generate_workload(30, seed=5, utilization=0.5)
        assert w.utilization == pytest.approx(0.5, rel=0.1)

    def test_wcet_never_exceeds_period(self):
        w = generate_workload(50, seed=6, utilization=0.9)
        for t in w:
            assert t.wcet <= t.period

    def test_blocking_calls_half_the_tasks(self):
        w = generate_workload(10, seed=7)
        assert sum(1 for t in w if t.blocking_calls) == 5

    @given(st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_valid_workloads_for_any_seed(self, n, seed):
        w = generate_workload(n, seed=seed)
        assert len(w) == n
        assert 0 < w.utilization <= 1.0


class TestGenerateBaseWorkloads:
    def test_count(self):
        assert len(generate_base_workloads(5, 7, seed=0)) == 7

    def test_prefix_stability(self):
        """Workload k is the same regardless of how many are requested."""
        few = generate_base_workloads(8, 3, seed=9)
        many = generate_base_workloads(8, 10, seed=9)
        for a, b in zip(few, many):
            assert [(t.period, t.wcet) for t in a] == [(t.period, t.wcet) for t in b]
