"""Unit tests for the task model (TaskSpec, Workload, Table 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.task import TaskSpec, Workload, table2_workload
from repro.timeunits import ms


def make(name="t", period=ms(10), wcet=ms(1), **kw):
    return TaskSpec(name=name, period=period, wcet=wcet, **kw)


class TestTaskSpec:
    def test_deadline_defaults_to_period(self):
        task = make(period=ms(7))
        assert task.deadline == ms(7)

    def test_explicit_deadline_kept(self):
        task = make(period=ms(10), deadline=ms(4))
        assert task.deadline == ms(4)

    def test_utilization(self):
        task = make(period=ms(10), wcet=ms(2))
        assert task.utilization == pytest.approx(0.2)

    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            make(period=0)

    def test_rejects_negative_wcet(self):
        with pytest.raises(ValueError):
            make(wcet=-1)

    def test_rejects_negative_phase(self):
        with pytest.raises(ValueError):
            make(phase=-5)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            make(deadline=0)

    def test_scaled_multiplies_wcet_only(self):
        task = make(period=ms(10), wcet=ms(2))
        scaled = task.scaled(1.5)
        assert scaled.wcet == ms(3)
        assert scaled.period == task.period
        assert scaled.deadline == task.deadline

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            make().scaled(-0.1)

    def test_rm_key_orders_by_period(self):
        short = make("a", period=ms(5))
        long = make("b", period=ms(9))
        assert short.rm_key < long.rm_key

    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_scaled_never_negative(self, factor):
        assert make().scaled(factor).wcet >= 0


class TestWorkload:
    def test_sorted_rm_order(self):
        w = Workload([make("slow", period=ms(100)), make("fast", period=ms(5))])
        assert w.names() == ["fast", "slow"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Workload([make("x"), make("x")])

    def test_utilization_sums(self):
        w = Workload(
            [make("a", period=ms(10), wcet=ms(1)), make("b", period=ms(20), wcet=ms(1))]
        )
        assert w.utilization == pytest.approx(0.15)

    def test_indexing_and_iteration(self):
        w = Workload([make("a", period=ms(5)), make("b", period=ms(10))])
        assert len(w) == 2
        assert w[0].name == "a"
        assert [t.name for t in w] == ["a", "b"]

    def test_scaled_scales_every_task(self):
        w = Workload([make("a", wcet=ms(1)), make("b", period=ms(20), wcet=ms(2))])
        scaled = w.scaled(2.0)
        assert scaled.utilization == pytest.approx(2 * w.utilization)

    def test_period_division_preserves_utilization(self):
        w = Workload(
            [make("a", period=ms(10), wcet=ms(2)), make("b", period=ms(30), wcet=ms(3))]
        )
        divided = w.with_periods_divided(2)
        assert divided.utilization == pytest.approx(w.utilization, rel=1e-6)
        assert divided[0].period == ms(5)

    def test_period_division_rejects_zero(self):
        with pytest.raises(ValueError):
            Workload([make()]).with_periods_divided(0)


class TestTable2Workload:
    """The reconstructed Table 2 workload must satisfy every property
    the paper states about it."""

    def test_ten_tasks(self):
        assert len(table2_workload()) == 10

    def test_utilization_near_0_88(self):
        assert table2_workload().utilization == pytest.approx(0.88, abs=0.01)

    def test_mix_of_short_and_long_periods(self):
        w = table2_workload()
        periods_ms = [t.period / 1e6 for t in w]
        assert min(periods_ms) <= 9
        assert max(periods_ms) >= 100

    def test_tau5_is_fifth_in_rm_order(self):
        assert table2_workload().names()[4] == "tau5"
