"""End-to-end reproduction of Table 2 / Figure 2 in the live kernel."""

import pytest

from repro.core.overhead import ZERO_OVERHEAD
from repro.core.task import table2_workload
from repro.sim.kernelsim import build_kernel, hyperperiod, make_scheduler, simulate_workload
from repro.timeunits import ms


class TestFigure2:
    """The RM schedule of the Table 2 workload (Figure 2)."""

    def test_rm_misses_tau5_and_only_tau5_first(self):
        kernel, trace = simulate_workload(
            table2_workload(), "rm", duration=ms(40), model=ZERO_OVERHEAD
        )
        violations = trace.deadline_violations(kernel.now)
        assert violations
        assert {j.thread for j in violations} == {"tau5"}

    def test_edf_schedules_everything(self):
        kernel, trace = simulate_workload(
            table2_workload(), "edf", duration=ms(200), model=ZERO_OVERHEAD
        )
        assert not trace.deadline_violations(kernel.now)

    def test_csd2_with_five_dp_tasks_schedules_everything(self):
        """Section 5.3: tau1..tau5 go to the DP queue, tau6..tau10 use
        cheap RM, and the workload becomes feasible."""
        kernel, trace = simulate_workload(
            table2_workload(), "csd-2", duration=ms(200),
            model=ZERO_OVERHEAD, splits=(5,),
        )
        assert not trace.deadline_violations(kernel.now)

    def test_figure2_prefix_trace(self):
        """tau1..tau4 occupy [0, 4 ms) back to back under RM."""
        kernel, trace = simulate_workload(
            table2_workload(), "rm", duration=ms(10), model=ZERO_OVERHEAD
        )
        for i in range(4):
            segs = [s for s in trace.segments if s.who == f"tau{i + 1}"]
            assert segs[0].start == ms(i)
            assert segs[0].end == ms(i + 1)

    def test_tau5_preempted_by_second_releases(self):
        """tau1's second invocation (t = 5 ms) preempts tau5, exactly
        the Figure 2 story."""
        kernel, trace = simulate_workload(
            table2_workload(), "rm", duration=ms(10), model=ZERO_OVERHEAD
        )
        tau5_segments = [s for s in trace.segments if s.who == "tau5"]
        assert tau5_segments[0].start == ms(4)
        assert tau5_segments[0].end == ms(5)  # preempted after 1 of 2 ms

    def test_gantt_renders_all_five_short_tasks(self):
        kernel, trace = simulate_workload(
            table2_workload(), "rm", duration=ms(20), model=ZERO_OVERHEAD
        )
        art = trace.gantt_ascii(0, ms(10), columns=40)
        for name in ("tau1", "tau2", "tau3", "tau4", "tau5"):
            assert name in art


class TestKernelSimHelpers:
    def test_make_scheduler_policies(self):
        from repro.core.csd import CSDScheduler
        from repro.core.edf import EDFScheduler
        from repro.core.rm import RMHeapScheduler, RMScheduler

        assert isinstance(make_scheduler("edf"), EDFScheduler)
        assert isinstance(make_scheduler("rm"), RMScheduler)
        assert isinstance(make_scheduler("rm-heap"), RMHeapScheduler)
        csd = make_scheduler("csd-3")
        assert isinstance(csd, CSDScheduler)
        assert csd.queue_count == 3
        with pytest.raises(ValueError):
            make_scheduler("round-robin")

    def test_csd_requires_allocation(self):
        with pytest.raises(ValueError):
            build_kernel(table2_workload(), "csd-2", model=ZERO_OVERHEAD)

    def test_build_kernel_assigns_queues(self):
        kernel = build_kernel(
            table2_workload(), "csd-3", model=ZERO_OVERHEAD, splits=(2, 5)
        )
        sched = kernel.scheduler
        assert sched.queue_index_of(kernel.threads["tau1"]) == 0
        assert sched.queue_index_of(kernel.threads["tau3"]) == 1
        assert sched.queue_index_of(kernel.threads["tau6"]) == 2

    def test_hyperperiod(self):
        from repro.core.task import TaskSpec, Workload

        w = Workload(
            [
                TaskSpec(name="a", period=ms(4), wcet=ms(1)),
                TaskSpec(name="b", period=ms(6), wcet=ms(1)),
            ]
        )
        assert hyperperiod(w) == ms(12)

    def test_hyperperiod_capped(self):
        from repro.core.task import TaskSpec, Workload

        w = Workload(
            [
                TaskSpec(name="a", period=ms(7) + 1, wcet=ms(1)),
                TaskSpec(name="b", period=ms(11) + 3, wcet=ms(1)),
                TaskSpec(name="c", period=ms(13) + 7, wcet=ms(1)),
            ]
        )
        assert hyperperiod(w, cap=ms(100)) == ms(100)


class TestAnalysisSimulationAgreement:
    """The analytic tests and the live kernel must agree."""

    @pytest.mark.parametrize("seed", range(6))
    def test_ideal_edf_agreement(self, seed):
        from repro.core.schedulability import edf_schedulable
        from repro.sim.workload import generate_workload

        w = generate_workload(6, seed=seed, utilization=0.85)
        analytic = edf_schedulable(w, ZERO_OVERHEAD)
        kernel, trace = simulate_workload(
            w, "edf", model=ZERO_OVERHEAD,
            duration=min(hyperperiod(w), ms(3000)),
        )
        simulated = not trace.deadline_violations(kernel.now)
        if hyperperiod(w) <= ms(3000):
            assert analytic == simulated
        elif analytic:
            assert simulated

    @pytest.mark.parametrize("seed", range(6))
    def test_ideal_rm_agreement(self, seed):
        from repro.core.schedulability import rm_schedulable
        from repro.sim.workload import generate_workload

        w = generate_workload(6, seed=seed, utilization=0.9)
        analytic = rm_schedulable(w, ZERO_OVERHEAD)
        kernel, trace = simulate_workload(
            w, "rm", model=ZERO_OVERHEAD,
            duration=min(hyperperiod(w), ms(3000)),
        )
        simulated = not trace.deadline_violations(kernel.now)
        if analytic:
            # RTA is exact and the critical instant is at t=0, so an
            # analytically feasible set can never miss in simulation.
            assert simulated

    @pytest.mark.parametrize("seed", range(4))
    def test_ideal_csd_feasible_sets_do_not_miss(self, seed):
        from repro.core.allocation import find_feasible_splits
        from repro.sim.workload import generate_workload

        w = generate_workload(5, seed=seed, utilization=0.9)
        splits = find_feasible_splits(w, 1, ZERO_OVERHEAD)
        if splits is None:
            pytest.skip("no feasible CSD-2 allocation at this utilization")
        kernel, trace = simulate_workload(
            w, "csd-2", model=ZERO_OVERHEAD, splits=splits,
            duration=min(hyperperiod(w), ms(3000)),
        )
        assert not trace.deadline_violations(kernel.now)
