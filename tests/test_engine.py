"""Tests for the discrete-event engine (clock + event queue)."""

import pytest

from repro.sim.engine import EventQueue, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance_to(self):
        c = VirtualClock()
        c.advance_to(100)
        assert c.now == 100

    def test_advance_by(self):
        c = VirtualClock(50)
        c.advance_by(25)
        assert c.now == 75

    def test_no_time_travel(self):
        c = VirtualClock(100)
        with pytest.raises(ValueError):
            c.advance_to(50)
        with pytest.raises(ValueError):
            c.advance_by(-1)


class TestEventQueue:
    def test_fifo_within_same_time(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: fired.append("a"))
        q.schedule(10, lambda: fired.append("b"))
        while True:
            ev = q.pop_due(10)
            if ev is None:
                break
            ev.action()
        assert fired == ["a", "b"]

    def test_time_ordering(self):
        q = EventQueue()
        q.schedule(30, lambda: None, "late")
        q.schedule(10, lambda: None, "early")
        assert q.peek_time() == 10
        assert q.pop_due(100).label == "early"
        assert q.pop_due(100).label == "late"

    def test_pop_due_respects_now(self):
        q = EventQueue()
        q.schedule(50, lambda: None)
        assert q.pop_due(49) is None
        assert q.pop_due(50) is not None

    def test_cancel(self):
        q = EventQueue()
        ev = q.schedule(10, lambda: None, "dead")
        keep = q.schedule(20, lambda: None, "alive")
        ev.cancel()
        assert q.peek_time() == 20
        assert q.pop_due(100) is keep

    def test_len_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(10, lambda: None)
        q.schedule(20, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_empty_peek(self):
        assert EventQueue().peek_time() is None


class TestCancelRescheduleEdgeCases:
    def test_cancel_then_reschedule_at_same_tick(self):
        """Cancelling an event and scheduling a replacement at the very
        same time must fire only the replacement, exactly once."""
        q = EventQueue()
        fired = []
        stale = q.schedule(10, lambda: fired.append("stale"), "stale")
        stale.cancel()
        q.schedule(10, lambda: fired.append("fresh"), "fresh")
        assert len(q) == 1
        assert q.peek_time() == 10
        while True:
            ev = q.pop_due(10)
            if ev is None:
                break
            ev.action()
        assert fired == ["fresh"]
        assert len(q) == 0

    def test_len_counts_buried_cancelled_events(self):
        """A cancelled event buried *below* the heap top must not be
        counted (the lazy top-trim cannot reach it)."""
        q = EventQueue()
        q.schedule(10, lambda: None, "top")
        buried = q.schedule(20, lambda: None, "buried")
        buried.cancel()
        assert q.peek_time() == 10  # top is live, trim removes nothing
        assert len(q) == 1

    def test_cancelled_event_resurrection_is_impossible(self):
        """Popping past a cancel-then-reschedule pair at one tick keeps
        (time, sequence) order deterministic."""
        q = EventQueue()
        order = []
        a = q.schedule(10, lambda: order.append("a"), "a")
        q.schedule(10, lambda: order.append("b"), "b")
        a.cancel()
        q.schedule(10, lambda: order.append("c"), "c")
        while True:
            ev = q.pop_due(10)
            if ev is None:
                break
            ev.action()
        assert order == ["b", "c"]


class TestClockValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="clock start"):
            VirtualClock(-1)

    def test_errors_are_labelled(self):
        c = VirtualClock(100)
        with pytest.raises(ValueError, match="50 < 100"):
            c.advance_to(50)
        with pytest.raises(ValueError, match="got -1 at 100"):
            c.advance_by(-1)
        with pytest.raises(ValueError, match="got -5"):
            EventQueue().schedule(-5, lambda: None)


class TestCancelTriggeredCompaction:
    """Regression: a cancel-heavy queue that stops scheduling must
    still compact (the threshold used to be checked only on the
    schedule() path, so dead entries accumulated without bound and
    peek_time() degraded to scanning them)."""

    def test_cancel_storm_compacts_without_scheduling(self):
        from repro.sim.engine import _COMPACT_MIN_DEAD

        q = EventQueue()
        events = [q.schedule(1000 + i, lambda: None) for i in range(200)]
        # Cancel until dead (101) >= threshold (64) AND dead > live
        # (99): the 101st cancel must fire the compaction -- with no
        # schedule() call anywhere in between.
        for ev in events[:101]:
            ev.cancel()
        assert q._dead == 0
        assert len(q._heap) == 99
        assert len(q) == 99
        # The dead backlog can never again exceed both bounds.
        for ev in events[101:150]:
            ev.cancel()
        assert q._dead < max(_COMPACT_MIN_DEAD, q._live + 1)
        assert q.peek_time() == events[150].time

    def test_compact_unlinks_dropped_entries(self):
        """_compact() clears _queue on the entries it drops, exactly
        like the pop/peek trims -- a compacted-away event must not pin
        the queue (and its closures) alive."""
        q = EventQueue()
        events = [q.schedule(1000 + i, lambda: None) for i in range(200)]
        for ev in events[:101]:
            ev.cancel()
        assert all(ev._queue is None for ev in events[:101])
        assert all(ev._queue is q for ev in events[101:])
        # A second cancel of an unlinked event stays a harmless no-op.
        before = (q._live, q._dead)
        events[0].cancel()
        assert (q._live, q._dead) == before

    def test_schedule_path_compaction_also_unlinks(self):
        q = EventQueue()
        events = [q.schedule(1000 + i, lambda: None) for i in range(80)]
        # Cancel 65: above the min-dead floor but not above the live
        # count (15 live < 65 dead is false? 80-65=15 live, 65 > 15 --
        # the cancel path already compacts here, so drive the heap to
        # a state only schedule() resolves: cancel exactly up to the
        # floor while live still dominates.
        for ev in events[:40]:
            ev.cancel()
        assert q._dead == 40  # below floor of 64: nothing compacted yet
        q.schedule(5000, lambda: None)
        assert q._dead == 40  # dead does not outnumber live: still lazy
        for ev in events[40:64]:
            ev.cancel()
        # 64 dead vs 17 live: the threshold crossing happened on the
        # cancel path; the heap is already clean.
        assert q._dead == 0
        assert all(ev._queue is None for ev in events[:64])
