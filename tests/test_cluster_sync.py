"""Cluster synchronization modes: byte-identity + skipping.

The adaptive conservative synchronization (PR 7) and the parallel
sharded execution (PR 8) must be pure optimizations: for any workload,
seed, fault pattern, worker count, and chunking of ``run_until``, the
full-record traces, delivery timelines, membership transitions, and
bus/interface statistics must be byte-identical to the lockstep
reference -- while adaptive actually skips the quantum loop whenever
the cluster is provably silent, and parallel runs the windows in
forked worker shards.
"""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, Wait
from repro.net import Cluster, Fieldbus, HeartbeatMonitor, net_send
from repro.net.cluster import SYNC_MODES
from repro.timeunits import ms, us

#: Worker count used for sync="parallel" in these differential tests
#: (small: correctness is worker-count invariant, forks are not free).
TEST_WORKERS = 2


def zero_kernel():
    return Kernel(EDFScheduler(ZERO_OVERHEAD))


def _snapshot(cluster):
    """Everything that must match between sync modes.

    Uses the cluster's location-transparent accessors, so the same
    snapshot works whether node state lives in this process (serial)
    or in worker shards (parallel).
    """
    bus = cluster.bus
    return {
        "traces": cluster.trace_signatures(include_segments=True),
        "timelines": {
            name: tuple(timeline)
            for name, timeline in cluster.rx_timelines().items()
        },
        "bus": (
            bus.frames_delivered,
            bus.frames_dropped,
            bus.frames_corrupted,
            bus.frames_retransmitted,
            bus.error_frames,
            bus.bits_carried,
            bus.total_arbitration_wait_ns,
        ),
        "interfaces": cluster.interface_stats(),
    }


def _traffic_cluster(sync, seed, dependability=False, fault=False, nodes=4):
    """Mixed periodic senders + driver threads, seed-varied periods."""
    import random

    rng = random.Random(seed)
    cluster = Cluster(Fieldbus(1_000_000), sync=sync, workers=TEST_WORKERS)
    if dependability:
        cluster.enable_dependability(4)
    if fault:
        frng = random.Random(seed + 999)

        def hook(start, frame):
            r = frng.random()
            if r < 0.08:
                return "drop"
            if r < 0.16:
                return "corrupt"
            return "ok"

        cluster.bus.fault_hook = hook
    for i in range(nodes):
        kernel = zero_kernel()
        name = f"n{i}"
        # Alternate filtered and promiscuous receivers.
        accept = {0x100 + (i + 1) % nodes} if i % 2 == 0 else None
        iface = cluster.add_node(name, kernel, accept=accept)
        # Timelines ride on the interface so they live wherever the
        # node's kernel runs (worker shards included).
        iface.rx_timeline = []
        period = rng.choice([ms(3), ms(5), ms(7)])
        kernel.create_thread(
            f"tx{i}",
            Program([
                Compute(us(10)),
                net_send(iface, can_id=0x100 + i, size=8),
            ]),
            period=period,
            deadline=period,
        )

        def drain(kern, t, iface=iface):
            while True:
                frame = iface.receive()
                if frame is None:
                    break
                iface.rx_timeline.append((kern.now, frame.can_id, frame.sender))

        kernel.create_thread(
            f"rx{i}",
            Program([Wait(iface.rx_event_name), Call(drain)]),
            period=ms(2),
            deadline=ms(2),
        )
    return cluster


class TestByteIdentity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("dependability,fault", [
        (False, False), (False, True), (True, True),
    ])
    def test_full_traces_and_timelines_identical(self, seed, dependability, fault):
        """Multi-seed property: adaptive == parallel == lockstep byte
        for byte, even with faults on the wire, error confinement
        armed, and the horizon reached in uneven chunks."""
        snapshots = {}
        for sync in SYNC_MODES:
            cluster = _traffic_cluster(
                sync, seed, dependability=dependability, fault=fault
            )
            for t in (ms(13), ms(31), ms(40)):
                cluster.run_until(t)
            snapshots[sync] = _snapshot(cluster)
            cluster.close()
        assert snapshots["adaptive"] == snapshots["lockstep"]
        assert snapshots["parallel"] == snapshots["lockstep"]

    def test_membership_timeline_identical(self):
        """Heartbeat membership (crash + restart rejoin) transitions at
        identical instants under both sync modes."""
        results = {}
        for sync in SYNC_MODES:
            cluster = Cluster(sync=sync, workers=TEST_WORKERS)
            for i in range(3):
                cluster.add_node(f"n{i}", zero_kernel())
            monitor = HeartbeatMonitor(cluster, period=ms(10))
            victim = cluster.nodes["n2"]
            victim.set_restart_policy(
                "hb-tx:n2", max_restarts=1, backoff_ns=ms(30)
            )
            victim.schedule_event(
                ms(35), lambda: victim.crash_thread("hb-tx:n2", "test"),
                label="silence",
            )
            cluster.run_until(ms(160))
            results[sync] = {
                "events": list(monitor.events),
                "views": {n: monitor.view(n) for n in cluster.nodes},
                "traces": cluster.trace_signatures(include_segments=True),
            }
            cluster.close()
        assert results["adaptive"] == results["lockstep"]
        assert results["parallel"] == results["lockstep"]
        assert results["adaptive"]["events"]  # the crash was observed


class TestAdaptiveSkipping:
    def test_quiescent_cluster_is_one_round(self):
        """No threads, no traffic: the window loop collapses entirely."""
        cluster = Cluster()
        for i in range(3):
            cluster.add_node(f"n{i}", zero_kernel())
        cluster.run_until(ms(100))
        assert cluster.sync_rounds == 1
        quantum = cluster.bus.min_frame_time_ns
        assert cluster.windows_skipped == (ms(100) - 1) // quantum
        assert all(k.now == ms(100) for k in cluster.nodes.values())

    def test_sparse_traffic_skips_most_windows(self):
        """A single slow sender: rounds scale with events, not with
        horizon / quantum, and the popped-event budget stays bounded."""
        cluster = Cluster()
        tx = zero_kernel()
        rx = zero_kernel()
        tx_iface = cluster.add_node("tx", tx)
        cluster.add_node("rx", rx)
        tx.create_thread(
            "sender",
            Program([net_send(tx_iface, can_id=0x10, size=0)]),
            period=ms(20), deadline=ms(10),
        )
        cluster.run_until(ms(100))
        lockstep_rounds = -(-ms(100) // cluster.bus.min_frame_time_ns)
        # 5 jobs on a 2128-window horizon: a handful of rounds each.
        assert cluster.sync_rounds < lockstep_rounds / 20
        assert cluster.windows_skipped > lockstep_rounds * 0.9
        popped = sum(k.events_popped for k in cluster.nodes.values())
        assert popped < 60  # release + deadline + delivery events only

    def test_lockstep_reference_walks_every_window(self):
        cluster = Cluster(sync="lockstep")
        cluster.add_node("n0", zero_kernel())
        cluster.run_until(ms(10))
        quantum = cluster.bus.min_frame_time_ns
        assert cluster.sync_rounds == -(-ms(10) // quantum)
        assert cluster.windows_skipped == 0


class TestDeliveryPrefilter:
    def _ring(self, sync):
        cluster = Cluster(Fieldbus(1_000_000), sync=sync, workers=TEST_WORKERS)
        for i in range(4):
            kernel = zero_kernel()
            iface = cluster.add_node(
                f"n{i}", kernel, accept={0x100 + (i - 1) % 4}
            )
            iface.rx_timeline = []
            kernel.create_thread(
                f"tx{i}",
                Program([net_send(iface, can_id=0x100 + i, size=4)]),
                period=ms(5), deadline=ms(5),
            )

            def drain(kern, t, iface=iface):
                while True:
                    frame = iface.receive()
                    if frame is None:
                        break
                    iface.rx_timeline.append((kern.now, frame.can_id))

            kernel.create_thread(
                f"rx{i}",
                Program([Wait(iface.rx_event_name), Call(drain)]),
                period=ms(5), deadline=ms(5),
            )
        return cluster

    def test_prefilter_keeps_deliver_stats_unchanged(self):
        """The adaptive and parallel modes suppress filter-rejected
        delivery events at schedule time; every ``NetInterface.deliver``
        statistic must still match the reference that delivers to
        everyone."""
        snaps = {}
        suppressed = {}
        for sync in SYNC_MODES:
            cluster = self._ring(sync)
            cluster.run_until(ms(25))
            snaps[sync] = _snapshot(cluster)
            suppressed[sync] = cluster.deliveries_suppressed
            cluster.close()
        assert snaps["adaptive"] == snaps["lockstep"]
        assert snaps["parallel"] == snaps["lockstep"]
        # The ring has 2 disinterested receivers per frame; adaptive
        # and parallel never scheduled those events, lockstep did.
        assert suppressed["adaptive"] > 0
        assert suppressed["parallel"] > 0
        assert suppressed["lockstep"] == 0

    def test_in_flight_frame_stats_are_not_counted_early(self):
        """A frame still on the wire at t_end must not have bumped any
        receiver's ``frames_filtered`` yet (the reference's no-op
        deliver event has not fired either)."""
        observed = {}
        for sync in SYNC_MODES:
            cluster = Cluster(
                Fieldbus(1_000_000), sync=sync, workers=TEST_WORKERS
            )
            tx = zero_kernel()
            rx = zero_kernel()
            tx_iface = cluster.add_node("tx", tx)
            cluster.add_node("rx", rx, accept={0x999})
            tx.create_thread(
                "sender",
                Program([net_send(tx_iface, can_id=0x11, size=8)]),
                period=ms(10), deadline=ms(10),
            )
            # An 8-byte frame takes 111 us on the wire: at t = 50 us it
            # has started but not completed.
            cluster.run_until(us(50))
            mid = cluster.interface_stats()["rx"]["frames_filtered"]
            cluster.run_until(ms(1))
            observed[sync] = (
                mid, cluster.interface_stats()["rx"]["frames_filtered"]
            )
            cluster.close()
        assert observed["adaptive"] == observed["lockstep"]
        assert observed["parallel"] == observed["lockstep"]
        assert observed["adaptive"] == (0, 1)


class TestGuards:
    def test_zero_min_frame_time_rejected(self):
        """A bus so fast the smallest frame rounds to zero wire time
        gives the conservative sync no lookahead: clear error, not an
        infinite loop."""
        bus = Fieldbus(bit_rate_bps=200_000_000_000)
        assert bus.min_frame_time_ns == 0
        cluster = Cluster(bus)
        cluster.add_node("n0", zero_kernel())
        with pytest.raises(ValueError, match="min_frame_time_ns"):
            cluster.run_until(ms(1))

    def test_unknown_sync_mode_rejected(self):
        with pytest.raises(ValueError, match="sync mode"):
            Cluster(sync="bogus")

    def test_adaptive_is_the_default(self):
        assert Cluster().sync == "adaptive"
        assert Cluster(sync="lockstep").sync == "lockstep"

    def test_empty_cluster_still_advances(self):
        cluster = Cluster()
        cluster.run_until(ms(5))
        assert cluster.now == ms(5)
