"""Cluster-wide distributed tracing: merged timeline + determinism.

The merged Perfetto export (one pid per node + a bus pid, causal flow
arrows from transmit slices to deliveries) must be byte-identical
across every synchronization mode and worker count -- including under
wire faults with the dependability layer retransmitting -- and must
never change what the cluster *does* (full-mode per-node trace
signatures match an uninstrumented run).
"""

import json
import pickle
import random

import pytest

from repro.net.cluster import SYNC_MODES
from repro.obs import (
    bus_chain_latency,
    cluster_chrome_trace,
    cluster_metrics_registry,
    enable_cluster_tracing,
    validate_chrome_trace,
)
from repro.perf.clusterload import build_ring_cluster
from repro.timeunits import ms

#: Ring configuration shared by every test (small horizon: the
#: determinism argument is structural, not statistical).
NODES = 4
UTILIZATION = 0.5
HORIZON = ms(30)


def _arm_faults(cluster, seed):
    """Seeded wire faults (8% drop, 8% corrupt), as in the sync tests."""
    frng = random.Random(seed + 999)

    def hook(start, frame):
        r = frng.random()
        if r < 0.08:
            return "drop"
        if r < 0.16:
            return "corrupt"
        return "ok"

    cluster.bus.fault_hook = hook


def _traced_ring(sync, workers=None, fault=False, dependability=False,
                 obs="full", seed=7):
    cluster = build_ring_cluster(
        NODES, UTILIZATION, sync, record="full", workers=workers
    )
    if dependability:
        cluster.enable_dependability(4)
    if fault:
        _arm_faults(cluster, seed)
    enable_cluster_tracing(cluster, obs=obs)
    cluster.run_until(HORIZON)
    return cluster


def _trace_text(cluster):
    payload = cluster_chrome_trace(cluster)
    return json.dumps(payload, indent=1, sort_keys=True), payload


class TestByteIdentity:
    def test_identical_across_sync_modes_and_worker_counts(self):
        """The merged trace AND the aggregated metrics are byte for
        byte the same under lockstep / adaptive / parallel with 1, 2,
        and 4 workers."""
        configs = [("lockstep", None), ("adaptive", None)]
        configs += [("parallel", w) for w in (1, 2, 4)]
        texts, metrics = {}, {}
        for sync, workers in configs:
            cluster = _traced_ring(sync, workers=workers)
            texts[(sync, workers)], _ = _trace_text(cluster)
            metrics[(sync, workers)] = cluster_metrics_registry(
                cluster
            ).to_json()
            cluster.close()
        reference = texts[("lockstep", None)]
        reference_metrics = metrics[("lockstep", None)]
        for key in configs[1:]:
            assert texts[key] == reference, f"trace differs under {key}"
            assert metrics[key] == reference_metrics, (
                f"metrics differ under {key}"
            )

    def test_identical_under_faults_with_dependability(self):
        """Wire faults + retransmission layer: still byte-identical,
        and the dependability activity is actually in the trace."""
        texts, payloads = {}, {}
        for sync in SYNC_MODES:
            workers = 2 if sync == "parallel" else None
            cluster = _traced_ring(
                sync, workers=workers, fault=True, dependability=True
            )
            texts[sync], payloads[sync] = _trace_text(cluster)
            cluster.close()
        assert texts["adaptive"] == texts["lockstep"]
        assert texts["parallel"] == texts["lockstep"]
        events = payloads["lockstep"]["traceEvents"]
        assert any(e.get("cat") == "bus-error" for e in events), (
            "corrupted frames must appear as error-frame slices"
        )
        assert any(e.get("name") == "retransmit" for e in events), (
            "retransmissions must appear as bus-dep instants"
        )


class TestMergedShape:
    @pytest.fixture(scope="class")
    def payload(self):
        cluster = _traced_ring("adaptive")
        _, payload = _trace_text(cluster)
        self_registry = cluster_metrics_registry(cluster)
        cluster.close()
        payload["_registry"] = self_registry  # piggyback for shape tests
        return payload

    def test_validates_and_has_node_and_bus_pids(self, payload):
        assert validate_chrome_trace(payload) > 0
        named = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert named[1] == "<bus>"
        assert sorted(named.values()) == sorted(
            ["<bus>"] + [f"n{i}" for i in range(NODES)]
        )

    def test_every_channel_has_flow_pairs(self, payload):
        """Each ring channel (0x100..0x103) gets at least one causal
        transmit -> delivery arrow."""
        starts = [
            e for e in payload["traceEvents"] if e.get("ph") == "s"
        ]
        finishes = [
            e for e in payload["traceEvents"] if e.get("ph") == "f"
        ]
        assert len(starts) == len(finishes)
        for can_id in range(0x100, 0x100 + NODES):
            name = f"frame {can_id:#x}"
            assert any(e["name"] == name for e in starts), name

    def test_flow_finish_binds_to_enclosing_rx_slice(self, payload):
        finishes = [
            e for e in payload["traceEvents"] if e.get("ph") == "f"
        ]
        assert finishes and all(e.get("bp") == "e" for e in finishes)

    def test_no_mode_dependent_payload_data(self, payload):
        """otherData must not leak sync mode or worker count -- they
        would break byte-identity by construction."""
        blob = json.dumps(payload["otherData"]).lower()
        for word in ("sync", "worker", "lockstep", "adaptive", "parallel"):
            assert word not in blob

    def test_aggregated_registry_labels_every_node(self, payload):
        text = payload["_registry"].to_prometheus()
        for i in range(NODES):
            assert f'node="n{i}"' in text

    def test_engine_internal_metrics_excluded(self, payload):
        """Sync-mode-dependent engine counters must not reach the
        aggregate (they count barrier wakeups, not workload)."""
        text = payload["_registry"].to_json()
        assert "kernel_events_popped" not in text
        assert "engine_event_queue_depth" not in text


class TestNonInterference:
    def test_signatures_match_uninstrumented_run(self):
        """Arming the bus log, rx logs, and full-mode collectors must
        not move a single full-mode per-node trace signature."""
        plain = build_ring_cluster(NODES, UTILIZATION, "adaptive",
                                   record="full")
        plain.run_until(HORIZON)
        baseline = plain.trace_signatures(include_segments=True)
        plain.close()

        traced = _traced_ring("adaptive")
        assert traced.trace_signatures(include_segments=True) == baseline
        traced.close()

    def test_enable_after_workers_started_rejected(self):
        cluster = build_ring_cluster(
            NODES, UTILIZATION, "parallel", record="full", workers=2
        )
        try:
            if cluster.start_workers():
                with pytest.raises(RuntimeError, match="before parallel"):
                    enable_cluster_tracing(cluster)
        finally:
            cluster.close()

    def test_unarmed_cluster_export_rejected(self):
        cluster = build_ring_cluster(NODES, UTILIZATION, "lockstep",
                                     record="full")
        cluster.run_until(ms(5))
        with pytest.raises(ValueError, match="not armed"):
            cluster_chrome_trace(cluster)
        cluster.close()


class TestCollectorPickle:
    def test_round_trip_drops_kernel_keeps_counters(self):
        cluster = _traced_ring("adaptive", obs="counters")
        collector = cluster.nodes["n0"].obs
        clone = pickle.loads(pickle.dumps(collector))
        assert clone.kernel is None
        assert clone.switches == collector.switches
        assert {
            name: stats.completions for name, stats in clone.tasks.items()
        } == {
            name: stats.completions
            for name, stats in collector.tasks.items()
        }
        cluster.close()


class TestBusChainLatency:
    def test_percentiles_per_channel(self):
        cluster = _traced_ring("adaptive")
        chains = bus_chain_latency(
            list(cluster.bus.bus_log),
            cluster.rx_logs(),
            cluster.rx_timelines(),
        )
        cluster.close()
        assert set(chains) == set(range(0x100, 0x100 + NODES))
        for can_id, stats in chains.items():
            assert stats["frames"] > 0
            deliver = stats["send_deliver_ns"]
            assert deliver["p50"] <= deliver["p95"] <= deliver["max"]
            # Wire time alone is 111 us at 1 Mbit/s; nothing can be
            # delivered faster.
            assert deliver["p50"] >= 111_000


class TestCli:
    def test_cluster_trace_subcommand(self, tmp_path):
        from repro.reproduce import main

        out = tmp_path / "cluster.trace.json"
        metrics_out = tmp_path / "metrics.json"
        code = main([
            "cluster-trace", "--quick",
            "--out", str(out), "--metrics-out", str(metrics_out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) > 0
        assert json.loads(metrics_out.read_text())
