"""Determinism: identical configurations produce identical histories.

The whole experimental method rests on the simulation being exactly
reproducible -- same inputs, same virtual timeline, bit for bit.
"""

from repro.core.csd import CSDScheduler
from repro.core.overhead import OverheadModel
from repro.kernel.devices import AperiodicDevice, PeriodicDevice
from repro.kernel.kernel import Kernel
from repro.kernel.program import Acquire, Compute, Program, Release, Send, Recv
from repro.net import Cluster, Fieldbus, net_send
from repro.timeunits import ms, us


def build_app():
    k = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
    k.create_semaphore("S")
    k.create_mailbox("m")
    k.create_thread(
        "a",
        Program([Acquire("S"), Compute(us(300)), Release("S"),
                 Send("m", size=8, payload="x")]),
        period=ms(5), csd_queue=0,
    )
    k.create_thread(
        "b",
        Program([Recv("m"), Acquire("S"), Compute(us(500)), Release("S")]),
        period=ms(10), csd_queue=1,
    )
    PeriodicDevice(k, "dev", vector=1, period=ms(7), jitter=us(100), seed=3)
    k.interrupts.register(1, lambda kern, vec: None)
    return k


def history(kernel, horizon=ms(200)):
    trace = kernel.run_until(horizon)
    return (
        tuple(trace.events),
        tuple((j.thread, j.release, j.completion) for j in trace.jobs),
        trace.context_switches,
        trace.kernel_time_total,
        kernel.now,
    )


def test_identical_kernels_identical_histories():
    assert history(build_app()) == history(build_app())


def test_cluster_runs_are_deterministic():
    def build_cluster():
        cluster = Cluster(Fieldbus(1_000_000))
        for i in range(3):
            k = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
            iface = cluster.add_node(f"n{i}", k)
            k.create_thread(
                "tx",
                Program([Compute(us(40 * (i + 1))),
                         net_send(iface, can_id=0x10 + i, size=4)]),
                period=ms(8), deadline=ms(7), csd_queue=0,
            )
        cluster.run_until(ms(100))
        return tuple(
            (name, tuple(k.trace.events), k.trace.kernel_time_total)
            for name, k in cluster.nodes.items()
        ) + (cluster.bus.frames_delivered, cluster.bus.bits_carried)

    assert build_cluster() == build_cluster()


def test_runs_split_across_calls_match_single_run():
    """run_until(a); run_until(b) must equal run_until(b) directly."""
    whole = build_app()
    whole_history = history(whole, ms(100))

    split = build_app()
    for t in range(10, 101, 10):
        split.run_until(ms(t))
    split_history = (
        tuple(split.trace.events),
        tuple((j.thread, j.release, j.completion) for j in split.trace.jobs),
        split.trace.context_switches,
        split.trace.kernel_time_total,
        split.now,
    )
    assert split_history == whole_history
