"""Tests for the overhead-aware schedulability analysis (Section 5.2, [36])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import (
    band_sizes_from_splits,
    csd_overhead_per_period,
    csd_schedulable,
    edf_overhead_per_period,
    edf_schedulable,
    rm_overhead_per_period,
    rm_response_times,
    rm_schedulable,
)
from repro.core.task import TaskSpec, Workload, table2_workload
from repro.timeunits import ms, us


def wl(*pairs_ms, deadline=None):
    tasks = []
    for i, (p, c) in enumerate(pairs_ms):
        tasks.append(
            TaskSpec(
                name=f"t{i}",
                period=ms(p),
                wcet=ms(c),
                deadline=ms(deadline[i]) if deadline else None,
            )
        )
    return Workload(tasks)


class TestEDF:
    def test_full_utilization_feasible_ideal(self):
        # U = 1 exactly: EDF's schedulability overhead is zero.
        assert edf_schedulable(wl((10, 5), (20, 10)))

    def test_over_utilization_infeasible(self):
        assert not edf_schedulable(wl((10, 6), (20, 10)))

    def test_empty_workload(self):
        assert edf_schedulable(Workload([]))

    def test_table2_feasible(self):
        assert edf_schedulable(table2_workload())

    def test_overheads_reduce_capacity(self):
        w = wl((1, 0.999))  # U = 0.999 with a 1 ms period
        assert edf_schedulable(w, ZERO_OVERHEAD)
        assert not edf_schedulable(w, OverheadModel())

    def test_constrained_deadlines_demand_analysis(self):
        # Two tasks, deadlines well below periods.
        feasible = wl((10, 2), (10, 2), deadline=[5, 9])
        assert edf_schedulable(feasible)
        infeasible = wl((10, 3), (10, 3), deadline=[3, 4])
        assert not edf_schedulable(infeasible)

    @given(st.lists(st.tuples(st.integers(2, 100), st.integers(1, 50)),
                    min_size=1, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_ideal_edf_iff_u_at_most_one(self, raw):
        tasks = [
            TaskSpec(name=f"t{i}", period=ms(p), wcet=min(ms(c), ms(p)))
            for i, (p, c) in enumerate(raw)
        ]
        w = Workload(tasks)
        assert edf_schedulable(w, ZERO_OVERHEAD) == (w.utilization <= 1.0)


class TestRM:
    def test_liu_layland_bound_feasible(self):
        # Harmonic periods schedule to U = 1 under RM.
        assert rm_schedulable(wl((10, 5), (20, 10)))

    def test_table2_infeasible_with_tau5_first_miss(self):
        w = table2_workload()
        assert not rm_schedulable(w)
        responses = rm_response_times(w)
        # tau1..tau4 make their deadlines; tau5 is the troublesome one.
        for name in ("tau1", "tau2", "tau3", "tau4"):
            assert responses[name] is not None
        assert responses["tau5"] is None

    def test_response_time_values(self):
        w = wl((10, 2), (20, 5))
        responses = rm_response_times(w)
        assert responses["t0"] == ms(2)
        assert responses["t1"] == ms(7)  # 5 + ceil(7/10)*2

    def test_heap_variant_has_different_overheads(self):
        w = wl((1, 0.4), (1.5, 0.4), (2, 0.4))
        # Same workload, but heap constants are larger for small n.
        assert rm_overhead_per_period(OverheadModel(), 3) < \
            edf_overhead_per_period(OverheadModel(), 58)

    def test_rm_worse_than_edf_on_nonharmonic(self):
        # The classic 2-task example: U = 0.97 > 2(2^0.5 - 1) fails RM.
        w = wl((10, 5), (14, 6.5))
        assert edf_schedulable(w)
        assert not rm_schedulable(w)


class TestBandSizes:
    def test_basic(self):
        assert band_sizes_from_splits(10, (3, 7)) == [3, 4, 3]

    def test_empty_bands_allowed(self):
        assert band_sizes_from_splits(5, (0, 5)) == [0, 5, 0]

    def test_no_splits_means_all_fp(self):
        assert band_sizes_from_splits(4, ()) == [4]

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            band_sizes_from_splits(5, (7,))
        with pytest.raises(ValueError):
            band_sizes_from_splits(5, (3, 2))


class TestCSD:
    def test_all_tasks_in_dp_equals_edf_ideal(self):
        w = wl((10, 5), (20, 10))  # U = 1
        assert csd_schedulable(w, (len(w),), ZERO_OVERHEAD)

    def test_all_tasks_in_fp_equals_rm_ideal(self):
        w = table2_workload()
        assert csd_schedulable(w, (len(w),), ZERO_OVERHEAD)  # EDF band
        assert not csd_schedulable(w, (0,), ZERO_OVERHEAD)  # pure FP = RM

    def test_table2_csd2_with_r5(self):
        """The paper's prescription: tau1..tau5 in the DP queue."""
        assert csd_schedulable(table2_workload(), (5,), ZERO_OVERHEAD)

    def test_splitting_dp_band_adds_schedulability_overhead(self):
        """Two tasks that only EDF can schedule together: splitting them
        into two DP bands (strict priority between them) must fail."""
        w = wl((10, 5), (10, 5))  # U = 1, identical periods
        assert csd_schedulable(w, (2,), ZERO_OVERHEAD)
        # Split: t0 in DP1, t1 in DP2 -> t1 sees ceil-interference.
        assert csd_schedulable(w, (1, 2), ZERO_OVERHEAD)  # still exactly fits
        w2 = wl((2, 1), (3, 1.5))  # U = 1, non-harmonic
        assert csd_schedulable(w2, (2,), ZERO_OVERHEAD)
        assert not csd_schedulable(w2, (1, 2), ZERO_OVERHEAD)

    def test_overheads_grow_with_parse_cost(self):
        w = wl((1, 0.32), (1, 0.32), (1, 0.32))  # U = 0.96, 1 ms periods
        assert edf_schedulable(w, OverheadModel())
        # Same allocation under CSD pays the queue-parse overhead too.
        assert not csd_schedulable(w, (3,), OverheadModel())

    def test_empty_workload(self):
        assert csd_schedulable(Workload([]), (0,))


class TestCSDOverheadCases:
    """Structure of the Table 3 cost cases."""

    def setup_method(self):
        self.model = OverheadModel()

    def test_fp_band_cheaper_than_dp_bands(self):
        # With one huge DP queue, FP tasks still pay the DP scan on
        # unblock, but block selection is O(1).
        sizes = [20, 5]
        fp = csd_overhead_per_period(self.model, sizes, 1)
        dp = csd_overhead_per_period(self.model, sizes, 0)
        assert fp < dp

    def test_splitting_dp_reduces_dp1_overhead(self):
        """CSD-3's point: DP1 tasks scan shorter queues than CSD-2's."""
        csd2 = csd_overhead_per_period(self.model, [20, 5], 0)
        csd3_dp1 = csd_overhead_per_period(self.model, [10, 10, 5], 0)
        assert csd3_dp1 < csd2

    def test_invalid_band_index(self):
        with pytest.raises(ValueError):
            csd_overhead_per_period(self.model, [2, 2], 5)
        with pytest.raises(ValueError):
            csd_overhead_per_period(self.model, [], 0)

    def test_zero_model_zero_overhead(self):
        assert csd_overhead_per_period(ZERO_OVERHEAD, [5, 5, 5], 1) == 0


class TestConsistency:
    @given(
        st.lists(st.tuples(st.integers(5, 500), st.integers(1, 100)),
                 min_size=2, max_size=8),
        st.integers(0, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_csd_single_dp_band_matches_edf_ideal(self, raw, _):
        tasks = [
            TaskSpec(name=f"t{i}", period=ms(p), wcet=min(ms(c), ms(p)))
            for i, (p, c) in enumerate(raw)
        ]
        w = Workload(tasks)
        assert csd_schedulable(w, (len(w),), ZERO_OVERHEAD) == edf_schedulable(
            w, ZERO_OVERHEAD
        )

    @given(
        st.lists(st.tuples(st.integers(5, 500), st.integers(1, 100)),
                 min_size=2, max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_csd_pure_fp_matches_rm_ideal(self, raw):
        tasks = [
            TaskSpec(name=f"t{i}", period=ms(p), wcet=min(ms(c), ms(p)))
            for i, (p, c) in enumerate(raw)
        ]
        w = Workload(tasks)
        assert csd_schedulable(w, (0,), ZERO_OVERHEAD) == rm_schedulable(
            w, ZERO_OVERHEAD
        )

    @given(
        st.lists(st.tuples(st.integers(5, 100), st.integers(1, 20)),
                 min_size=3, max_size=7),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_feasible_workload_stays_feasible_when_scaled_down(self, raw, data):
        tasks = [
            TaskSpec(name=f"t{i}", period=ms(p), wcet=min(ms(c), ms(p)))
            for i, (p, c) in enumerate(raw)
        ]
        w = Workload(tasks)
        r = data.draw(st.integers(0, len(w)))
        model = OverheadModel()
        if csd_schedulable(w, (r,), model):
            smaller = w.scaled(0.5)
            assert csd_schedulable(smaller, (r,), model)
