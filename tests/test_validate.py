"""Soundness cross-validation: analytic feasibility vs the live kernel."""

import pytest

from repro.core.overhead import OverheadModel
from repro.core.task import table2_workload
from repro.sim.validate import validate_breakdown
from repro.sim.workload import generate_workload


class TestValidateBreakdown:
    @pytest.mark.parametrize("policy", ["edf", "rm"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasible_side_never_misses(self, policy, seed):
        w = generate_workload(6, seed=seed, utilization=0.5)
        result = validate_breakdown(w, policy)
        assert result.sound, (
            f"analytic breakdown ({result.breakdown_utilization:.3f}) claimed "
            f"feasible at scale {result.feasible_scale_tested:.3f} but the "
            f"kernel missed {result.violations} deadlines"
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_csd_feasible_side_never_misses(self, seed):
        w = generate_workload(5, seed=seed, utilization=0.5)
        result = validate_breakdown(w, "csd-2")
        assert result.sound

    def test_table2_validates_under_edf(self):
        result = validate_breakdown(table2_workload(), "edf")
        assert result.sound
        assert result.breakdown_utilization > 0.9

    def test_result_fields(self):
        w = generate_workload(4, seed=3, utilization=0.4)
        result = validate_breakdown(w, "rm", model=OverheadModel())
        assert 0 < result.feasible_scale_tested
        assert result.horizon_ns > 0
        assert result.policy == "rm"
