"""Unit and property tests for the scheduler queue structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import ReadyHeap, Schedulable, SortedQueue, UnsortedQueue


def ent(name, key, ready=False, deadline=None):
    e = Schedulable(name, (key, name))
    e.ready = ready
    e.abs_deadline = deadline
    return e


class TestUnsortedQueue:
    def test_add_and_len(self):
        q = UnsortedQueue()
        q.add(ent("a", 1))
        q.add(ent("b", 2))
        assert len(q) == 2

    def test_double_add_rejected(self):
        q = UnsortedQueue()
        e = ent("a", 1)
        q.add(e)
        with pytest.raises(ValueError):
            q.add(e)

    def test_block_unblock_flags(self):
        q = UnsortedQueue()
        e = ent("a", 1, ready=True)
        q.add(e)
        assert q.ready_count == 1
        q.block(e)
        assert not e.ready and q.ready_count == 0
        q.unblock(e)
        assert e.ready and q.ready_count == 1

    def test_block_blocked_rejected(self):
        q = UnsortedQueue()
        e = ent("a", 1)
        q.add(e)
        with pytest.raises(ValueError):
            q.block(e)

    def test_select_earliest_deadline_ready(self):
        q = UnsortedQueue()
        early = ent("early", 5, ready=True, deadline=100)
        late = ent("late", 1, ready=True, deadline=200)
        blocked = ent("blocked", 1, ready=False, deadline=10)
        for e in (late, early, blocked):
            q.add(e)
        assert q.select() is early

    def test_select_ignores_blocked(self):
        q = UnsortedQueue()
        blocked = ent("b", 1, deadline=1)
        q.add(blocked)
        assert q.select() is None

    def test_select_scans_whole_list(self):
        """t_s is O(n): the scan visits every task."""
        q = UnsortedQueue()
        for i in range(10):
            q.add(ent(f"t{i}", i, ready=True, deadline=100 + i))
        q.select()
        assert q.last_scan_steps == 10

    def test_inherited_deadline_wins_selection(self):
        q = UnsortedQueue()
        a = ent("a", 1, ready=True, deadline=100)
        b = ent("b", 2, ready=True, deadline=200)
        q.add(a)
        q.add(b)
        b.pi_deadline = 50
        assert q.select() is b

    def test_remove(self):
        q = UnsortedQueue()
        e = ent("a", 1, ready=True)
        q.add(e)
        q.remove(e)
        assert len(q) == 0 and q.ready_count == 0
        assert e not in q

    def test_operations_on_foreign_task_rejected(self):
        q = UnsortedQueue()
        with pytest.raises(ValueError):
            q.block(ent("x", 1, ready=True))


class TestSortedQueue:
    def build(self, ready_mask="rrr", keys=(1, 2, 3)):
        q = SortedQueue()
        entries = []
        for i, (key, r) in enumerate(zip(keys, ready_mask)):
            e = ent(f"t{i}", key, ready=(r == "r"))
            q.add(e)
            entries.append(e)
        return q, entries

    def test_sorted_insertion(self):
        q = SortedQueue()
        for key in (5, 1, 3):
            q.add(ent(f"k{key}", key))
        assert [t.base_key[0] for t in q] == [1, 3, 5]
        q.check_invariants()

    def test_select_is_highestp(self):
        q, (a, b, c) = self.build("brr")
        assert q.select() is b
        assert q.last_scan_steps == 1  # O(1)

    def test_select_empty_ready(self):
        q, _ = self.build("bbb")
        assert q.select() is None

    def test_block_advances_highestp(self):
        q, (a, b, c) = self.build("rrr")
        q.block(a)
        assert q.select() is b
        q.check_invariants()

    def test_unblock_promotes_highestp(self):
        q, (a, b, c) = self.build("brr")
        q.unblock(a)
        assert q.select() is a
        q.check_invariants()

    def test_unblock_lower_does_not_promote(self):
        q, (a, b, c) = self.build("rrb")
        q.unblock(c)
        assert q.select() is a

    def test_remove_highestp(self):
        q, (a, b, c) = self.build("rrr")
        q.remove(a)
        assert q.select() is b
        assert len(q) == 2
        q.check_invariants()

    def test_reposition_after_key_change(self):
        q, (a, b, c) = self.build("rrr")
        c.effective_key = (0, c.name)
        q.reposition(c)
        assert q.select() is c
        q.check_invariants()

    def test_swap_positions_exchanges_keys_and_nodes(self):
        """The Section 6.2 place-holder trick."""
        q, (a, b, c) = self.build("rbr", keys=(1, 2, 3))
        # c (low prio, ready) inherits b's position/priority; b is the
        # blocked place-holder.
        q.swap_positions(c, b)
        assert [t.name for t in q] == ["t0", "t2", "t1"]
        assert c.effective_key == (2, "t1")
        assert b.effective_key == (3, "t2")
        q.check_invariants()
        # Swap back restores everything.
        q.swap_positions(c, b)
        assert [t.name for t in q] == ["t0", "t1", "t2"]
        assert c.effective_key == (3, "t2")
        q.check_invariants()

    def test_swap_updates_highestp(self):
        q, (a, b, c) = self.build("brb", keys=(1, 2, 3))
        # b is the only ready task; swap b with blocked a above it.
        q.swap_positions(b, a)
        assert q.select() is b
        q.check_invariants()

    def test_move_before(self):
        q, (a, b, c) = self.build("rrr")
        q.move_before(c, a)
        assert [t.name for t in q] == ["t2", "t0", "t1"]
        assert c.effective_key == a.effective_key
        assert q.select() is c

    def test_iteration_order_is_priority_order(self):
        q, entries = self.build("rrr", keys=(10, 20, 30))
        assert q.tasks() == entries


class TestReadyHeap:
    def test_select_highest_priority_ready(self):
        q = ReadyHeap()
        a, b = ent("a", 2, ready=True), ent("b", 1, ready=True)
        q.add(a)
        q.add(b)
        assert q.select() is b

    def test_block_removes_from_heap(self):
        q = ReadyHeap()
        a, b = ent("a", 1, ready=True), ent("b", 2, ready=True)
        q.add(a)
        q.add(b)
        q.block(a)
        assert q.select() is b

    def test_unblock_inserts(self):
        q = ReadyHeap()
        a = ent("a", 1)
        q.add(a)
        assert q.select() is None
        q.unblock(a)
        assert q.select() is a

    def test_membership(self):
        q = ReadyHeap()
        a = ent("a", 1, ready=True)
        q.add(a)
        assert a in q
        q.remove(a)
        assert a not in q


# ----------------------------------------------------------------------
# Property-based: random op sequences keep the SortedQueue invariants
# and make it agree with a naive reference model.
# ----------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["block", "unblock", "select", "swap"]),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=7)),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(
    ready=st.lists(st.booleans(), min_size=1, max_size=8),
    ops=ops_strategy,
)
def test_sorted_queue_random_ops_keep_invariants(ready, ops):
    q = SortedQueue()
    entries = []
    for i, r in enumerate(ready):
        e = ent(f"t{i}", i, ready=r)
        q.add(e)
        entries.append(e)
    n = len(entries)
    for op, i, j in ops:
        a, b = entries[i % n], entries[j % n]
        if op == "block" and a.ready:
            q.block(a)
        elif op == "unblock" and not a.ready:
            q.unblock(a)
        elif op == "select":
            selected = q.select()
            ready_tasks = [t for t in q if t.ready]
            if ready_tasks:
                assert selected is ready_tasks[0]
            else:
                assert selected is None
        elif op == "swap" and a is not b:
            q.swap_positions(a, b)
        q.check_invariants()


@settings(max_examples=150, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=10),
    flips=st.lists(st.integers(min_value=0, max_value=9), max_size=40),
)
def test_ready_heap_matches_reference(keys, flips):
    heap = ReadyHeap()
    entries = []
    for i, key in enumerate(keys):
        e = ent(f"t{i}", (key, i), ready=True)
        heap.add(e)
        entries.append(e)
    for flip in flips:
        e = entries[flip % len(entries)]
        if e.ready:
            heap.block(e)
        else:
            heap.unblock(e)
        ready = [t for t in entries if t.ready]
        expected = min(ready, key=lambda t: t.effective_key) if ready else None
        assert heap.select() is expected
