"""Tests for the latency-percentile and PI-chain analyzers."""

import pytest

from repro.obs.analyzers import (
    blocking_report,
    latency_report,
    percentile,
    pi_chain_report,
    pi_chains,
    response_percentiles,
)
from repro.obs.collector import ObsCollector
from repro.obs.scenarios import DEMO_HORIZON_NS, pi_demo_kernel, run_pi_demo
from repro.sim.trace import Trace


class TestPercentile:
    def test_empty_returns_none(self):
        assert percentile([], 50) is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1], 101)

    def test_nearest_rank_returns_elements(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 50) == 20
        assert percentile(values, 75) == 30
        assert percentile(values, 100) == 40
        assert percentile(values, 0) == 10

    def test_single_value(self):
        assert percentile([7], 99) == 7


class TestResponsePercentiles:
    def test_off_mode_rejected(self):
        trace = Trace(record="off")
        with pytest.raises(ValueError, match="'off' mode"):
            response_percentiles(trace)

    def test_demo_values(self):
        _kernel, trace, _collector = run_pi_demo("standard")
        stats = response_percentiles(trace)
        assert set(stats) == {"a", "b", "c"}
        for task_stats in stats.values():
            assert task_stats["count"] == 2
            assert task_stats["p50"] <= task_stats["p99"] <= task_stats["max"]

    def test_report_renders_all_tasks(self):
        _kernel, trace, _collector = run_pi_demo("standard")
        report = latency_report(trace)
        for column in ("p50 us", "p95 us", "p99 us", "max us"):
            assert column in report
        for task in ("a", "b", "c"):
            assert task in report


class TestPiChains:
    def test_counters_mode_rejected(self):
        kernel = pi_demo_kernel("standard")
        collector = ObsCollector(mode="counters").attach(kernel)
        kernel.run_until(DEMO_HORIZON_NS)
        with pytest.raises(ValueError, match="full-mode"):
            pi_chains(collector)

    def test_standard_scheme_transitive_chain(self):
        _kernel, _trace, collector = run_pi_demo("standard")
        chains = pi_chains(collector)
        assert chains
        # The demo's signature chain: a donates through S to b, and
        # transitively through M to c.
        transitive = [c for c in chains if len(c.links) == 2]
        assert transitive, "expected a two-hop transitive chain"
        chain = transitive[0]
        assert chain.donor == "a"
        assert chain.holders == ["b", "c"]
        assert [sem for sem, _h, _k in chain.links] == ["S", "M"]
        assert chain.resolved_at is not None
        assert chain.duration_ns > 0

    def test_emeralds_scheme_produces_chains(self):
        _kernel, _trace, collector = run_pi_demo("emeralds")
        chains = pi_chains(collector)
        assert chains
        assert all(chain.links for chain in chains)

    def test_describe_mentions_sems_and_holders(self):
        _kernel, _trace, collector = run_pi_demo("standard")
        text = pi_chain_report(collector)
        assert "priority-inheritance chains" in text
        assert "[S] b" in text and "[M] c" in text
        assert "per-semaphore donation totals" in text


class TestBlockingReport:
    def test_demo_blocking_totals(self):
        _kernel, _trace, collector = run_pi_demo("standard")
        report = blocking_report(collector)
        assert "M" in report and "S" in report
        assert "blocked us" in report

    def test_empty_collector(self):
        assert "no semaphore blocking" in blocking_report(ObsCollector())
