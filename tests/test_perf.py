"""Tests for the perf subsystem: recording modes, the ring buffer,
the parallel sweep runner, the trajectory, counters, and the CLI.

The contract under test is the one the optimization work leans on:
recording less must not change *behavior* (job-level signatures are
identical across ``full`` and ``jobs-only``), parallel sweeps must be
bit-identical to serial ones, and the trajectory must catch
regressions against the committed baseline.
"""

import json

import pytest

from repro.core.overhead import OverheadModel
from repro.perf.counters import PerfReport, collect_report, merge_reports
from repro.perf.profiler import profile_call, profiled
from repro.perf.sweeps import WORKERS_ENV, parallel_map, resolve_workers
from repro.perf.trajectory import (
    RegressionError,
    append_entry,
    check_regression,
    config_hash,
    latest_entry,
    load_trajectory,
    make_entry,
)
from repro.sim.breakdown import figure_series
from repro.sim.kernelsim import simulate_workload
from repro.sim.trace import TRUNCATED, Trace
from repro.sim.workload import generate_workload
from repro.timeunits import ms


def _small_run(record):
    workload = generate_workload(6, seed=7, utilization=0.5)
    return simulate_workload(workload, "edf", duration=ms(100), record=record)


# ----------------------------------------------------------------------
# recording modes
# ----------------------------------------------------------------------
def test_recording_modes_same_behavior():
    """Recording less must not change what the kernel *does*: virtual
    time, switches, kernel time, and the job-level signature are all
    identical across modes."""
    kernel_full, trace_full = _small_run("full")
    kernel_jobs, trace_jobs = _small_run("jobs-only")
    kernel_off, trace_off = _small_run("off")

    assert kernel_full.now == kernel_jobs.now == kernel_off.now
    assert (
        trace_full.context_switches
        == trace_jobs.context_switches
        == trace_off.context_switches
    )
    assert (
        trace_full.kernel_time_total
        == trace_jobs.kernel_time_total
        == trace_off.kernel_time_total
    )
    assert trace_full.idle_time == trace_jobs.idle_time == trace_off.idle_time


def test_recording_modes_storage_contract():
    """full stores everything; jobs-only only jobs; off nothing."""
    _, trace_full = _small_run("full")
    _, trace_jobs = _small_run("jobs-only")
    _, trace_off = _small_run("off")

    assert trace_full.segments and trace_full.events and trace_full.jobs
    assert not trace_jobs.segments and not trace_jobs.events
    assert trace_jobs.jobs == trace_full.jobs
    assert not trace_off.segments and not trace_off.events and not trace_off.jobs


def test_job_signature_stable_across_full_and_jobs_only():
    """The job-level signature (no events) is mode-independent, so the
    cheap mode can stand in for the full one in determinism checks."""
    _, trace_full = _small_run("full")
    _, trace_jobs = _small_run("jobs-only")
    full_jobs_only_view = Trace(record="jobs-only")
    full_jobs_only_view.jobs = trace_full.jobs
    assert full_jobs_only_view.signature() == trace_jobs.signature()


def test_unknown_record_mode_rejected():
    with pytest.raises(ValueError):
        Trace(record="everything")
    with pytest.raises(ValueError):
        Trace(max_events=0)


# ----------------------------------------------------------------------
# event ring buffer
# ----------------------------------------------------------------------
def test_event_ring_buffer_caps_and_marks_truncation():
    trace = Trace(record="full", max_events=5)
    for i in range(12):
        trace.note(i, "tick", str(i))
    assert len(trace.events) == 5
    assert trace.events_dropped == 7
    assert trace.events_truncated
    log = trace.event_log()
    assert log[0][1] == TRUNCATED
    assert "7 older events dropped" in log[0][2]
    # The newest events survive.
    assert [e[0] for e in log[1:]] == [7, 8, 9, 10, 11]


def test_truncated_trace_refuses_signature():
    trace = Trace(record="full", max_events=2)
    for i in range(3):
        trace.note(i, "tick", str(i))
    with pytest.raises(ValueError):
        trace.signature()


# ----------------------------------------------------------------------
# parallel sweep runner
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def test_parallel_map_matches_serial_and_preserves_order():
    items = list(range(40))
    serial = parallel_map(_square, items, workers=1)
    parallel = parallel_map(_square, items, workers=2)
    assert serial == parallel == [x * x for x in items]


def test_parallel_map_empty_and_single():
    assert parallel_map(_square, [], workers=4) == []
    assert parallel_map(_square, [3], workers=4) == [9]


def test_resolve_workers_semantics(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1  # one per CPU
    monkeypatch.setenv(WORKERS_ENV, "5")
    assert resolve_workers(None) == 5
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_figure_series_parallel_identical_to_serial():
    """The Figures 3-5 sweep gives bit-identical results at any worker
    count (every cell regenerates its workloads from its own seed)."""
    kwargs = dict(
        task_counts=[5, 10],
        policies=["edf", "csd-2"],
        workloads_per_point=3,
        seed=11,
        model=OverheadModel(),
    )
    serial = figure_series(workers=1, **kwargs)
    fanned = figure_series(workers=2, **kwargs)
    assert serial.values == fanned.values


# ----------------------------------------------------------------------
# trajectory
# ----------------------------------------------------------------------
def _entry(label, throughput, config):
    report = {
        "sim_ns": 1000,
        "wall_s": 0.5,
        "throughput_sim_ns_per_s": throughput,
    }
    return make_entry(label, report, config)


def test_trajectory_append_load_latest(tmp_path):
    path = tmp_path / "traj.json"
    assert load_trajectory(path) == []
    config = {"workload": "w", "record": "jobs-only"}
    append_entry(path, _entry("first", 100.0, config))
    append_entry(path, _entry("second", 120.0, config))
    append_entry(path, _entry("other", 50.0, {"workload": "different"}))
    entries = load_trajectory(path)
    assert [e["label"] for e in entries] == ["first", "second", "other"]
    # latest_entry restricted to a configuration skips mismatches.
    assert latest_entry(entries, config_hash(config))["label"] == "second"
    assert latest_entry(entries)["label"] == "other"
    assert latest_entry(entries, config_hash({"no": "match"})) is None
    # The file is plain JSON -- the committed artifact stays reviewable.
    assert isinstance(json.loads(path.read_text()), list)


def test_check_regression_gate(tmp_path):
    path = tmp_path / "traj.json"
    config = {"workload": "w"}
    digest = config_hash(config)
    # No baseline yet: the check is a no-op.
    assert check_regression(path, 100.0, digest) is None
    append_entry(path, _entry("base", 100.0, config))
    # Within the allowed drop: returns the baseline it compared against.
    baseline = check_regression(path, 80.0, digest, max_regression=0.30)
    assert baseline["label"] == "base"
    # Faster is always fine.
    assert check_regression(path, 250.0, digest)["label"] == "base"
    # Below the floor: hard failure.
    with pytest.raises(RegressionError):
        check_regression(path, 60.0, digest, max_regression=0.30)
    # A different configuration is never compared.
    assert check_regression(path, 1.0, config_hash({"other": 1})) is None


def test_config_hash_canonical():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})
    assert len(config_hash({"a": 1})) == 16


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
def test_collect_and_merge_reports():
    kernel, _ = _small_run("jobs-only")
    report = collect_report(kernel, wall_s=0.5, label="r")
    assert report.sim_ns == kernel.now >= ms(100)
    assert report.events_popped > 0
    assert report.dispatches > 0
    assert report.throughput_sim_ns_per_s == report.sim_ns / 0.5

    merged = merge_reports("pool", [report, report])
    assert merged.sim_ns == 2 * report.sim_ns
    assert merged.wall_s == 1.0
    assert merged.events_popped == 2 * report.events_popped

    data = merged.as_dict()
    assert data["throughput_sim_ns_per_s"] == round(merged.throughput_sim_ns_per_s)
    assert "sim_ns" in data and "wall_s" in data
    assert "perf [pool]" in merged.render()


def test_zero_wall_time_throughput_is_zero():
    report = PerfReport("z", 10, 0.0, 0, 0, 0, 0, 0)
    assert report.throughput_sim_ns_per_s == 0.0
    assert report.events_per_s == 0.0


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
def test_profile_call_returns_result_and_stats():
    result, text = profile_call(_square, 7, limit=5)
    assert result == 49
    assert "function calls" in text


def test_profiled_context_manager():
    with profiled(limit=5) as holder:
        _square(3)
    assert holder and "function calls" in holder[0]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_perf_cli_append_and_check(tmp_path, capsys):
    """End-to-end: measure, append, then re-check against the entry."""
    from repro.reproduce import main

    traj = tmp_path / "traj.json"
    rc = main(["perf", "--no-signatures", "--append", str(traj),
               "--check", str(traj)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "no comparable baseline" in out
    entries = load_trajectory(traj)
    assert len(entries) == 1
    assert entries[0]["label"] == "perf-cli"
    assert entries[0]["throughput_sim_ns_per_s"] > 0

    # Second run now has a baseline with the same config hash.
    rc = main(["perf", "--no-signatures", "--check", str(traj)])
    assert rc == 0
    assert "vs baseline 'perf-cli'" in capsys.readouterr().out


def test_perf_cli_regression_failure(tmp_path, capsys):
    """An absurdly fast fake baseline forces the gate to fire."""
    from repro.perf.workloads import throughput_config
    from repro.reproduce import main

    traj = tmp_path / "traj.json"
    append_entry(
        traj, _entry("fake", 1e18, throughput_config("jobs-only"))
    )
    rc = main(["perf", "--no-signatures", "--check", str(traj)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().err
