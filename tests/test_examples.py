"""Integration: every example application runs clean, end to end.

The examples are full applications on the public API; running their
``main()`` exercises scheduler + sync + IPC + devices (+ the cluster,
for the distributed ones) together.  Each example asserts its own
schedulability, so a silent regression anywhere surfaces here.
"""

import importlib
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "examples"))

EXAMPLES = [
    "quickstart",
    "scheduler_comparison",
    "engine_control",
    "voice_pipeline",
    "distributed_control",
    "avionics_cluster",
]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    module = importlib.import_module(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 200  # a real report was printed


def test_quickstart_reports_no_violations(capsys):
    module = importlib.import_module("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "deadline violations: 0" in out


def test_engine_control_shows_emeralds_savings(capsys):
    module = importlib.import_module("engine_control")
    module.main()
    out = capsys.readouterr().out
    assert "saved" in out
    assert "hint-parks" in out


def test_scheduler_comparison_shows_tau5_miss(capsys):
    module = importlib.import_module("scheduler_comparison")
    module.main()
    out = capsys.readouterr().out
    assert "tau5" in out
    assert "breakdown" in out.lower()
