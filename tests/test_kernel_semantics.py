"""Remaining semantic corners: wake-up ordering and interrupt masking."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import (
    Acquire,
    Call,
    Compute,
    CvSignal,
    CvWait,
    Program,
    Release,
    Wait,
)
from repro.timeunits import ms, us


class TestWakeOrdering:
    def test_semaphore_grants_highest_priority_waiter(self):
        """Three waiters pile up; the grant order follows priority, not
        arrival order."""
        k = Kernel(EDFScheduler(ZERO_OVERHEAD), sem_scheme="standard")
        k.create_semaphore("S")
        order = []
        body = Program(
            [Acquire("S"), Call(lambda kern, t: order.append(t.name)),
             Compute(us(10)), Release("S")]
        )
        k.create_thread("holder", Program(
            [Acquire("S"), Compute(ms(1)), Release("S")]), period=ms(100),
            deadline=ms(90))
        # Release in ascending priority so each can reach its acquire
        # before priority inheritance boosts the holder above it
        # (arrival order is low, mid, high -- grant order must not be).
        k.create_thread("w_low", body, period=ms(100), deadline=ms(80), phase=us(10))
        k.create_thread("w_mid", body, period=ms(100), deadline=ms(50), phase=us(20))
        k.create_thread("w_high", body, period=ms(100), deadline=ms(20), phase=us(30))
        k.run_until(ms(10))
        assert order == ["w_high", "w_mid", "w_low"]

    def test_cv_signal_wakes_highest_priority_waiter(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD), sem_scheme="standard")
        k.create_semaphore("m")
        k.create_condvar("cv")
        order = []
        body = Program(
            [Acquire("m"), CvWait("cv", "m"),
             Call(lambda kern, t: order.append(t.name)), Release("m")]
        )
        k.create_thread("low", body, period=ms(100), deadline=ms(80))
        k.create_thread("high", body, period=ms(100), deadline=ms(20), phase=us(10))
        k.create_thread(
            "signaller",
            Program([Compute(ms(1)), Acquire("m"), CvSignal("cv"),
                     CvSignal("cv"), Release("m")]),
            period=ms(100), deadline=ms(90),
        )
        k.run_until(ms(10))
        assert order == ["high", "low"]

    def test_event_broadcast_wakes_in_priority_order(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_event("E")
        order = []
        body = Program([Wait("E"), Call(lambda kern, t: order.append(t.name))])
        k.create_thread("third", body, period=ms(100), deadline=ms(70))
        k.create_thread("first", body, period=ms(100), deadline=ms(10))
        k.create_thread("second", body, period=ms(100), deadline=ms(40))
        k.create_thread(
            "sig", Program([Compute(us(100)),
                            Call(lambda kern, t: kern.events_by_name["E"].signal(kern))]),
            period=ms(100), deadline=ms(90),
        )
        k.run_until(ms(10))
        assert order == ["first", "second", "third"]


class TestInterruptMaskingDuringKernelTime:
    def test_event_due_during_charge_is_deferred_not_lost(self):
        """An event that falls due while the kernel is charging time
        fires at the next dispatch point (same virtual time ordering,
        no loss) -- the 'interrupts masked in kernel mode' behaviour."""
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        hits = []
        k.interrupts.register(1, lambda kern, vec: hits.append(kern.now))
        # Schedule the interrupt *inside* the window where the kernel
        # charges release costs for the first job (at t=0 the release
        # charges t_u + t_s + context switch ~ 13 us).
        k.interrupts.raise_interrupt(1, at=us(5))
        k.create_thread("t", Program([Compute(ms(1))]), period=ms(10))
        k.run_until(ms(1))
        assert len(hits) == 1
        # Delivered at or after its nominal time, never before.
        assert hits[0] >= us(5)

    def test_charge_advances_virtual_time(self):
        model = OverheadModel()
        k = Kernel(EDFScheduler(model))
        before = k.now
        k.charge(us(7), "sched")
        assert k.now == before + us(7)
        assert k.trace.kernel_time["sched"] == us(7)

    def test_zero_charge_is_free(self):
        k = Kernel(EDFScheduler(OverheadModel()))
        k.charge(0, "sched")
        assert k.trace.kernel_time_total == 0
