"""Unit tests for the integer time helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.timeunits import ms, seconds, to_ms, to_s, to_us, us


def test_us_converts_to_nanoseconds():
    assert us(1) == 1_000
    assert us(0.25) == 250
    assert us(1.2) == 1_200


def test_ms_converts_to_nanoseconds():
    assert ms(1) == 1_000_000
    assert ms(0.5) == 500_000


def test_seconds_converts_to_nanoseconds():
    assert seconds(1) == 1_000_000_000
    assert seconds(0.001) == ms(1)


def test_rounding_is_nearest():
    assert us(0.0004) == 0
    assert us(0.0006) == 1


def test_round_trips():
    assert to_us(us(17.5)) == 17.5
    assert to_ms(ms(42)) == 42
    assert to_s(seconds(3)) == 3


@given(st.integers(min_value=0, max_value=10**9))
def test_ms_us_consistency(value):
    assert ms(value) == us(value) * 1_000


@given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_to_us_inverts_us_within_rounding(value):
    assert abs(to_us(us(value)) - value) <= 0.0005
