"""Smoke tests for the command-line reproduction harness."""

import pytest

from repro import reproduce


@pytest.mark.parametrize(
    "target", ["table1", "table2", "table3", "figure2", "cyclic", "ipc"]
)
def test_cheap_targets_run(target, capsys):
    assert reproduce.main([target, "--quick"]) == 0
    out = capsys.readouterr().out
    assert "done in" in out
    assert len(out) > 100


def test_figure11_quick(capsys):
    assert reproduce.main(["figure11", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "DP queue" in out and "FP queue" in out
    assert "29.4" in out  # the flat FP line


def test_unknown_target_rejected():
    with pytest.raises(SystemExit):
        reproduce.main(["figure99"])


def test_faults_subcommand(capsys):
    assert reproduce.main(["faults", "--seed", "42", "--wcet-overrun", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "Chaos run: seed 42" in out
    assert "deadline-miss ratio" in out
    assert "trace signature" in out


def test_faults_subcommand_is_deterministic(capsys):
    args = ["faults", "--seed", "7", "--wcet-overrun", "20", "--crash", "5"]
    assert reproduce.main(args) == 0
    first = capsys.readouterr().out
    assert reproduce.main(args) == 0
    assert capsys.readouterr().out == first


def test_faults_no_defenses_flag(capsys):
    assert reproduce.main(["faults", "--crash", "10", "--no-defenses"]) == 0
    out = capsys.readouterr().out
    assert "defenses off" in out


def test_default_runs_everything_quick_is_not_tested_here():
    """Running all targets takes minutes; covered by the benchmarks."""
    assert set(reproduce.TARGETS) >= {
        "table1",
        "table2",
        "table3",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "figure11",
        "ipc",
        "cyclic",
        "footprint",
    }


def test_trace_subcommand_exports_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.obs.tracer import REQUIRED_TRACE_KEYS, validate_chrome_trace

    out = tmp_path / "demo.trace.json"
    assert reproduce.main(["trace", "--demo", "pi", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) > 0
    for key in REQUIRED_TRACE_KEYS:
        assert key in payload
    stdout = capsys.readouterr().out
    assert "trace events" in stdout


def test_metrics_subcommand_text_report(capsys):
    assert reproduce.main(["metrics", "--demo", "pi"]) == 0
    out = capsys.readouterr().out
    assert "per-task response time" in out
    assert "per-semaphore blocking" in out
    assert "priority-inheritance chains" in out
    assert "p99 us" in out


def test_metrics_subcommand_formats(tmp_path, capsys):
    import json

    assert reproduce.main(["metrics", "--demo", "pi", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "task_response_ns" in payload
    out = tmp_path / "m.prom"
    assert reproduce.main(
        ["metrics", "--demo", "pi", "--format", "prom", "--out", str(out)]
    ) == 0
    capsys.readouterr()
    assert "# TYPE sem_blocks_total counter" in out.read_text()


def test_metrics_subcommand_is_deterministic(capsys):
    args = ["metrics", "--demo", "pi", "--scheme", "emeralds"]
    assert reproduce.main(args) == 0
    first = capsys.readouterr().out
    assert reproduce.main(args) == 0
    assert capsys.readouterr().out == first


def test_every_benchmark_file_is_registered():
    """The explicit registry replaces source-grep discovery: every
    bench_*.py must be declared, and every declaration must exist."""
    import sys
    from pathlib import Path

    bench_dir = Path(reproduce.__file__).parent.parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        import common
        on_disk = {p.stem[len("bench_"):] for p in bench_dir.glob("bench_*.py")}
        assert on_disk == set(common.BENCHMARKS)
        assert set(common.BENCHMARKS.values()) <= {"cli", "pytest"}
    finally:
        sys.path.remove(str(bench_dir))
