"""Smoke tests for the command-line reproduction harness."""

import pytest

from repro import reproduce


@pytest.mark.parametrize(
    "target", ["table1", "table2", "table3", "figure2", "cyclic", "ipc"]
)
def test_cheap_targets_run(target, capsys):
    assert reproduce.main([target, "--quick"]) == 0
    out = capsys.readouterr().out
    assert "done in" in out
    assert len(out) > 100


def test_figure11_quick(capsys):
    assert reproduce.main(["figure11", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "DP queue" in out and "FP queue" in out
    assert "29.4" in out  # the flat FP line


def test_unknown_target_rejected():
    with pytest.raises(SystemExit):
        reproduce.main(["figure99"])


def test_faults_subcommand(capsys):
    assert reproduce.main(["faults", "--seed", "42", "--wcet-overrun", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "Chaos run: seed 42" in out
    assert "deadline-miss ratio" in out
    assert "trace signature" in out


def test_faults_subcommand_is_deterministic(capsys):
    args = ["faults", "--seed", "7", "--wcet-overrun", "20", "--crash", "5"]
    assert reproduce.main(args) == 0
    first = capsys.readouterr().out
    assert reproduce.main(args) == 0
    assert capsys.readouterr().out == first


def test_faults_no_defenses_flag(capsys):
    assert reproduce.main(["faults", "--crash", "10", "--no-defenses"]) == 0
    out = capsys.readouterr().out
    assert "defenses off" in out


def test_default_runs_everything_quick_is_not_tested_here():
    """Running all targets takes minutes; covered by the benchmarks."""
    assert set(reproduce.TARGETS) >= {
        "table1",
        "table2",
        "table3",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "figure11",
        "ipc",
        "cyclic",
        "footprint",
    }
