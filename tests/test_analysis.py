"""Tests for the table/series rendering helpers."""

import pytest

from repro.analysis import ascii_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "22" in lines[-1]
        # All data rows have equal width.
        assert len(lines[-1]) == len(lines[-2])

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_mixed_types_stringified(self):
        out = format_table(["k"], [[3.14159], [None], [True]])
        assert "3.14159" in out and "None" in out and "True" in out


class TestAsciiSeries:
    def test_contains_table_and_plot(self):
        out = ascii_series(
            [1, 2, 3],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
            title="demo",
            x_label="n",
        )
        assert "demo" in out
        assert "o=up" in out and "x=down" in out
        assert "|" in out

    def test_single_series(self):
        out = ascii_series([1, 2], {"only": [5.0, 6.0]})
        assert "o=only" in out

    def test_flat_series_does_not_crash(self):
        out = ascii_series([1, 2, 3], {"flat": [4.0, 4.0, 4.0]})
        assert "flat" in out

    def test_empty_series(self):
        out = ascii_series([], {"s": []})
        assert "s" in out

    def test_values_appear_in_rows(self):
        out = ascii_series([10, 20], {"a": [42.5, 99.9]})
        assert "42.5" in out
        assert "99.9" in out

    def test_overlap_marker(self):
        out = ascii_series([1], {"a": [1.0], "b": [1.0]})
        assert "*" in out
