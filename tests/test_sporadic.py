"""Tests for the sporadic minimum-inter-arrival admission guard."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.program import Compute, Program
from repro.timeunits import ms, us


def sporadic_kernel(mit=ms(10)):
    k = Kernel(EDFScheduler(ZERO_OVERHEAD))
    k.create_thread(
        "sp", Program([Compute(us(100))]), priority=1, deadline=ms(5),
        min_interarrival=mit,
    )
    return k


class TestSporadicAdmission:
    def test_first_activation_accepted(self):
        k = sporadic_kernel()
        assert k.activate("sp") is True
        trace = k.run_until(ms(1))
        assert len(trace.jobs_of("sp")) == 1

    def test_too_fast_activation_rejected(self):
        k = sporadic_kernel(mit=ms(10))
        k.activate("sp")
        k.run_until(ms(2))
        assert k.activate("sp") is False
        trace = k.run_until(ms(5))
        assert len(trace.jobs_of("sp")) == 1
        assert any(kind == "sporadic-rejected" for _, kind, _ in trace.events)

    def test_activation_after_mit_accepted(self):
        k = sporadic_kernel(mit=ms(10))
        k.activate("sp")
        k.run_until(ms(10))
        assert k.activate("sp") is True
        trace = k.run_until(ms(15))
        assert len(trace.jobs_of("sp")) == 2

    def test_burst_via_interrupts_is_throttled(self):
        k = sporadic_kernel(mit=ms(10))
        for t in range(0, 5):
            k.activate("sp", at=ms(t))
        trace = k.run_until(ms(20))
        assert len(trace.jobs_of("sp")) == 1

    def test_mit_on_periodic_rejected(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        with pytest.raises(KernelError):
            k.create_thread(
                "p", Program([Compute(1)]), period=ms(10), min_interarrival=ms(5)
            )

    def test_nonpositive_mit_rejected(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        with pytest.raises(KernelError):
            k.create_thread(
                "sp", Program([Compute(1)]), priority=1, min_interarrival=0
            )

    def test_no_mit_means_no_throttling(self):
        k = Kernel(EDFScheduler(ZERO_OVERHEAD))
        k.create_thread("sp", Program([Compute(us(10))]), priority=1)
        k.activate("sp")
        k.run_until(us(50))
        assert k.activate("sp") is True
        trace = k.run_until(ms(1))
        assert len(trace.jobs_of("sp")) == 2
