"""Tests for the fieldbus response-time analysis ([37,40]-style layer)."""

import pytest

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Program, Wait
from repro.net import Cluster, Fieldbus, net_send
from repro.net.analysis import (
    MessageStream,
    assign_deadline_monotonic_ids,
    bus_response_times,
    bus_schedulable,
    bus_utilization,
)
from repro.timeunits import ms, us


BUS = Fieldbus(1_000_000)
FRAME8 = BUS.frame_time_ns(8)  # 111 us


def stream(name, can_id, period_ms, size=8, deadline_ms=None):
    return MessageStream(
        name=name,
        can_id=can_id,
        size=size,
        period=ms(period_ms),
        deadline=ms(deadline_ms) if deadline_ms else None,
    )


class TestAnalysis:
    def test_single_stream_response_is_wire_time(self):
        r = bus_response_times([stream("a", 1, 10)], BUS)
        assert r["a"] == FRAME8

    def test_highest_priority_pays_one_blocking_frame(self):
        streams = [stream("hi", 1, 10), stream("lo", 2, 50)]
        r = bus_response_times(streams, BUS)
        # hi: blocked by one lo frame (non-preemption) + its own time.
        assert r["hi"] == 2 * FRAME8
        # lo: waits for hi frames released during its queueing window.
        assert r["lo"] >= 2 * FRAME8

    def test_interference_accumulates(self):
        streams = [
            stream("a", 1, 1),  # one frame per ms: 11.1% of the wire
            stream("b", 2, 1),
            stream("c", 3, 10),
        ]
        r = bus_response_times(streams, BUS)
        assert r["c"] is not None
        assert r["c"] >= 3 * FRAME8

    def test_overload_unschedulable(self):
        # 10 streams at 1 ms = 111% of the wire.
        streams = [stream(f"s{i}", i, 1) for i in range(10)]
        assert not bus_schedulable(streams, BUS)

    def test_utilization(self):
        u = bus_utilization([stream("a", 1, 10)], BUS)
        assert u == pytest.approx(FRAME8 / ms(10))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MessageStream(name="x", can_id=1, size=8, period=0)
        with pytest.raises(ValueError):
            MessageStream(name="x", can_id=1, size=8, period=10, deadline=0)


class TestDMAssignment:
    def test_orders_by_deadline(self):
        streams = [
            stream("slow", 99, 100),
            stream("urgent", 98, 100, deadline_ms=2),
            stream("mid", 97, 20),
        ]
        assigned = assign_deadline_monotonic_ids(streams, base_id=0x10)
        by_name = {s.name: s.can_id for s in assigned}
        assert by_name["urgent"] < by_name["mid"] < by_name["slow"]

    def test_dm_rescues_a_tight_deadline(self):
        """A long-period stream with a tight deadline is unschedulable
        with period-ordered identifiers but fine after DM assignment."""
        streams = [
            stream("fast1", 1, 2),            # 2 ms period
            stream("fast2", 2, 2),
            stream("fast3", 3, 2),
            stream("fast4", 4, 2),
            stream("alarm", 5, 100, deadline_ms=0.4),  # tight!
        ]
        assert not bus_schedulable(streams, BUS)
        assert bus_schedulable(assign_deadline_monotonic_ids(streams), BUS)


class TestAnalysisVsSimulation:
    def test_simulated_latency_never_exceeds_analysis(self):
        """The analysis bounds what the simulated bus actually does."""
        spec = [
            ("hi", 0x01, 10),
            ("mid", 0x02, 20),
            ("lo", 0x03, 40),
        ]
        streams = [stream(n, i, p) for n, i, p in spec]
        bounds = bus_response_times(streams, BUS)
        assert all(v is not None for v in bounds.values())

        cluster = Cluster(Fieldbus(1_000_000))
        latencies = {n: [] for n, _, _ in spec}
        for name, can_id, period in spec:
            k = Kernel(EDFScheduler(ZERO_OVERHEAD))
            iface = cluster.add_node(f"tx-{name}", k)

            def send(kern, thread, _iface=iface, _id=can_id):
                from repro.net import Frame

                _iface.transmit(Frame(can_id=_id, size=8, payload=kern.now))

            k.create_thread(
                "tx", Program([Call(send)]), period=ms(period), deadline=ms(period)
            )
        sink = Kernel(EDFScheduler(ZERO_OVERHEAD))
        sink_iface = cluster.add_node("sink", sink)
        id_to_name = {i: n for n, i, _ in spec}

        def record(kern, thread):
            while True:
                frame = sink_iface.receive()
                if frame is None:
                    break
                latencies[id_to_name[frame.can_id]].append(kern.now - frame.payload)

        sink.create_thread(
            "rx",
            Program([Wait(sink_iface.rx_event_name), Call(record)]),
            period=ms(2),
            deadline=ms(2),
        )
        cluster.run_until(ms(400))
        for name, observed in latencies.items():
            assert observed, f"no {name} frames observed"
            # Observed latency includes the rx driver's dispatch (one
            # driver period at most); subtract nothing, just check the
            # queueing+wire portion never exceeds the analytic bound
            # plus that slack.
            assert max(observed) <= bounds[name] + ms(2) + us(100)
