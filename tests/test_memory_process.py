"""Tests for memory regions, protection checks, and processes."""

import pytest

from repro.kernel.memory import MemoryMap, ProtectionFault, Region
from repro.kernel.process import AddressSpaceAllocator, Process


class TestRegion:
    def test_extent(self):
        r = Region("r", base=100, size=50)
        assert r.end == 150
        assert r.contains(100)
        assert r.contains(149)
        assert not r.contains(150)
        assert r.contains(100, 50)
        assert not r.contains(100, 51)

    def test_overlap(self):
        a = Region("a", 0, 100)
        assert a.overlaps(Region("b", 50, 10))
        assert not a.overlaps(Region("c", 100, 10))

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Region("bad", -1, 10)
        with pytest.raises(ValueError):
            Region("bad", 0, 0)


class TestMemoryMap:
    def test_map_and_lookup(self):
        m = MemoryMap()
        m.map(Region("code", 0, 100, writable=False))
        assert "code" in m
        assert m.region("code").base == 0

    def test_duplicate_name_rejected(self):
        m = MemoryMap()
        m.map(Region("r", 0, 10))
        with pytest.raises(ValueError):
            m.map(Region("r", 100, 10))

    def test_overlap_rejected(self):
        m = MemoryMap()
        m.map(Region("a", 0, 100))
        with pytest.raises(ValueError):
            m.map(Region("b", 50, 100))

    def test_unmap(self):
        m = MemoryMap()
        m.map(Region("r", 0, 10))
        m.unmap("r")
        assert "r" not in m
        with pytest.raises(KeyError):
            m.unmap("r")

    def test_unknown_region_faults(self):
        with pytest.raises(ProtectionFault):
            MemoryMap().region("ghost")

    def test_read_protection(self):
        m = MemoryMap()
        m.map(Region("wo", 0, 10, readable=False))
        with pytest.raises(ProtectionFault):
            m.check_readable("wo")

    def test_write_protection(self):
        m = MemoryMap()
        m.map(Region("ro", 0, 10, writable=False))
        with pytest.raises(ProtectionFault):
            m.check_writable("ro")
        m.check_readable("ro")  # reading is fine

    def test_length_checks(self):
        m = MemoryMap()
        m.map(Region("small", 0, 8))
        with pytest.raises(ProtectionFault):
            m.check_readable("small", 9)
        with pytest.raises(ProtectionFault):
            m.check_writable("small", 16)
        m.check_writable("small", 8)

    def test_find_by_address(self):
        m = MemoryMap()
        m.map(Region("a", 0, 10))
        m.map(Region("b", 20, 10))
        assert m.find(25).name == "b"
        assert m.find(15) is None


class TestAllocator:
    def test_bump_allocation(self):
        a = AddressSpaceAllocator(total_bytes=100)
        assert a.allocate(40) == 0
        assert a.allocate(40) == 40
        assert a.used_bytes == 80
        assert a.free_bytes == 20

    def test_exhaustion(self):
        a = AddressSpaceAllocator(total_bytes=10)
        with pytest.raises(MemoryError):
            a.allocate(11)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            AddressSpaceAllocator(0)
        with pytest.raises(ValueError):
            AddressSpaceAllocator(10).allocate(0)


class TestProcess:
    def test_map_region_via_allocator(self):
        p = Process("app", allocator=AddressSpaceAllocator(1024))
        r1 = p.map_region("data", 100)
        r2 = p.map_region("stack", 200)
        assert r1.base == 0
        assert r2.base == 100
        assert len(p.memory) == 2

    def test_explicit_base(self):
        p = Process("app")
        region = p.map_region("mmio", 16, base=0xF000)
        assert region.base == 0xF000

    def test_no_allocator_requires_base(self):
        with pytest.raises(ValueError):
            Process("app").map_region("data", 10)
