"""Golden-file tests for the Chrome trace and Prometheus exports.

The goldens under ``tests/golden/`` are the exports of the standard-
scheme transitive-PI demo (two 10 ms periods of virtual time).  They
pin byte-level determinism: any change to the export format or to the
demo's schedule shows up as a diff here.  Regenerate deliberately
with::

    PYTHONPATH=src python - <<'EOF'
    from repro.obs.scenarios import run_pi_demo
    from repro.obs.tracer import export_chrome_trace
    k, t, c = run_pi_demo("standard")
    export_chrome_trace("tests/golden/pi_demo.trace.json", t, c)
    open("tests/golden/pi_demo.prom", "w").write(c.metrics_prometheus())
    open("tests/golden/pi_demo.metrics.json", "w").write(c.metrics_json() + "\n")
    EOF
"""

import json
from pathlib import Path

import pytest

from repro.obs.scenarios import run_pi_demo
from repro.obs.tracer import (
    REQUIRED_TRACE_KEYS,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def demo():
    return run_pi_demo("standard")


class TestChromeTrace:
    def test_matches_golden(self, demo, tmp_path):
        _kernel, trace, collector = demo
        out = tmp_path / "trace.json"
        export_chrome_trace(out, trace, collector)
        assert out.read_text() == (GOLDEN_DIR / "pi_demo.trace.json").read_text()

    def test_golden_is_valid(self):
        payload = json.loads((GOLDEN_DIR / "pi_demo.trace.json").read_text())
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"]) > 0
        for key in REQUIRED_TRACE_KEYS:
            assert key in payload

    def test_has_job_spans_and_pi_instants(self, demo):
        _kernel, trace, collector = demo
        payload = chrome_trace_events(trace, collector)
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "b", "e", "i"} <= phases
        pi = [
            e for e in payload["traceEvents"]
            if e["ph"] == "i" and "pi" in e["name"]
        ]
        assert pi, "expected priority-inheritance instant events"

    def test_timestamps_sorted(self, demo):
        _kernel, trace, collector = demo
        events = chrome_trace_events(trace, collector)["traceEvents"]
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ns", "otherData": {}})

    def test_validate_rejects_malformed_event(self, demo):
        _kernel, trace, collector = demo
        payload = chrome_trace_events(trace, collector)
        del payload["traceEvents"][0]["ph"]
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)

    def _payload(self, *extra_events):
        """A minimal valid payload to poke cross-event invariants."""
        return {
            "traceEvents": [
                {
                    "ph": "M", "pid": 1, "tid": 0,
                    "name": "process_name", "args": {"name": "node"},
                },
                {"ph": "X", "pid": 1, "tid": 0, "name": "work",
                 "ts": 0.0, "dur": 1.0},
                *extra_events,
            ],
            "displayTimeUnit": "ms",
            "otherData": {},
        }

    def test_validate_rejects_dangling_flow_start(self):
        payload = self._payload(
            {"ph": "s", "pid": 1, "tid": 0, "name": "frame",
             "cat": "flow", "id": 7, "ts": 0.5},
        )
        with pytest.raises(ValueError, match="without a matching finish"):
            validate_chrome_trace(payload)

    def test_validate_rejects_dangling_flow_finish(self):
        payload = self._payload(
            {"ph": "f", "pid": 1, "tid": 0, "name": "frame",
             "cat": "flow", "id": 7, "ts": 0.5, "bp": "e"},
        )
        with pytest.raises(ValueError, match="without a matching start"):
            validate_chrome_trace(payload)

    def test_validate_accepts_matched_flow_pair(self):
        payload = self._payload(
            {"ph": "s", "pid": 1, "tid": 0, "name": "frame",
             "cat": "flow", "id": 7, "ts": 0.2},
            {"ph": "f", "pid": 1, "tid": 0, "name": "frame",
             "cat": "flow", "id": 7, "ts": 0.5, "bp": "e"},
        )
        assert validate_chrome_trace(payload) == 4

    def test_validate_rejects_flow_event_without_id(self):
        payload = self._payload(
            {"ph": "s", "pid": 1, "tid": 0, "name": "frame",
             "cat": "flow", "ts": 0.5},
        )
        with pytest.raises(ValueError, match="flow event without id"):
            validate_chrome_trace(payload)

    def test_validate_rejects_unnamed_pid(self):
        payload = self._payload(
            {"ph": "X", "pid": 2, "tid": 0, "name": "orphan",
             "ts": 0.0, "dur": 1.0},
        )
        with pytest.raises(ValueError, match="without process_name"):
            validate_chrome_trace(payload)


class TestPrometheusGolden:
    def test_matches_golden(self, demo):
        _kernel, _trace, collector = demo
        assert collector.metrics_prometheus() == (
            GOLDEN_DIR / "pi_demo.prom"
        ).read_text()

    def test_metrics_json_matches_golden(self, demo):
        _kernel, _trace, collector = demo
        assert collector.metrics_json() + "\n" == (
            GOLDEN_DIR / "pi_demo.metrics.json"
        ).read_text()
