"""Tests for execution traces (segments, jobs, Gantt rendering)."""

import pytest

from repro.sim.trace import IDLE, KERNEL, JobRecord, Trace
from repro.timeunits import ms


class TestSegments:
    def test_adjacent_same_owner_segments_merge(self):
        t = Trace()
        t.add_segment(0, 10, "a")
        t.add_segment(10, 20, "a")
        assert len(t.segments) == 1
        assert t.segments[0].duration == 20

    def test_different_owners_do_not_merge(self):
        t = Trace()
        t.add_segment(0, 10, "a")
        t.add_segment(10, 20, "b")
        assert len(t.segments) == 2

    def test_empty_segment_ignored(self):
        t = Trace()
        t.add_segment(5, 5, "a")
        assert t.segments == []

    def test_idle_time_accumulates(self):
        t = Trace()
        t.add_segment(0, 30, IDLE)
        assert t.idle_time == 30

    def test_record_segments_off_still_counts_idle(self):
        t = Trace(record_segments=False)
        t.add_segment(0, 30, IDLE)
        assert t.idle_time == 30
        assert t.segments == []

    def test_cpu_share(self):
        t = Trace()
        t.add_segment(0, 25, "a")
        t.add_segment(25, 100, "b")
        assert t.cpu_share("a", 0, 100) == pytest.approx(0.25)
        assert t.cpu_share("b", 0, 50) == pytest.approx(0.5)


class TestKernelTime:
    def test_categories_accumulate(self):
        t = Trace()
        t.charge_kernel(0, 5, "sched")
        t.charge_kernel(5, 9, "sched")
        t.charge_kernel(9, 10, "sem")
        assert t.kernel_time["sched"] == 9
        assert t.kernel_time_total == 10

    def test_kernel_segments_recorded(self):
        t = Trace()
        t.charge_kernel(0, 5, "sched")
        assert t.segments[0].who == KERNEL


class TestJobs:
    def test_job_lifecycle(self):
        t = Trace()
        t.job_released("a", 0, 100, 1)
        record = t.job_completed("a", 1, 60)
        assert record is not None
        assert not record.missed
        assert record.response_time == 60

    def test_deadline_miss_detected(self):
        t = Trace()
        t.job_released("a", 0, 100, 1)
        record = t.job_completed("a", 1, 150)
        assert record.missed
        assert t.misses() == [record]
        assert any(kind == "deadline-miss" for _, kind, _ in t.events)

    def test_unfinished_overdue_jobs(self):
        t = Trace()
        t.job_released("a", 0, 100, 1)
        assert t.unfinished(50) == []
        assert len(t.unfinished(200)) == 1
        assert len(t.deadline_violations(200)) == 1

    def test_no_deadline_means_no_miss(self):
        record = JobRecord("a", 0, None, completion=10**9)
        assert not record.missed

    def test_jobs_of_and_max_response(self):
        t = Trace()
        t.job_released("a", 0, 100, 1)
        t.job_completed("a", 1, 40)
        t.job_released("a", 100, 200, 2)
        t.job_completed("a", 2, 180)
        assert len(t.jobs_of("a")) == 2
        assert t.max_response_ns("a") == 80

    def test_unknown_completion_ignored(self):
        t = Trace()
        assert t.job_completed("ghost", 9, 10) is None


class TestRendering:
    def test_gantt_shows_execution(self):
        t = Trace()
        t.add_segment(0, ms(5), "a")
        t.add_segment(ms(5), ms(10), "b")
        art = t.gantt_ascii(0, ms(10), columns=10)
        lines = art.splitlines()
        assert "a |#####.....|" in lines[1]
        assert "b |.....#####|" in lines[2]

    def test_gantt_rejects_empty_window(self):
        with pytest.raises(ValueError):
            Trace().gantt_ascii(10, 10)

    def test_summary_mentions_misses(self):
        t = Trace()
        t.job_released("a", 0, 100, 1)
        t.job_completed("a", 1, 150)
        assert "deadline violations: 1" in t.summary(200)

    def test_context_switch_counting(self):
        t = Trace()
        t.context_switch(0, None, "a")
        t.context_switch(10, "a", "b")
        assert t.context_switches == 2


class TestRecordModeGuards:
    def test_gantt_requires_full_recording(self):
        t = Trace(record="jobs-only")
        with pytest.raises(ValueError, match="record='full'"):
            t.gantt_ascii(0, ms(1))

    def test_cpu_share_requires_full_recording(self):
        t = Trace(record="off")
        with pytest.raises(ValueError, match="record='full'"):
            t.cpu_share("a", 0, ms(1))

    def test_error_names_current_mode(self):
        t = Trace(record="jobs-only")
        with pytest.raises(ValueError, match="jobs-only"):
            t.gantt_ascii(0, ms(1))


class TestSummary:
    def test_counts_late_and_overdue_separately(self):
        t = Trace()
        t.job_released("a", 0, 100, 1)
        t.job_completed("a", 1, 150)  # late
        t.job_released("b", 0, 100, 1)  # never completes: overdue
        text = t.summary(200)
        assert "deadline violations: 2 (1 late, 1 overdue unfinished)" in text

    def test_reports_per_task_response_stats(self):
        t = Trace()
        t.job_released("a", 0, 1000, 1)
        t.job_completed("a", 1, 100)
        t.job_released("a", 1000, 2000, 2)
        t.job_completed("a", 2, 1300)
        text = t.summary(2000)
        assert "a:" in text
        assert "p95" in text or "max" in text
