"""The canonical multi-node cluster workload and its measurement harness.

The cluster analogue of :mod:`repro.perf.workloads`: one parameterized
configuration -- a ring of periodic senders over the 1 Mbit/s fieldbus
-- measured identically by ``benchmarks/bench_cluster.py`` and the CI
``cluster-perf-smoke`` job, so every entry in ``BENCH_cluster.json``
is comparable.

The ring topology is deliberately filter-heavy: node *i* broadcasts
CAN id ``0x100 + i`` but accepts only its predecessor's id, so on an
*n*-node cluster every delivered frame has exactly one interested
receiver and *n - 2* whose acceptance filters reject it -- the shape
that makes delivery pre-filtering (and its absence) visible.

``utilization`` sets the offered bus load: each node sends an 8-byte
frame (111 us of wire time at 1 Mbit/s) every
``n * frame_time / utilization`` nanoseconds.  ``u = 0.02`` gives the
idle-heavy regime (tens of milliseconds of silence between frames --
where adaptive synchronization's window skipping dominates);
``u = 0.9`` keeps the bus saturated (every quantum has traffic; the
win there comes from delivery pre-filtering and loop overhead).

Two measurements per configuration, as in the kernel harness:

* **speed** (:func:`run_cluster_throughput`): wall time and sim-ns
  per wall-second at ``jobs-only`` recording, GC suspended;
* **behavior** (:func:`cluster_signatures`): per-node sha256
  signatures of the *full* traces plus the delivery timelines and bus
  counters.  Adaptive synchronization is only correct if these are
  byte-identical to lockstep's.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Optional, Tuple

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, Wait
from repro.net.cluster import Cluster
from repro.net.fieldbus import Fieldbus
from repro.net.node import net_send
from repro.timeunits import ms, us

__all__ = [
    "CLUSTER_HORIZON_NS",
    "SIGNATURE_HORIZON_NS",
    "FRAME_SIZE",
    "build_ring_cluster",
    "cluster_config",
    "run_cluster_throughput",
    "cluster_signatures",
]

#: Virtual horizon of one throughput run.
CLUSTER_HORIZON_NS = ms(2000)

#: Virtual horizon of the full-record signature cross-check (full
#: recording of a saturated bus is memory-hungry; correctness at 300 ms
#: implies correctness at any horizon -- the loop has no state that
#: only appears later).
SIGNATURE_HORIZON_NS = ms(300)

#: Payload bytes per frame (111 us of wire time at 1 Mbit/s).
FRAME_SIZE = 8

#: Per-job compute cost of a sender (ns) -- small but nonzero so the
#: kernels actually run application code, not just drivers.
SENDER_COMPUTE_NS = us(10)


def sender_period_ns(nodes: int, utilization: float, bus: Fieldbus) -> int:
    """Period making ``nodes`` senders offer ``utilization`` bus load."""
    frame_ns = bus.frame_time_ns(FRAME_SIZE)
    return max(frame_ns + 1, int(nodes * frame_ns / utilization))


def build_ring_cluster(
    nodes: int,
    utilization: float,
    sync: str,
    record: str = "jobs-only",
) -> Tuple[Cluster, Dict[str, List[Tuple[int, int]]]]:
    """Build (but do not run) the canonical ring cluster.

    Returns the cluster and the per-node received-frame timelines
    (``name -> [(local_time, can_id), ...]``, filled in as it runs).
    """
    if nodes < 2:
        raise ValueError(f"ring needs at least 2 nodes (got {nodes})")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1] (got {utilization})")
    bus = Fieldbus(1_000_000)
    cluster = Cluster(bus=bus, sync=sync)
    period = sender_period_ns(nodes, utilization, bus)
    received: Dict[str, List[Tuple[int, int]]] = {}
    for i in range(nodes):
        name = f"n{i}"
        kernel = Kernel(EDFScheduler(ZERO_OVERHEAD), record=record)
        # Accept only the ring predecessor's identifier: one interested
        # receiver per frame, n-2 filter rejections.
        predecessor_id = 0x100 + (i - 1) % nodes
        iface = cluster.add_node(name, kernel, accept={predecessor_id})
        timeline = received[name] = []

        kernel.create_thread(
            f"tx{i}",
            Program([
                Compute(SENDER_COMPUTE_NS),
                net_send(iface, can_id=0x100 + i, size=FRAME_SIZE),
            ]),
            period=period,
            deadline=period,
        )

        def drain(kern, t, iface=iface, timeline=timeline):
            while True:
                frame = iface.receive()
                if frame is None:
                    break
                timeline.append((kern.now, frame.can_id))

        kernel.create_thread(
            f"rx{i}",
            Program([Wait(iface.rx_event_name), Call(drain)]),
            period=period,
            deadline=period,
        )
    return cluster, received


def cluster_config(
    nodes: int,
    utilization: float,
    sync: str,
    record: str = "jobs-only",
    horizon_ns: int = CLUSTER_HORIZON_NS,
) -> Dict:
    """The measurement configuration fingerprinted into the trajectory."""
    return {
        "workload": "ring-cluster/8-byte-frames",
        "nodes": nodes,
        "utilization": utilization,
        "sync": sync,
        "horizon_ns": horizon_ns,
        "record": record,
    }


def run_cluster_throughput(
    nodes: int,
    utilization: float,
    sync: str,
    record: str = "jobs-only",
    horizon_ns: int = CLUSTER_HORIZON_NS,
) -> Dict:
    """One timed run; returns a trajectory-ready report dict.

    Same timing discipline as the kernel harness: full collection,
    collector suspended across the timed section, restored after.
    """
    cluster, _received = build_ring_cluster(nodes, utilization, sync, record)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        cluster.run_until(horizon_ns)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    events_popped = sum(k.events_popped for k in cluster.nodes.values())
    return {
        "sim_ns": horizon_ns,
        "wall_s": wall,
        "throughput_sim_ns_per_s": round(horizon_ns / wall) if wall > 0 else 0,
        "sync_rounds": cluster.sync_rounds,
        "windows_skipped": cluster.windows_skipped,
        "deliveries_suppressed": cluster.deliveries_suppressed,
        "frames_delivered": cluster.bus.frames_delivered,
        "events_popped": events_popped,
    }


def cluster_signatures(
    nodes: int,
    utilization: float,
    sync: str,
    horizon_ns: int = SIGNATURE_HORIZON_NS,
) -> Dict:
    """Full-record behavior fingerprint of one configuration.

    Returns per-node full-trace signatures, the per-node delivery
    timelines, and the bus counters -- everything that must be
    byte-identical between sync modes.
    """
    cluster, received = build_ring_cluster(nodes, utilization, sync, "full")
    cluster.run_until(horizon_ns)
    bus = cluster.bus
    return {
        "traces": {
            name: kernel.trace.signature(include_segments=True)
            for name, kernel in cluster.nodes.items()
        },
        "timelines": {name: list(t) for name, t in received.items()},
        "bus": {
            "frames_delivered": bus.frames_delivered,
            "frames_dropped": bus.frames_dropped,
            "frames_corrupted": bus.frames_corrupted,
            "bits_carried": bus.bits_carried,
            "total_arbitration_wait_ns": bus.total_arbitration_wait_ns,
        },
        "interfaces": {
            name: {
                "frames_received": iface.frames_received,
                "frames_filtered": iface.frames_filtered,
                "frames_crc_dropped": iface.frames_crc_dropped,
                "rx_overflowed": iface.rx_overflowed,
            }
            for name, iface in cluster.interfaces.items()
        },
    }
