"""The canonical multi-node cluster workload and its measurement harness.

The cluster analogue of :mod:`repro.perf.workloads`: one parameterized
configuration -- a ring of periodic senders over the 1 Mbit/s fieldbus
-- measured identically by ``benchmarks/bench_cluster.py`` and the CI
``cluster-perf-smoke``/``cluster-parallel-smoke`` jobs, so every entry
in ``BENCH_cluster.json`` is comparable.

The ring topology is deliberately filter-heavy: node *i* broadcasts
CAN id ``0x100 + i`` but accepts only its predecessor's id, so on an
*n*-node cluster every delivered frame has exactly one interested
receiver and *n - 2* whose acceptance filters reject it -- the shape
that makes delivery pre-filtering (and its absence) visible.

``utilization`` sets the offered bus load: each node sends an 8-byte
frame (111 us of wire time at 1 Mbit/s) every
``n * frame_time / utilization`` nanoseconds.  ``u = 0.02`` gives the
idle-heavy regime (tens of milliseconds of silence between frames --
where adaptive synchronization's window skipping dominates);
``u = 0.9`` keeps the bus saturated (every quantum has traffic; the
win there comes from delivery pre-filtering, loop overhead, and --
under ``sync="parallel"`` -- running the per-node application work in
worker shards).

``app_load`` models the *application* compute that real nodes run
alongside their bus traffic.  ``"none"`` is the bare driver workload
(kept for the idle-heavy regime, whose whole point is silence);
``"standard"`` adds :data:`APP_THREADS` periodic compute threads per
node -- that per-node work is what parallel execution has to win on,
since the bus itself is inherently serial.  The default ``"auto"``
picks ``"standard"`` at ``utilization >= 0.3`` and ``"none"`` below.

Two measurements per configuration, as in the kernel harness:

* **speed** (:func:`run_cluster_throughput`): wall time and sim-ns
  per wall-second at ``jobs-only`` recording, GC suspended (parallel
  pools are pre-started so the fork is setup, not measurement);
* **behavior** (:func:`cluster_signatures`): per-node sha256
  signatures of the *full* traces plus the delivery timelines and bus
  counters.  Adaptive and parallel synchronization are only correct
  if these are byte-identical to lockstep's.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, Optional

from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program, Wait
from repro.net.cluster import Cluster
from repro.net.fieldbus import Fieldbus
from repro.net.node import net_send
from repro.timeunits import ms, us

__all__ = [
    "CLUSTER_HORIZON_NS",
    "SIGNATURE_HORIZON_NS",
    "FRAME_SIZE",
    "APP_LOADS",
    "build_ring_cluster",
    "cluster_config",
    "run_cluster_throughput",
    "cluster_signatures",
]

#: Virtual horizon of one throughput run.
CLUSTER_HORIZON_NS = ms(2000)

#: Virtual horizon of the full-record signature cross-check (full
#: recording of a saturated bus is memory-hungry; correctness at 300 ms
#: implies correctness at any horizon -- the loop has no state that
#: only appears later).
SIGNATURE_HORIZON_NS = ms(300)

#: Payload bytes per frame (111 us of wire time at 1 Mbit/s).
FRAME_SIZE = 8

#: Per-job compute cost of a sender (ns) -- small but nonzero so the
#: kernels actually run application code, not just drivers.
SENDER_COMPUTE_NS = us(10)

#: Application-load shapes (see module docstring).
APP_LOADS = ("none", "standard")

#: ``app_load="standard"``: per-node periodic compute threads
#: (count, per-job virtual compute, and staggered periods).
APP_THREADS = 3
APP_COMPUTE_NS = us(30)
APP_PERIODS_NS = (us(200), us(250), us(300))

#: Host-CPU iterations of the per-job checksum churn.  Virtual
#: ``Compute`` advances the clock for free, so on its own it cannot
#: model the *host* cost of application code -- the thing worker
#: shards actually parallelize.  Each app job therefore also runs a
#: deterministic integer spin (~90 us of real CPU at ~0.09 us/iter),
#: keeping trace volume unchanged while giving every node a realistic
#: per-window compute bill.
APP_SPIN_ITERS = 1000


def _app_spin(kern, t):
    """Deterministic pure-integer churn standing in for app compute."""
    acc = 0x12345678
    for _ in range(APP_SPIN_ITERS):
        acc = (acc * 1103515245 + 12345) & 0xFFFFFFFF
    return acc


def sender_period_ns(nodes: int, utilization: float, bus: Fieldbus) -> int:
    """Period making ``nodes`` senders offer ``utilization`` bus load."""
    frame_ns = bus.frame_time_ns(FRAME_SIZE)
    return max(frame_ns + 1, int(nodes * frame_ns / utilization))


def resolve_app_load(app_load: str, utilization: float) -> str:
    """Resolve ``"auto"`` against the regime (see module docstring)."""
    if app_load == "auto":
        return "standard" if utilization >= 0.3 else "none"
    if app_load not in APP_LOADS:
        raise ValueError(
            f"app_load {app_load!r}; expected 'auto' or one of {APP_LOADS}"
        )
    return app_load


def build_ring_cluster(
    nodes: int,
    utilization: float,
    sync: str,
    record: str = "jobs-only",
    workers: Optional[int] = None,
    app_load: str = "auto",
) -> Cluster:
    """Build (but do not run) the canonical ring cluster.

    Per-node received-frame timelines accumulate on each interface's
    ``rx_timeline`` (``[(local_time, can_id), ...]``) so they live
    wherever the node's kernel runs; collect them afterwards with
    ``cluster.rx_timelines()``.
    """
    if nodes < 2:
        raise ValueError(f"ring needs at least 2 nodes (got {nodes})")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1] (got {utilization})")
    app_load = resolve_app_load(app_load, utilization)
    bus = Fieldbus(1_000_000)
    cluster = Cluster(bus=bus, sync=sync, workers=workers)
    period = sender_period_ns(nodes, utilization, bus)
    for i in range(nodes):
        name = f"n{i}"
        kernel = Kernel(EDFScheduler(ZERO_OVERHEAD), record=record)
        # Accept only the ring predecessor's identifier: one interested
        # receiver per frame, n-2 filter rejections.
        predecessor_id = 0x100 + (i - 1) % nodes
        iface = cluster.add_node(name, kernel, accept={predecessor_id})
        iface.rx_timeline = []

        kernel.create_thread(
            f"tx{i}",
            Program([
                Compute(SENDER_COMPUTE_NS),
                net_send(iface, can_id=0x100 + i, size=FRAME_SIZE),
            ]),
            period=period,
            deadline=period,
        )

        def drain(kern, t, iface=iface):
            while True:
                frame = iface.receive()
                if frame is None:
                    break
                iface.rx_timeline.append((kern.now, frame.can_id))

        kernel.create_thread(
            f"rx{i}",
            Program([Wait(iface.rx_event_name), Call(drain)]),
            period=period,
            deadline=period,
        )

        if app_load == "standard":
            for j in range(APP_THREADS):
                app_period = APP_PERIODS_NS[j % len(APP_PERIODS_NS)]
                kernel.create_thread(
                    f"app{j}-{i}",
                    Program([Compute(APP_COMPUTE_NS), Call(_app_spin)]),
                    period=app_period,
                    deadline=app_period,
                )
    return cluster


def cluster_config(
    nodes: int,
    utilization: float,
    sync: str,
    record: str = "jobs-only",
    horizon_ns: int = CLUSTER_HORIZON_NS,
    workers: int = 0,
    app_load: str = "auto",
) -> Dict:
    """The measurement configuration fingerprinted into the trajectory.

    ``app_load`` and ``workers`` join the fingerprint only when they
    actually shape the run (keeps pre-existing config hashes -- and
    therefore regression baselines -- valid for the unchanged
    configurations, and makes the trajectory gate compare parallel
    entries only against entries with the same worker count).
    """
    config = {
        "workload": "ring-cluster/8-byte-frames",
        "nodes": nodes,
        "utilization": utilization,
        "sync": sync,
        "horizon_ns": horizon_ns,
        "record": record,
    }
    resolved = resolve_app_load(app_load, utilization)
    if resolved != "none":
        config["app_load"] = resolved
    if workers:
        config["workers"] = workers
    return config


def run_cluster_throughput(
    nodes: int,
    utilization: float,
    sync: str,
    record: str = "jobs-only",
    horizon_ns: int = CLUSTER_HORIZON_NS,
    workers: Optional[int] = None,
    app_load: str = "auto",
) -> Dict:
    """One timed run; returns a trajectory-ready report dict.

    Same timing discipline as the kernel harness: full collection,
    collector suspended across the timed section, restored after.  For
    ``sync="parallel"`` the worker pool is started *before* the timed
    section (the fork is one-time setup, not steady-state cost) and the
    report gains the worker count and per-worker busy wall times.
    """
    cluster = build_ring_cluster(
        nodes, utilization, sync, record, workers=workers, app_load=app_load
    )
    if sync == "parallel":
        cluster.start_workers()
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        cluster.run_until(horizon_ns)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    events_popped = cluster.total_events_popped()
    worker_count = cluster.worker_count
    worker_stats = cluster.worker_stats()
    cluster.close()
    report = {
        "sim_ns": horizon_ns,
        "wall_s": wall,
        "throughput_sim_ns_per_s": round(horizon_ns / wall) if wall > 0 else 0,
        "sync_rounds": cluster.sync_rounds,
        "windows_skipped": cluster.windows_skipped,
        "deliveries_suppressed": cluster.deliveries_suppressed,
        "frames_delivered": cluster.bus.frames_delivered,
        "events_popped": events_popped,
        "workers": worker_count,
    }
    if worker_stats is not None:
        report["per_worker_busy_s"] = [
            round(s["busy_s"], 6) for s in worker_stats
        ]
    return report


def cluster_signatures(
    nodes: int,
    utilization: float,
    sync: str,
    horizon_ns: int = SIGNATURE_HORIZON_NS,
    workers: Optional[int] = None,
    app_load: str = "auto",
) -> Dict:
    """Full-record behavior fingerprint of one configuration.

    Returns per-node full-trace signatures, the per-node delivery
    timelines, and the bus counters -- everything that must be
    byte-identical between sync modes and across worker counts.
    """
    cluster = build_ring_cluster(
        nodes, utilization, sync, "full", workers=workers, app_load=app_load
    )
    cluster.run_until(horizon_ns)
    bus = cluster.bus
    snapshot = {
        "traces": cluster.trace_signatures(include_segments=True),
        "timelines": {
            name: [list(entry) for entry in timeline]
            for name, timeline in cluster.rx_timelines().items()
        },
        "bus": {
            "frames_delivered": bus.frames_delivered,
            "frames_dropped": bus.frames_dropped,
            "frames_corrupted": bus.frames_corrupted,
            "bits_carried": bus.bits_carried,
            "total_arbitration_wait_ns": bus.total_arbitration_wait_ns,
        },
        "interfaces": cluster.interface_stats(),
    }
    cluster.close()
    return snapshot
