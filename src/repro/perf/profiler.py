"""Opt-in ``cProfile`` hook for the simulator.

Profiling is never on by default -- the instrumented run is 2-4x
slower and would poison throughput numbers -- but when a regression
shows up in ``BENCH_kernel.json`` this is the first tool to reach
for: ``python -m repro.reproduce perf --profile`` prints the hot
functions of the canonical throughput workload.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Callable, Iterator, Tuple

__all__ = ["profile_call", "profiled"]


def stats_text(profile: cProfile.Profile, sort: str = "cumulative", limit: int = 25) -> str:
    """Render a profile's top functions as text."""
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    return buffer.getvalue()


def profile_call(
    fn: Callable,
    *args,
    sort: str = "cumulative",
    limit: int = 25,
    **kwargs,
) -> Tuple[object, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, stats_text)`` where the text lists the top
    ``limit`` functions by ``sort`` order.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile.disable()
    return result, stats_text(profile, sort=sort, limit=limit)


@contextmanager
def profiled(sort: str = "cumulative", limit: int = 25) -> Iterator[list]:
    """Context manager variant: yields a one-element list that holds
    the stats text after the block exits."""
    holder: list = []
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield holder
    finally:
        profile.disable()
        holder.append(stats_text(profile, sort=sort, limit=limit))
