"""The canonical throughput workload and its measurement harness.

One fixed configuration -- the ``bench_kernel_overhead`` workload
(n = 20, short periods, EDF / RM / CSD-3, 2 s of virtual time) -- is
measured identically by the ``python -m repro.reproduce perf`` CLI,
the benchmark suite, and the CI perf-smoke job, so every entry in
``BENCH_kernel.json`` is comparable.

The harness measures two things about every code change:

* **speed**: wall time and sim-ns per wall-second at a chosen trace
  recording mode (steady-state throughput runs use ``jobs-only``);
* **behavior**: the sha256 signature of the *full* trace (events +
  jobs + segments).  An optimization is only an optimization if these
  signatures do not move.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.core.allocation import balanced_splits
from repro.core.overhead import OverheadModel
from repro.core.schedulability import (
    band_sizes_from_splits,
    csd_overhead_per_period,
    csd_schedulable,
)
from repro.perf.counters import PerfReport, collect_report, merge_reports
from repro.sim.kernelsim import simulate_workload
from repro.sim.workload import generate_workload
from repro.timeunits import ms

__all__ = [
    "POLICIES",
    "HORIZON_NS",
    "min_overhead_splits",
    "overhead_workload",
    "throughput_config",
    "run_throughput",
    "full_signatures",
]

#: Policies measured by the canonical run.
POLICIES: Tuple[str, ...] = ("edf", "rm", "csd-3")

#: Virtual horizon per policy run.
HORIZON_NS = ms(2000)


def min_overhead_splits(workload, dp_bands: int, model: OverheadModel):
    """The feasible balanced allocation minimizing analytic overhead
    utilization -- what the offline search optimizes for when the load
    leaves headroom (Section 5.5.3's overhead-balancing criterion)."""
    n = len(workload)
    best, best_cost = None, None
    for r in range(n + 1):
        splits = balanced_splits(workload, dp_bands, r)
        if not csd_schedulable(workload, splits, model):
            continue
        sizes = band_sizes_from_splits(n, splits)
        cost = 0.0
        index = 0
        for band, size in enumerate(sizes):
            per = csd_overhead_per_period(model, sizes, band)
            for _ in range(size):
                cost += per / workload[index].period
                index += 1
        if best_cost is None or cost < best_cost:
            best, best_cost = splits, cost
    return best


def overhead_workload():
    """The fixed n = 20 short-period workload (seed 4)."""
    return generate_workload(20, seed=4, utilization=0.45).with_periods_divided(3)


def _policy_runs(model: OverheadModel):
    workload = overhead_workload()
    splits = min_overhead_splits(workload, 2, model)
    for policy in POLICIES:
        yield workload, policy, (splits if policy.startswith("csd-") else None)


def throughput_config(mode: str) -> Dict:
    """The measurement configuration fingerprinted into the trajectory."""
    return {
        "workload": "generate_workload(20, seed=4, u=0.45) periods/3",
        "policies": list(POLICIES),
        "horizon_ns": HORIZON_NS,
        "record": mode,
    }


def run_throughput(
    mode: str = "jobs-only",
    model: Optional[OverheadModel] = None,
    repeats: int = 1,
    label: str = "kernel-overhead",
    obs: Optional[str] = None,
) -> PerfReport:
    """Run the canonical workload and report pooled counters/rates.

    Timed sections run with the garbage collector suspended (after a
    full collection), the same discipline as the stdlib ``timeit``
    template: collector pauses land unpredictably inside the run and
    were measured to swing per-run throughput by over 20%.  The
    collector state is restored afterwards either way.

    ``obs`` attaches an observability collector (``"counters"`` or
    ``"full"``) inside the timed section -- how the obs-smoke overhead
    bound is measured.
    """
    model = model if model is not None else OverheadModel()
    reports = []
    for _ in range(max(1, repeats)):
        for workload, policy, splits in _policy_runs(model):
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                kernel, _trace = simulate_workload(
                    workload, policy, duration=HORIZON_NS, model=model,
                    splits=splits, record=mode, obs=obs,
                )
                wall = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
            reports.append(collect_report(kernel, wall, label=policy))
    return merge_reports(label, reports)


def full_signatures(model: Optional[OverheadModel] = None) -> Dict[str, str]:
    """Full-mode trace signatures (events + jobs + segments) per policy.

    The determinism cross-check: these hashes must be identical before
    and after any performance work.
    """
    model = model if model is not None else OverheadModel()
    signatures = {}
    for workload, policy, splits in _policy_runs(model):
        _kernel, trace = simulate_workload(
            workload, policy, duration=HORIZON_NS, model=model,
            splits=splits, record="full",
        )
        signatures[policy] = trace.signature(include_segments=True)
    return signatures
