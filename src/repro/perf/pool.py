"""Persistent fork-based worker pool with request/response pipes.

:func:`repro.perf.sweeps.parallel_map` fans *independent* sweep points
over a throwaway ``Pool`` -- fine when every task is a pure function of
its arguments.  The parallel cluster synchronization needs something
stronger: each worker must *keep* its shard of kernels alive across
thousands of barrier rounds, so the pool here is long-lived and
explicitly addressed.

* Workers are forked (inheriting the parent's object graph at spawn
  time -- nothing is pickled *into* a worker, only requests and replies
  cross the pipe), one duplex :class:`multiprocessing.Pipe` per worker.
* ``handler_factory(index)`` runs *in the child* and returns the
  request handler, so a worker can finish wiring up its shard (e.g.
  marking which interfaces it owns) after the fork.
* Handler exceptions are caught, formatted, and re-raised in the parent
  as :class:`WorkerError` -- a worker never dies silently mid-protocol.
* Every worker keeps wall-clock busy counters (requests served, seconds
  spent inside the handler), fetched with :meth:`WorkerPool.stats` --
  these feed the per-worker wall times in ``BENCH_cluster.json``.

Where ``fork`` is unavailable the pool cannot exist at all;
:func:`pool_available` is the gate callers use to fall back to serial
execution (same degrade-not-require policy as ``parallel_map``).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["WorkerPool", "WorkerError", "pool_available"]

#: Sentinel request: shut the worker loop down.
_STOP = "__stop__"

#: Sentinel request: report the worker's busy counters.
_STATS = "__stats__"


class WorkerError(RuntimeError):
    """A worker's handler raised (the traceback rides in ``args[0]``)
    or the worker process died mid-protocol."""


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None


def pool_available() -> bool:
    """Whether persistent fork workers exist on this platform."""
    return _fork_context() is not None


def _worker_main(index: int, conn, handler_factory) -> None:
    """The child's request loop (runs until ``_STOP`` or EOF)."""
    handler = handler_factory(index)
    requests = 0
    busy_s = 0.0
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg == _STOP:
            break
        if msg == _STATS:
            conn.send(("ok", {"index": index, "requests": requests,
                              "busy_s": busy_s}))
            continue
        start = time.perf_counter()
        try:
            reply = handler(msg)
        except BaseException:
            conn.send(("err", traceback.format_exc()))
            continue
        busy_s += time.perf_counter() - start
        requests += 1
        conn.send(("ok", reply))
    conn.close()


class WorkerPool:
    """``count`` persistent forked workers, one request pipe each.

    The protocol is strictly request/response per worker: the parent
    may pipeline (send to every worker, then receive from every
    worker), but never sends a second request down one pipe before
    reading the first reply.
    """

    def __init__(self, count: int, handler_factory: Callable[[int], Callable],
                 name: str = "pool"):
        if count <= 0:
            raise ValueError(f"worker count must be positive (got {count})")
        context = _fork_context()
        if context is None:
            raise WorkerError("fork start method unavailable on this platform")
        self.count = count
        self._conns = []
        self._procs = []
        self._closed = False
        for index in range(count):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main,
                args=(index, child_conn, handler_factory),
                name=f"{name}-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    def send(self, index: int, msg: Any) -> None:
        """Post one request to worker ``index`` (reply pending)."""
        if self._closed:
            raise WorkerError("pool is closed")
        self._conns[index].send(msg)

    def recv(self, index: int) -> Any:
        """Collect worker ``index``'s reply to the pending request."""
        try:
            status, payload = self._conns[index].recv()
        except EOFError:
            raise WorkerError(f"worker {index} died mid-protocol") from None
        if status != "ok":
            raise WorkerError(f"worker {index} failed:\n{payload}")
        return payload

    def roundtrip(self, messages: Sequence[Any]) -> List[Any]:
        """One pipelined barrier: send ``messages[i]`` to worker ``i``
        (``None`` entries are skipped), then collect every reply in
        worker order."""
        for index, msg in enumerate(messages):
            if msg is not None:
                self.send(index, msg)
        return [
            self.recv(index)
            for index, msg in enumerate(messages)
            if msg is not None
        ]

    def broadcast(self, msg: Any) -> List[Any]:
        """Send the same request to every worker; replies in order."""
        return self.roundtrip([msg] * self.count)

    def stats(self) -> List[dict]:
        """Per-worker busy counters (requests served, busy seconds)."""
        return self.broadcast(_STATS)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None

    def __del__(self):
        try:
            self.close(timeout=0.1)
        except Exception:
            pass
