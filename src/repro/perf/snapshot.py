"""Deterministic checkpoint/restore snapshots for sweep prefix reuse.

Sweep benchmarks cold-start every configuration from t = 0, yet most
sweep points share an identical warm-up prefix: the same workload,
diverging only at a fault-activation time or a parameter that first
matters after the split.  Because the simulator is deterministic
(byte-identical sha256 trace signatures), a prefix simulated once can
stand in for every point that shares it.  This module provides the two
restore mechanisms behind :func:`repro.perf.sweeps.prefix_map`:

**Fork-based copy-on-write snapshots** (:class:`SnapshotServer`).  A
forked server process runs the shared prefix once to the divergence
point ``t_split``, then forks one child per sweep point; each child
applies its divergent continuation on the inherited state and ships
the (picklable) outcome back over its own pipe.  The prefix state is
never serialized: the :class:`~repro.sim.engine.EventQueue` is full of
closures over the kernel (release actions, timer callbacks) that
``pickle`` cannot ship, but ``fork`` preserves them for free, and the
OS shares the prefix pages copy-on-write until a child diverges.

**In-process deepcopy snapshots** (:func:`deep_snapshot`,
:class:`SnapshotCache`) for single-run replay/bisection where forking
is unavailable or unwanted.  A plain ``copy.deepcopy`` is silently
*wrong* for kernel state: the stdlib treats function objects as atomic,
so a pending event action ``lambda: self._on_release(thread, nominal)``
in the copy would still close over the *original* kernel and corrupt
it when fired.  :func:`deep_snapshot` temporarily installs a
closure-aware function copier that rebuilds closure cells (and
defaults) through the deepcopy memo, making the copied event graph
self-contained.  :class:`SnapshotCache` content-addresses master
states by ``(config_hash, t_split)`` so repeated restores of the same
prefix hit a cache.

Mechanism selection is one env knob, ``REPRO_SNAPSHOT``: ``auto``
(default; fork where available), ``fork``, ``deepcopy``, or
``0``/``cold`` to disable snapshots entirely.  On platforms without
``fork`` every fork request degrades to cold-start -- a gate, not a
new dependency -- and results are identical either way, which the
snapshot test battery asserts byte-for-byte.
"""

from __future__ import annotations

import contextlib
import copy
import multiprocessing
import os
import signal
import sys
import time
import traceback
import types
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SNAPSHOT_ENV",
    "SNAPSHOT_MODES",
    "SnapshotError",
    "fork_available",
    "resolve_snapshot_mode",
    "deep_snapshot",
    "SnapshotCache",
    "SnapshotServer",
]

#: Environment knob selecting the snapshot mechanism for sweeps.
SNAPSHOT_ENV = "REPRO_SNAPSHOT"

#: Accepted mode requests (``resolve_snapshot_mode`` narrows ``auto``).
SNAPSHOT_MODES = ("auto", "fork", "deepcopy", "cold")


class SnapshotError(RuntimeError):
    """A snapshot server or one of its continuations failed."""


def fork_available() -> bool:
    """Whether fork-based copy-on-write snapshots can work here."""
    return hasattr(os, "fork") and hasattr(os, "waitpid")


def resolve_snapshot_mode(mode: Optional[str] = None) -> str:
    """Narrow a mode request to a concrete mechanism.

    ``None`` falls back to the ``REPRO_SNAPSHOT`` environment variable
    (empty/``1``/``on`` mean ``auto``; ``0``/``off`` mean ``cold``).
    Returns ``"fork"``, ``"deepcopy"``, or ``"cold"``; ``auto`` and
    unavailable-``fork`` degrade to ``cold`` so callers never need a
    platform check of their own.
    """
    if mode is None:
        raw = os.environ.get(SNAPSHOT_ENV, "").strip().lower()
        if raw in ("", "1", "on", "auto"):
            mode = "auto"
        elif raw in ("0", "off", "cold"):
            mode = "cold"
        elif raw in ("fork", "deepcopy"):
            mode = raw
        else:
            raise ValueError(
                f"{SNAPSHOT_ENV}={raw!r}: expected one of {SNAPSHOT_MODES} "
                "(or 0/1/on/off)"
            )
    if mode not in SNAPSHOT_MODES:
        raise ValueError(
            f"unknown snapshot mode {mode!r} (expected one of {SNAPSHOT_MODES})"
        )
    if mode == "auto":
        return "fork" if fork_available() else "cold"
    if mode == "fork" and not fork_available():
        return "cold"
    return mode


# ----------------------------------------------------------------------
# closure-aware deepcopy
# ----------------------------------------------------------------------

def _copy_function(fn: types.FunctionType, memo: Dict) -> types.FunctionType:
    """Deepcopy a function *including* its closure cells and defaults.

    Module-level functions with no captured state pass through shared
    (they are immutable for our purposes).  Anything with a closure or
    defaults is rebuilt: the clone is registered in the memo *before*
    the cells are filled, so cyclic graphs (kernel -> event -> action
    closure -> kernel) terminate.
    """
    if (
        fn.__closure__ is None
        and fn.__defaults__ is None
        and fn.__kwdefaults__ is None
    ):
        return fn
    freevars = fn.__closure__ or ()
    cells = tuple(types.CellType() for _ in freevars)
    clone = types.FunctionType(
        fn.__code__, fn.__globals__, fn.__name__, fn.__defaults__,
        cells or None,
    )
    memo[id(fn)] = clone
    for target, cell in zip(cells, freevars):
        try:
            contents = cell.cell_contents
        except ValueError:  # genuinely empty cell (unset nonlocal)
            continue
        target.cell_contents = copy.deepcopy(contents, memo)
    if fn.__defaults__ is not None:
        clone.__defaults__ = copy.deepcopy(fn.__defaults__, memo)
    if fn.__kwdefaults__ is not None:
        clone.__kwdefaults__ = copy.deepcopy(fn.__kwdefaults__, memo)
    clone.__qualname__ = fn.__qualname__
    clone.__module__ = fn.__module__
    clone.__doc__ = fn.__doc__
    if fn.__dict__:
        clone.__dict__.update(copy.deepcopy(fn.__dict__, memo))
    return clone


def _copy_slotted(obj: Any, memo: Dict) -> Any:
    """Deepcopy a ``__slots__`` object slot-by-slot through the memo.

    Used for classes whose ``__getstate__`` deliberately *prunes* state
    for pickling (e.g. :class:`~repro.obs.collector.ObsCollector` drops
    its kernel back-reference so cluster workers can ship observations)
    -- a snapshot must be complete, so it bypasses that pruning.
    """
    cls = type(obj)
    clone = cls.__new__(cls)
    memo[id(obj)] = clone
    for slot in cls.__slots__:
        if hasattr(obj, slot):
            setattr(clone, slot, copy.deepcopy(getattr(obj, slot), memo))
    return clone


@contextlib.contextmanager
def _snapshot_dispatch():
    """Temporarily teach ``copy.deepcopy`` to copy captured state.

    Swaps the stdlib's treat-functions-as-atomic dispatch entry for the
    closure-aware copier (plus the no-pruning copier for collectors,
    when the obs layer is loaded), and restores the table on exit.
    Not thread-safe -- snapshots are taken from the single-threaded
    benchmark/test drivers.
    """
    dispatch = copy._deepcopy_dispatch
    saved = {}
    targets: List[Tuple[type, Callable]] = [
        (types.FunctionType, _copy_function)
    ]
    collector_mod = sys.modules.get("repro.obs.collector")
    if collector_mod is not None:
        targets.append((collector_mod.ObsCollector, _copy_slotted))
    for cls, copier in targets:
        saved[cls] = dispatch.get(cls)
        dispatch[cls] = copier
    try:
        yield
    finally:
        for cls, previous in saved.items():
            if previous is None:
                dispatch.pop(cls, None)
            else:
                dispatch[cls] = previous


def deep_snapshot(state: Any) -> Any:
    """A private, self-contained deep copy of simulation state.

    Unlike ``copy.deepcopy``, pending event actions (closures over the
    kernel, its threads, channels...) are rebuilt against the copied
    object graph, so running the copy never mutates the original.
    """
    with _snapshot_dispatch():
        return copy.deepcopy(state)


class SnapshotCache:
    """Content-addressed cache of deepcopy prefix snapshots.

    Masters are keyed by ``(config_hash, t_split)`` -- the caller's
    ``config_hash`` must fingerprint everything that shaped the prefix
    (workload, policies, defenses...), mirroring the perf-trajectory
    convention.  :meth:`restore` returns a *private*
    :func:`deep_snapshot` of the master on every call; the master
    itself is built once and never run.  Eviction is FIFO at
    ``capacity`` masters.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive (got {capacity})")
        self._capacity = capacity
        self._masters: Dict[Tuple[str, int], Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._masters)

    def restore(
        self, config_hash: str, t_split: int, build: Callable[[], Any]
    ) -> Any:
        """A private copy of the prefix state for this configuration.

        ``build`` runs (once per key) to produce the master: it must
        return the state paused exactly at ``t_split``.
        """
        key = (config_hash, t_split)
        master = self._masters.get(key)
        if master is None:
            self.misses += 1
            master = build()
            if len(self._masters) >= self._capacity:
                self._masters.pop(next(iter(self._masters)))
            self._masters[key] = master
        else:
            self.hits += 1
        return deep_snapshot(master)

    def clear(self) -> None:
        """Drop every cached master (counters are kept)."""
        self._masters.clear()


# ----------------------------------------------------------------------
# fork-based copy-on-write snapshots
# ----------------------------------------------------------------------

def _collect_child(
    entry: Tuple[int, int, Any], results: List[Any]
) -> None:
    """Receive one child's outcome, reap it, and place the result."""
    index, pid, conn = entry
    try:
        kind, payload = conn.recv()
    except EOFError:
        kind, payload = "err", f"snapshot child (pid {pid}) died without a result"
    finally:
        conn.close()
    os.waitpid(pid, 0)
    if kind == "err":
        raise RuntimeError(f"continuation #{index} failed:\n{payload}")
    results[index] = payload


def _serve(
    conn,
    build: Callable[[], Any],
    continuations: Sequence[Callable[[Any], Any]],
    children: int,
) -> None:
    """Server-process body: prefix once, then fork the futures.

    Children are forked in waves of at most ``children`` and reaped in
    fork order; each ships ``("ok", result)`` or ``("err", traceback)``
    over its own pipe (per-child pipes keep concurrent writes from
    interleaving).  The continuation result must be picklable -- the
    prefix state itself never is.
    """
    t0 = time.perf_counter()
    state = build()
    conn.send(("ready", time.perf_counter() - t0))
    try:
        command = conn.recv()
    except EOFError:
        return  # parent abandoned the server before asking for results
    if command != "run":
        return
    results: List[Any] = [None] * len(continuations)
    pending: List[Tuple[int, int, Any]] = []
    try:
        for index, continuation in enumerate(continuations):
            while len(pending) >= children:
                _collect_child(pending.pop(0), results)
            parent_end, child_end = multiprocessing.Pipe(duplex=False)
            sys.stdout.flush()
            sys.stderr.flush()
            pid = os.fork()
            if pid == 0:  # the future: one sweep point on CoW state
                code = 0
                try:
                    conn.close()
                    parent_end.close()
                    child_end.send(("ok", continuation(state)))
                except BaseException:
                    code = 1
                    with contextlib.suppress(OSError):
                        child_end.send(("err", traceback.format_exc()))
                finally:
                    os._exit(code)
            child_end.close()
            pending.append((index, pid, parent_end))
        while pending:
            _collect_child(pending.pop(0), results)
    finally:
        for _index, pid, child_conn in pending:
            with contextlib.suppress(OSError):
                child_conn.close()
            with contextlib.suppress(OSError, ChildProcessError):
                os.waitpid(pid, 0)
    conn.send(("done", results))


class SnapshotServer:
    """Copy-on-write prefix server: simulate once, fork the futures.

    Forks immediately on construction and starts simulating the prefix
    (``build()``), so creating several servers overlaps their prefix
    work.  :meth:`results` then triggers one forked child per
    continuation and returns their outcomes in submission order.

    ``children`` bounds how many continuation children run at once
    (1 = sequential: all speedup comes from prefix reuse alone).
    Always :meth:`close` (or use as a context manager): an abandoned
    server is killed and reaped, never leaked.
    """

    def __init__(
        self,
        build: Callable[[], Any],
        continuations: Sequence[Callable[[Any], Any]],
        *,
        children: int = 1,
        name: str = "snapshot",
    ):
        if not fork_available():
            raise SnapshotError(
                "fork-based snapshots need os.fork (use deepcopy/cold mode)"
            )
        continuations = list(continuations)
        if not continuations:
            raise ValueError("SnapshotServer needs at least one continuation")
        if children < 1:
            raise ValueError(f"children must be positive (got {children})")
        self.name = name
        self.count = len(continuations)
        self.prefix_wall_s: Optional[float] = None
        self._results: Optional[List[Any]] = None
        parent_conn, child_conn = multiprocessing.Pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # the server
            code = 0
            try:
                parent_conn.close()
                _serve(child_conn, build, continuations, children)
            except BaseException:
                code = 1
                with contextlib.suppress(OSError):
                    child_conn.send(("err", traceback.format_exc()))
            finally:
                os._exit(code)
        child_conn.close()
        self._conn: Optional[Any] = parent_conn
        self._pid: Optional[int] = pid

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def _recv(self) -> Tuple[str, Any]:
        assert self._conn is not None
        try:
            kind, payload = self._conn.recv()
        except EOFError:
            self.close()
            raise SnapshotError(
                f"snapshot server {self.name!r} died before replying"
            ) from None
        if kind == "err":
            self.close()
            raise SnapshotError(
                f"snapshot server {self.name!r} failed:\n{payload}"
            )
        return kind, payload

    def ready(self) -> float:
        """Block until the shared prefix finished; its wall seconds."""
        if self.prefix_wall_s is None:
            if self._conn is None:
                raise SnapshotError(f"snapshot server {self.name!r} is closed")
            kind, payload = self._recv()
            if kind != "ready":
                self.close()
                raise SnapshotError(
                    f"snapshot server {self.name!r}: expected ready, got {kind!r}"
                )
            self.prefix_wall_s = payload
        return self.prefix_wall_s

    def results(self) -> List[Any]:
        """Fork the continuations and return their outcomes in order."""
        if self._results is None:
            self.ready()
            assert self._conn is not None
            self._conn.send("run")
            kind, payload = self._recv()
            if kind != "done":
                self.close()
                raise SnapshotError(
                    f"snapshot server {self.name!r}: expected done, got {kind!r}"
                )
            self._results = payload
            self.close()
        return list(self._results)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the server down (idempotent; kills it if still live)."""
        conn, self._conn = self._conn, None
        if conn is not None:
            with contextlib.suppress(OSError):
                conn.close()
        pid, self._pid = self._pid, None
        if pid is not None:
            if self._results is None:
                # Abandoned before completion: don't wait out the
                # prefix, interrupt it.
                with contextlib.suppress(OSError, ProcessLookupError):
                    os.kill(pid, signal.SIGTERM)
            with contextlib.suppress(OSError, ChildProcessError):
                os.waitpid(pid, 0)

    def __enter__(self) -> "SnapshotServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        with contextlib.suppress(Exception):
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self._conn is None and self._results is None else (
            "done" if self._results is not None else "live"
        )
        return f"<SnapshotServer {self.name} x{self.count} {state}>"
