"""Lightweight performance counters for simulator runs.

The kernel already counts the cheap things as it runs (events popped,
dispatches, syscalls -- plain integer increments on the hot path);
this module turns those raw counters plus a wall-clock measurement
into a :class:`PerfReport` with derived rates, most importantly the
headline **sim-ns per wall-second** throughput that the perf
trajectory (``BENCH_kernel.json``) tracks across PRs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

__all__ = ["PerfReport", "collect_report"]


@dataclass
class PerfReport:
    """Counters and rates for one (or several pooled) kernel runs."""

    label: str
    sim_ns: int
    wall_s: float
    events_popped: int
    dispatches: int
    context_switches: int
    syscalls: int
    kernel_time_ns: int
    #: Worker-pool shape when the run was sharded across processes
    #: (``repro.perf.pool.WorkerPool``): pool size and per-worker busy
    #: wall seconds.  Zero / empty for single-process runs, in which
    #: case they stay out of the exported dict.
    workers: int = 0
    worker_busy_s: Tuple[float, ...] = field(default_factory=tuple)

    @property
    def throughput_sim_ns_per_s(self) -> float:
        """Virtual nanoseconds simulated per wall-clock second."""
        if self.wall_s <= 0:
            return 0.0
        return self.sim_ns / self.wall_s

    @property
    def events_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.events_popped / self.wall_s

    def as_dict(self) -> Dict:
        """Counters plus derived rates, ready for JSON persistence."""
        data = asdict(self)
        data["throughput_sim_ns_per_s"] = round(self.throughput_sim_ns_per_s)
        data["events_per_s"] = round(self.events_per_s)
        if not self.workers:
            del data["workers"]
            del data["worker_busy_s"]
        else:
            data["worker_busy_s"] = [round(s, 6) for s in self.worker_busy_s]
        return data

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"perf [{self.label}]",
            f"  sim time:         {self.sim_ns / 1e9:.3f} s virtual",
            f"  wall time:        {self.wall_s:.3f} s",
            f"  throughput:       {self.throughput_sim_ns_per_s / 1e9:.2f} sim-s/wall-s",
            f"  events popped:    {self.events_popped}",
            f"  dispatches:       {self.dispatches}",
            f"  context switches: {self.context_switches}",
            f"  syscalls:         {self.syscalls}",
            f"  kernel time:      {self.kernel_time_ns / 1e6:.2f} ms virtual",
        ]
        if self.workers:
            busy = ", ".join(f"{s:.3f}" for s in self.worker_busy_s)
            lines.append(f"  workers:          {self.workers} (busy s: {busy})")
        return "\n".join(lines)


def collect_report(kernel: "Kernel", wall_s: float, label: str = "run") -> PerfReport:
    """Snapshot one kernel's counters into a report."""
    return PerfReport(
        label=label,
        sim_ns=kernel.now,
        wall_s=wall_s,
        events_popped=kernel.events_popped,
        dispatches=kernel.dispatch_count,
        context_switches=kernel.trace.context_switches,
        syscalls=kernel.syscall_count,
        kernel_time_ns=kernel.trace.kernel_time_total,
    )


def merge_reports(label: str, reports) -> PerfReport:
    """Pool several per-run reports into one aggregate report."""
    reports = list(reports)
    return PerfReport(
        label=label,
        sim_ns=sum(r.sim_ns for r in reports),
        wall_s=sum(r.wall_s for r in reports),
        events_popped=sum(r.events_popped for r in reports),
        dispatches=sum(r.dispatches for r in reports),
        context_switches=sum(r.context_switches for r in reports),
        syscalls=sum(r.syscalls for r in reports),
        kernel_time_ns=sum(r.kernel_time_ns for r in reports),
    )
