"""Performance layer: counters, profiling, parallel sweeps, trajectory.

The simulator is the instrument every figure and table in this
reproduction is measured with, so its own speed is a first-class
concern.  This package holds everything performance-related that is
not the hot path itself:

* :mod:`repro.perf.counters` -- lightweight run counters (events
  popped, dispatches, context switches) and throughput reports
  (sim-ns per wall-second);
* :mod:`repro.perf.profiler` -- an opt-in ``cProfile`` hook, exposed
  via ``python -m repro.reproduce perf --profile``;
* :mod:`repro.perf.sweeps` -- a ``multiprocessing`` sweep runner with
  deterministic, seed-stable results that the benchmark scripts route
  through, plus the shared-prefix planner (:func:`prefix_map`) that
  simulates each common warm-up prefix once and restores every sweep
  point from a snapshot of it;
* :mod:`repro.perf.snapshot` -- the checkpoint/restore mechanisms
  behind that planner: fork-based copy-on-write prefix servers and
  closure-aware in-process deepcopy snapshots with a content-addressed
  cache, byte-identical to cold runs by construction;
* :mod:`repro.perf.trajectory` -- the persistent machine-readable
  perf history (``BENCH_kernel.json``) that makes regressions visible
  across PRs;
* :mod:`repro.perf.workloads` -- the canonical throughput workload
  (the ``bench_kernel_overhead`` configuration) shared by the CLI,
  the benchmarks, and CI.
"""

from repro.perf.counters import PerfReport, collect_report
from repro.perf.profiler import profile_call
from repro.perf.snapshot import (
    SnapshotCache,
    SnapshotError,
    SnapshotServer,
    deep_snapshot,
    resolve_snapshot_mode,
)
from repro.perf.sweeps import (
    PrefixSpec,
    parallel_map,
    prefix_map,
    resolve_workers,
)
from repro.perf.trajectory import (
    append_entry,
    check_regression,
    config_hash,
    load_trajectory,
)

__all__ = [
    "PerfReport",
    "collect_report",
    "profile_call",
    "parallel_map",
    "resolve_workers",
    "PrefixSpec",
    "prefix_map",
    "SnapshotCache",
    "SnapshotError",
    "SnapshotServer",
    "deep_snapshot",
    "resolve_snapshot_mode",
    "append_entry",
    "check_regression",
    "config_hash",
    "load_trajectory",
]
