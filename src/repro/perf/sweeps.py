"""Deterministic parallel sweep runner.

Workload sweeps (Figures 3-5, the fault sweeps, seed batteries) are
embarrassingly parallel: every point is a pure function of its own
parameters, including its own seed.  :func:`parallel_map` fans such
points out over a ``multiprocessing`` pool while keeping the results
**bit-identical to the serial run**:

* results come back in submission order (``Pool.map`` preserves it);
* every item carries its own seed in its arguments, so the outcome
  never depends on which worker computed it or in what order;
* the serial path runs the very same function, so ``workers=1`` is
  the reference implementation.

The pool uses the ``fork`` start method (cheap, and lets benchmark
scripts pass module-level functions defined in ``__main__``).  Where
``fork`` is unavailable (non-POSIX platforms) the runner silently
degrades to the serial path -- a gate, not a new dependency.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["resolve_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob: default worker count for benchmark sweeps
#: (0 = one per CPU).
WORKERS_ENV = "REPRO_BENCH_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Turn a worker request into a concrete count.

    ``None`` falls back to the ``REPRO_BENCH_WORKERS`` environment
    variable, then to 1 (serial).  ``0`` means one worker per CPU.
    Negative values are an error.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        workers = int(raw) if raw else 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative (got {workers})")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    The result list is in item order regardless of worker scheduling.
    ``fn`` must be a module-level (picklable) function and must be a
    pure function of its item -- in particular any randomness must be
    seeded from the item itself, never from global state.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    context = _fork_context()
    if context is None:
        return [fn(item) for item in items]
    count = min(count, len(items))
    if chunksize is None:
        # A few chunks per worker balances load without drowning the
        # pool in tiny tasks.
        chunksize = max(1, len(items) // (count * 4))
    with context.Pool(processes=count) as pool:
        return pool.map(fn, items, chunksize)
