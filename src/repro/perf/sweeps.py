"""Deterministic parallel sweep runner.

Workload sweeps (Figures 3-5, the fault sweeps, seed batteries) are
embarrassingly parallel: every point is a pure function of its own
parameters, including its own seed.  :func:`parallel_map` fans such
points out over a ``multiprocessing`` pool while keeping the results
**bit-identical to the serial run**:

* results come back in submission order (``Pool.map`` preserves it);
* every item carries its own seed in its arguments, so the outcome
  never depends on which worker computed it or in what order;
* the serial path runs the very same function, so ``workers=1`` is
  the reference implementation.

The pool uses the ``fork`` start method (cheap, and lets benchmark
scripts pass module-level functions defined in ``__main__``).  Where
``fork`` is unavailable (non-POSIX platforms) the runner silently
degrades to the serial path -- a gate, not a new dependency.

:func:`prefix_map` is the shared-prefix planner on top of
:mod:`repro.perf.snapshot`: sweep points that share a warm-up prefix
are grouped by a :class:`PrefixSpec`, each group's prefix is simulated
**once**, and the per-point continuations run from checkpoint/restore
snapshots of it -- with results byte-identical to the cold path in
every mode (fork / deepcopy / cold).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.perf import snapshot as _snapshot

__all__ = [
    "resolve_workers",
    "parallel_map",
    "PrefixSpec",
    "prefix_map",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob: default worker count for benchmark sweeps
#: (0 = one per CPU).
WORKERS_ENV = "REPRO_BENCH_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Turn a worker request into a concrete count.

    ``None`` falls back to the ``REPRO_BENCH_WORKERS`` environment
    variable, then to 1 (serial).  ``0`` means one worker per CPU.
    Negative values are an error.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        workers = int(raw) if raw else 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative (got {workers})")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    The result list is in item order regardless of worker scheduling.
    ``fn`` must be a module-level (picklable) function and must be a
    pure function of its item -- in particular any randomness must be
    seeded from the item itself, never from global state.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    context = _fork_context()
    if context is None:
        return [fn(item) for item in items]
    count = min(count, len(items))
    if chunksize is None:
        # A few chunks per worker balances load without drowning the
        # pool in tiny tasks.
        chunksize = max(1, len(items) // (count * 4))
    with context.Pool(processes=count) as pool:
        return pool.map(fn, items, chunksize)


# ----------------------------------------------------------------------
# shared-prefix sweeps
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PrefixSpec:
    """Identity and builder of one shared sweep prefix.

    ``key`` must fingerprint everything that shapes the prefix (it is
    the grouping key: points whose ``(key, t_split)`` match share one
    simulated prefix).  ``build()`` returns the state paused exactly at
    ``t_split`` -- typically a kernel or cluster advanced through the
    fault-free warm-up.
    """

    key: Tuple
    t_split: int
    build: Callable[[], Any] = field(compare=False)

    def __post_init__(self) -> None:
        if self.t_split < 0:
            raise ValueError(
                f"t_split must be non-negative (got {self.t_split})"
            )


def prefix_map(
    plan: Callable[[T], Tuple[PrefixSpec, Callable[[Any], R]]],
    cases: Sequence[T],
    *,
    mode: Optional[str] = None,
    children: Optional[int] = None,
) -> List[R]:
    """Run a sweep through a shared-prefix plan.

    ``plan(case)`` maps each sweep point to ``(spec, continuation)``:
    the prefix it shares and the function finishing the run from a
    restored prefix state.  Points are grouped by ``(spec.key,
    spec.t_split)``; each group's prefix is simulated once and its
    continuations run from snapshots of it.  Results come back in case
    order and are byte-identical to cold-starting every point
    (``continuation(spec.build())``) -- the fallback this degrades to
    under ``REPRO_SNAPSHOT=0``, on platforms without ``fork``, and for
    groups where sharing cannot pay (a single member, or ``t_split``
    0).

    ``mode`` overrides the ``REPRO_SNAPSHOT`` mechanism; ``children``
    bounds concurrent fork-mode continuations per group (default: the
    ``REPRO_BENCH_WORKERS`` worker count).  In fork mode all group
    servers are created up front, so distinct prefixes simulate
    concurrently even with ``children=1``.
    """
    cases = list(cases)
    mechanism = _snapshot.resolve_snapshot_mode(mode)
    groups: Dict[Tuple, Tuple[PrefixSpec, List[Tuple[int, Callable]]]] = {}
    order: List[Tuple] = []
    for index, case in enumerate(cases):
        spec, continuation = plan(case)
        group_key = (spec.key, spec.t_split)
        bucket = groups.get(group_key)
        if bucket is None:
            bucket = groups[group_key] = (spec, [])
            order.append(group_key)
        bucket[1].append((index, continuation))
    results: List[Any] = [None] * len(cases)

    def run_cold(spec: PrefixSpec, members) -> None:
        for index, continuation in members:
            results[index] = continuation(spec.build())

    def shareable(spec: PrefixSpec, members) -> bool:
        return spec.t_split > 0 and len(members) > 1

    if mechanism == "fork":
        servers: Dict[Tuple, _snapshot.SnapshotServer] = {}
        try:
            for group_key in order:
                spec, members = groups[group_key]
                if shareable(spec, members):
                    servers[group_key] = _snapshot.SnapshotServer(
                        spec.build,
                        [continuation for _, continuation in members],
                        children=resolve_workers(children),
                        name=f"prefix{spec.key!r}@{spec.t_split}",
                    )
            for group_key in order:
                spec, members = groups[group_key]
                server = servers.get(group_key)
                if server is None:
                    run_cold(spec, members)
                    continue
                for (index, _), outcome in zip(members, server.results()):
                    results[index] = outcome
        finally:
            for server in servers.values():
                server.close()
    elif mechanism == "deepcopy":
        cache = _snapshot.SnapshotCache(capacity=max(1, len(groups)))
        for group_key in order:
            spec, members = groups[group_key]
            if shareable(spec, members):
                for index, continuation in members:
                    results[index] = continuation(
                        cache.restore(repr(spec.key), spec.t_split, spec.build)
                    )
            else:
                run_cold(spec, members)
    else:
        for group_key in order:
            spec, members = groups[group_key]
            run_cold(spec, members)
    return results
