"""The persistent perf trajectory: ``BENCH_kernel.json``.

Every throughput measurement appends one machine-readable entry, so
the repository carries its own performance history: any PR that slows
the simulator down shows up as a droop in the committed trajectory,
and CI fails outright when the regression passes a threshold.

An entry records what was measured (``config_hash`` fingerprints the
workload + policies + horizon + recording mode), what came out
(throughput in sim-ns per wall-second, wall time, counters), and the
determinism cross-check (full-mode trace sha256 signatures -- an
optimization that changes these changed *behavior*, not just speed).
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "config_hash",
    "load_trajectory",
    "append_entry",
    "latest_entry",
    "check_regression",
    "RegressionError",
]

PathLike = Union[str, Path]

#: Default CI gate: fail when throughput drops more than 30% below
#: the committed baseline.
DEFAULT_MAX_REGRESSION = 0.30


class RegressionError(AssertionError):
    """Throughput fell more than the allowed fraction below baseline."""


def config_hash(config: Dict) -> str:
    """Stable fingerprint of a measurement configuration."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def load_trajectory(path: PathLike) -> List[Dict]:
    """All recorded entries, oldest first (empty when absent)."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of entries")
    return data


def make_entry(
    label: str,
    report_dict: Dict,
    config: Dict,
    signatures: Optional[Dict[str, str]] = None,
    **extra,
) -> Dict:
    """Assemble one trajectory entry (not yet persisted)."""
    entry = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "config": config,
        "config_hash": config_hash(config),
        **report_dict,
    }
    if signatures is not None:
        entry["signatures_full"] = signatures
    entry.update(extra)
    return entry


def append_entry(path: PathLike, entry: Dict) -> Dict:
    """Append ``entry`` to the trajectory file and return it."""
    path = Path(path)
    entries = load_trajectory(path)
    entries.append(entry)
    path.write_text(json.dumps(entries, indent=1) + "\n")
    return entry


def latest_entry(
    entries: List[Dict],
    config_hash_value: Optional[str] = None,
    exclude_label: Optional[str] = None,
) -> Optional[Dict]:
    """Most recent entry, optionally restricted to one configuration."""
    for entry in reversed(entries):
        if config_hash_value and entry.get("config_hash") != config_hash_value:
            continue
        if exclude_label and entry.get("label") == exclude_label:
            continue
        return entry
    return None


def check_regression(
    path: PathLike,
    current_throughput: float,
    current_config_hash: str,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> Optional[Dict]:
    """Compare a fresh measurement against the committed baseline.

    The baseline is the most recent committed entry with the same
    ``config_hash`` (measuring a different workload says nothing about
    this one).  Returns the baseline entry used, or ``None`` when no
    comparable baseline exists yet.  Raises :class:`RegressionError`
    when the current throughput is more than ``max_regression`` below
    the baseline's.
    """
    baseline = latest_entry(load_trajectory(path), current_config_hash)
    if baseline is None:
        return None
    base = float(baseline.get("throughput_sim_ns_per_s", 0))
    if base <= 0:
        return None
    floor = base * (1.0 - max_regression)
    if current_throughput < floor:
        raise RegressionError(
            f"throughput regressed: {current_throughput:.3g} sim-ns/s vs "
            f"baseline {base:.3g} ({baseline.get('label')!r}); allowed floor "
            f"{floor:.3g} (-{100 * max_regression:.0f}%)"
        )
    return baseline
