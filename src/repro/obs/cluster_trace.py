"""Cluster-wide distributed tracing: one merged Perfetto timeline.

Single-node runs export through :mod:`repro.obs.tracer`; a cluster run
(PRs 7-8) spans 5-10 kernels, a shared bus, and -- under
``sync="parallel"`` -- several worker processes.  This module merges
all of it into ONE Chrome trace-event JSON:

* one ``pid`` per node (process-named after the node), carrying the
  node's full per-thread timeline exactly as the single-node exporter
  renders it;
* a dedicated **bus** pid: every arbitration win is a complete
  (``"X"``) slice on the wire track (with sender, attempts, verdict,
  and arbitration wait in ``args``); error frames are slices too (they
  occupy the wire); retransmissions, exhausted retries, bus-off
  deferrals, and membership transitions are instant events;
* **flow events** (``ph: "s"``/``"f"``) binding each delivered frame's
  transmit slice to a small receive marker slice on every accepting
  node, so causality renders as arrows in Perfetto.

Flow identity: :meth:`~repro.net.fieldbus.Fieldbus.queue` stamps each
frame with its arbitration sequence number (``Frame.flow``).  Sequence
numbers are assigned at the cluster's barrier merge in deterministic
``(time, node_index, seq)`` order -- the PR 8 invariant -- so flow ids,
and therefore this exporter's output, are **byte-identical** across
``sync=lockstep|adaptive|parallel`` and any worker count.  One frame
reaches up to ``n - 1`` receivers; each (frame, receiver) pair gets
its own arrow, id ``flow * 256 + receiver_index``.

Everything here is strictly post-hoc: the bus log, the per-interface
receive logs, and the collectors only *record*; nothing feeds back
into arbitration or scheduling, so full-mode per-node trace signatures
are unchanged from an uninstrumented run (tested).

Worker aggregation: under ``sync="parallel"`` the kernels, interfaces,
and collectors live in forked workers.  Retrieval goes through the
cluster's location-transparent query layer (``node_traces`` /
``node_collectors`` / ``rx_logs`` / ``node_registries``), which
evaluates module-level query functions inside the owning worker --
collectors pickle without their kernel reference, and per-node metrics
registries are built *in place* so trace-derived stats survive the
trip.  The bus log stays in the parent, which owns the bus in every
mode.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.obs.collector import ObsCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import _ALERT_KINDS, _us, node_trace_events

if TYPE_CHECKING:
    from repro.net.cluster import Cluster
    from repro.net.global_state import GlobalStateChannel
    from repro.net.membership import HeartbeatMonitor

__all__ = [
    "BUS_PID",
    "enable_cluster_tracing",
    "cluster_chrome_trace",
    "export_cluster_trace",
    "cluster_metrics_registry",
]

#: The bus's synthetic process id; node pids follow in node order.
BUS_PID = 1

#: First node pid (node i in cluster order gets ``FIRST_NODE_PID + i``).
FIRST_NODE_PID = 2

#: Bus tracks: transmissions + error frames occupy the wire; the
#: dependability/membership instants get their own track.
_WIRE_TID = 0
_BUS_EVENT_TID = 1

#: Per-node track for receive markers -- far above the thread tids the
#: single-node exporter assigns (those count up from 1).
_RX_TID = 9999

#: Rendered width of a receive marker slice (us).  Purely a rendering
#: aid: the delivery is an instant, but flow finishes need an
#: enclosing slice to bind to (``bp: "e"``), and a 2 us sliver is
#: visible yet an order of magnitude below the 47 us minimum frame
#: time, so consecutive deliveries to one node can never overlap.
_RX_SLICE_US = 2.0

#: Async job span ids are unique only within one node's trace; offset
#: them per pid so spans never collide across nodes.
_SPAN_STRIDE = 10_000_000


def _flow_event_id(flow: int, receiver_index: int) -> int:
    """One arrow per (frame, receiver): distinct ids keep Perfetto
    from chaining all receivers of a broadcast into one polyline."""
    return flow * 256 + receiver_index


def enable_cluster_tracing(
    cluster: "Cluster", obs: Optional[str] = None
) -> "Cluster":
    """Arm cluster-wide trace capture (call before the first run).

    Enables the bus activity log and per-interface accepted-delivery
    logs; with ``obs`` (``"counters"``/``"full"``) also attaches an
    :class:`ObsCollector` to every node that lacks one.  Must run
    before parallel workers fork so the armed state is inherited by
    the shards.  Returns the cluster for chaining.
    """
    if cluster._pool is not None:
        raise RuntimeError(
            "enable_cluster_tracing must run before parallel workers "
            "start (the workers fork the armed interfaces)"
        )
    cluster.bus.enable_trace()
    for interface in cluster.interfaces.values():
        if interface.rx_log is None:
            interface.rx_log = []
    if obs is not None:
        for kernel in cluster.nodes.values():
            if kernel.obs is None:
                ObsCollector(mode=obs).attach(kernel)
    return cluster


def _bus_events(
    cluster: "Cluster",
    rx_logs: Dict[str, Optional[list]],
    node_index: Dict[str, int],
    membership: Optional["HeartbeatMonitor"],
) -> List[Dict]:
    """Bus-pid slices/instants plus the cross-pid flow events."""
    bus_log = cluster.bus.bus_log
    if bus_log is None:
        raise ValueError(
            "the bus activity log is not armed; call "
            "enable_cluster_tracing(cluster) before running"
        )
    events: List[Dict] = [
        {
            "ph": "M", "pid": BUS_PID, "tid": _WIRE_TID,
            "name": "process_name", "args": {"name": "<bus>"},
        },
        {
            "ph": "M", "pid": BUS_PID, "tid": _WIRE_TID,
            "name": "thread_name", "args": {"name": "wire"},
        },
        {
            "ph": "M", "pid": BUS_PID, "tid": _BUS_EVENT_TID,
            "name": "thread_name", "args": {"name": "events"},
        },
    ]
    tx_by_flow: Dict[int, object] = {}
    for ev in bus_log:
        if ev.kind == "tx":
            events.append(
                {
                    "ph": "X", "pid": BUS_PID, "tid": _WIRE_TID,
                    "name": f"tx {ev.can_id:#x}",
                    "cat": "bus",
                    "ts": _us(ev.start), "dur": _us(ev.end - ev.start),
                    "args": {
                        "sender": ev.sender,
                        "flow": ev.flow,
                        "attempts": ev.attempts,
                        "verdict": ev.verdict,
                        "queued_ns": ev.queued,
                        "arbitration_wait_ns": ev.start - ev.queued
                        if ev.attempts == 0 else None,
                    },
                }
            )
            if ev.verdict == "ok":
                tx_by_flow[ev.flow] = ev
        elif ev.kind == "error-frame":
            events.append(
                {
                    "ph": "X", "pid": BUS_PID, "tid": _WIRE_TID,
                    "name": "error-frame",
                    "cat": "bus-error",
                    "ts": _us(ev.start), "dur": _us(ev.end - ev.start),
                    "args": {
                        "sender": ev.sender,
                        "can_id": ev.can_id,
                        "flow": ev.flow,
                        "attempts": ev.attempts,
                    },
                }
            )
        else:
            # retransmit / retransmit-exhausted / bus-off-defer
            events.append(
                {
                    "ph": "i", "pid": BUS_PID, "tid": _BUS_EVENT_TID,
                    "s": "p",
                    "name": ev.kind,
                    "cat": "bus-dep",
                    "ts": _us(ev.start),
                    "args": {
                        "sender": ev.sender,
                        "can_id": ev.can_id,
                        "flow": ev.flow,
                        "attempts": ev.attempts,
                        "until_ns": ev.end,
                    },
                }
            )
    # Flow arrows: transmit slice -> receive marker on each accepting
    # node.  rx logs record only *accepted* deliveries (CRC-dropped,
    # filtered, and overflowed frames never make it), which is exactly
    # the set that is identical in every sync mode.
    for name in sorted(rx_logs, key=lambda n: node_index[n]):
        entries = rx_logs[name]
        if not entries:
            continue
        index = node_index[name]
        pid = FIRST_NODE_PID + index
        events.append(
            {
                "ph": "M", "pid": pid, "tid": _RX_TID,
                "name": "thread_name", "args": {"name": "net-rx"},
            }
        )
        for time, flow, can_id, sender in entries:
            tx = tx_by_flow.get(flow)
            if tx is None or flow is None:
                continue  # a frame queued outside the traced window
            flow_id = _flow_event_id(flow, index)
            ts_rx = _us(time)
            events.append(
                {
                    "ph": "X", "pid": pid, "tid": _RX_TID,
                    "name": f"rx {can_id:#x}",
                    "cat": "net-rx",
                    "ts": ts_rx, "dur": _RX_SLICE_US,
                    "args": {"sender": sender, "flow": flow},
                }
            )
            events.append(
                {
                    "ph": "s", "pid": BUS_PID, "tid": _WIRE_TID,
                    "name": f"frame {can_id:#x}",
                    "cat": "bus-flow",
                    "id": flow_id,
                    "ts": _us(tx.start),
                }
            )
            events.append(
                {
                    "ph": "f", "pid": pid, "tid": _RX_TID,
                    "name": f"frame {can_id:#x}",
                    "cat": "bus-flow",
                    "id": flow_id,
                    "ts": ts_rx,
                    "bp": "e",
                }
            )
    if membership is not None:
        for time, observer, peer, state in membership.events:
            events.append(
                {
                    "ph": "i", "pid": BUS_PID, "tid": _BUS_EVENT_TID,
                    "s": "p",
                    "name": f"membership-{state}",
                    "cat": "membership",
                    "ts": _us(time),
                    "args": {"observer": observer, "peer": peer},
                }
            )
    return events


def cluster_chrome_trace(
    cluster: "Cluster",
    label: str = "emeralds-cluster",
    membership: Optional["HeartbeatMonitor"] = None,
) -> Dict:
    """Build the merged Chrome trace-event JSON for a cluster run.

    Requires :func:`enable_cluster_tracing` before the run and
    full-mode per-node traces (the per-thread slices come from their
    segments).  Deliberately excludes anything mode-dependent
    (sync mode, worker count, window statistics) from the payload, so
    the export is byte-identical across sync modes and worker counts.
    """
    names = list(cluster.nodes)
    node_index = {name: i for i, name in enumerate(names)}
    traces = cluster.node_traces()
    collectors = cluster.node_collectors()
    rx_logs = cluster.rx_logs()
    events = _bus_events(cluster, rx_logs, node_index, membership)
    last = 0
    for ev in cluster.bus.bus_log or ():
        if ev.end > last:
            last = ev.end
    for i, name in enumerate(names):
        trace = traces[name]
        pid = FIRST_NODE_PID + i
        events.extend(
            node_trace_events(
                trace,
                collectors.get(name),
                label=name,
                pid=pid,
                span_base=pid * _SPAN_STRIDE,
            )
        )
        node_last = trace.last_time()
        if node_last > last:
            last = node_last
    # Deterministic order: by timestamp (metadata first), then by the
    # original append position (sort is stable and the append order is
    # bus -> nodes in cluster order -- identical in every mode).
    events.sort(key=lambda e: (e.get("ts", -1.0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.cluster_trace",
            "virtual_time_ns": last,
            "nodes": names,
            "alert_kinds": sorted(_ALERT_KINDS),
        },
    }


def export_cluster_trace(
    path,
    cluster: "Cluster",
    label: str = "emeralds-cluster",
    membership: Optional["HeartbeatMonitor"] = None,
    indent: Optional[int] = 1,
) -> int:
    """Write the merged cluster trace JSON; returns the event count."""
    payload = cluster_chrome_trace(cluster, label=label, membership=membership)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=indent, sort_keys=True)
        fh.write("\n")
    return len(payload["traceEvents"])


#: Engine-machinery series excluded from the cluster aggregate.  They
#: count host-level simulator events (event-loop pops, event-queue
#: depth samples at barrier wakeups), which legitimately vary with the
#: synchronization mode -- lockstep wakes every node at every quantum,
#: adaptive skips idle windows -- while the *workload* metrics do not.
#: Including them would break the byte-identity contract of
#: :func:`cluster_metrics_registry`; they stay available per node on
#: each collector's own registry.
ENGINE_INTERNAL_METRICS = ("engine_event_queue_depth", "kernel_events_popped")


def _engine_internal(name: str) -> bool:
    return any(name.startswith(prefix) for prefix in ENGINE_INTERNAL_METRICS)


def _with_node_label(registry: MetricsRegistry, node: str) -> MetricsRegistry:
    """Copy ``registry`` with a ``node`` label added to every series,
    so per-node registries merge without colliding on task names.
    Engine-machinery series (:data:`ENGINE_INTERNAL_METRICS`) are
    dropped -- they are sync-mode-dependent by nature."""
    out = MetricsRegistry()
    for (name, labels), metric in sorted(registry._metrics.items()):
        if _engine_internal(name):
            continue
        labeled = dict(labels)
        labeled["node"] = node
        if metric.kind == "counter":
            out.counter(name, **labeled).inc(metric.value)
        elif metric.kind == "gauge":
            gauge = out.gauge(name, **labeled)
            gauge.set(metric.value)
            gauge.max_seen = metric.max_seen
        else:
            hist = out.histogram(name, buckets=metric.buckets, **labeled)
            hist.counts = list(metric.counts)
            hist.total = metric.total
            hist.count = metric.count
    return out


def cluster_metrics_registry(
    cluster: "Cluster",
    channels: Iterable["GlobalStateChannel"] = (),
    monitor: Optional["HeartbeatMonitor"] = None,
) -> MetricsRegistry:
    """Aggregate cluster metrics: per-node collector registries (each
    relabeled with ``node=<name>``) plus the bus/dependability metrics.

    Per-node registries are built where each kernel lives (inside the
    owning worker under ``sync="parallel"``), then merged in node
    order -- deterministic, so the JSON/Prometheus exports are
    byte-identical across sync modes and worker counts.
    """
    # Imported lazily: repro.net.depend imports repro.obs.metrics, and
    # this module is part of the repro.obs package init.
    from repro.net.depend import populate_net_registry

    merged = MetricsRegistry()
    registries = cluster.node_registries()
    for name in cluster.nodes:
        registry = registries.get(name)
        if registry is not None:
            merged.merge(_with_node_label(registry, name))
    populate_net_registry(merged, cluster, channels, monitor)
    return merged
