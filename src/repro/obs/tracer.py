"""Chrome trace-event export: load kernel runs into Perfetto.

Converts a recorded :class:`~repro.sim.trace.Trace` (plus, optionally,
a full-mode :class:`~repro.obs.collector.ObsCollector`) into the
Chrome trace-event JSON format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* execution segments become complete (``"X"``) slices on one track per
  thread (plus a ``<kernel>`` track for charged kernel time);
* job lifecycles (release -> completion) become async (``"b"``/``"e"``)
  spans, so overrun jobs that overlap their successor render correctly;
* trace point events (deadline misses, faults, crashes, budget
  overruns...) become instant (``"i"``) events;
* priority-inheritance donations/restores from the collector become
  instant events on the holder's track.

The exporter is strictly post-hoc: it *derives* everything from the
records the trace already keeps, adds nothing to the hot path, and
therefore cannot move full-mode trace signatures.

Timestamps: the trace-event format counts in microseconds; virtual
nanoseconds are divided by 1000 and rounded to 3 decimals (exact,
deterministic).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.trace import IDLE, KERNEL, Trace

if TYPE_CHECKING:
    from repro.obs.collector import ObsCollector

__all__ = [
    "chrome_trace_events",
    "node_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "REQUIRED_TRACE_KEYS",
]

#: Top-level keys every export carries (the schema CI validates).
REQUIRED_TRACE_KEYS = ("traceEvents", "displayTimeUnit", "otherData")

#: Synthetic pid for the single simulated node.
_PID = 1

#: tid reserved for charged kernel time.
_KERNEL_TID = 0

#: Instant-event kinds that signal trouble (rendered with their own
#: category so Perfetto can color/filter them).
_ALERT_KINDS = frozenset(
    {
        "deadline-miss",
        "deadline-miss-detected",
        "deadline-overrun",
        "budget-overrun",
        "crash",
        "restart",
        "restart-exhausted",
        "protection-fault",
        "job-aborted",
        "torn-read",
        "release-overrun",
        "release-shed",
    }
)


def _us(ns: int) -> float:
    """Virtual ns -> trace-format microseconds (exact to 3 decimals)."""
    return round(ns / 1000, 3)


def _thread_tids(trace: Trace) -> Dict[str, int]:
    """Stable thread -> tid mapping (sorted names, tid 1 upward)."""
    names = set()
    for seg in trace.segments:
        if seg.who not in (IDLE, KERNEL):
            names.add(seg.who)
    for job in trace.jobs:
        names.add(job.thread)
    return {name: tid for tid, name in enumerate(sorted(names), start=1)}


def node_trace_events(
    trace: Trace,
    collector: Optional["ObsCollector"] = None,
    label: str = "emeralds-sim",
    pid: int = _PID,
    span_base: int = 0,
) -> List[Dict]:
    """The (unsorted) trace events of one node under process ``pid``.

    The shared per-node generator: the single-node exporter emits one
    node at ``pid=1``; the cluster exporter
    (:mod:`repro.obs.cluster_trace`) calls it once per node with a
    distinct pid and a per-node ``span_base`` offsetting the async job
    span ids, which are only unique *within* a trace and would collide
    across nodes otherwise.
    """
    tids = _thread_tids(trace)
    events: List[Dict] = []

    # Metadata: process and track names.
    events.append(
        {
            "ph": "M", "pid": pid, "tid": _KERNEL_TID,
            "name": "process_name", "args": {"name": label},
        }
    )
    events.append(
        {
            "ph": "M", "pid": pid, "tid": _KERNEL_TID,
            "name": "thread_name", "args": {"name": KERNEL},
        }
    )
    for name, tid in tids.items():
        events.append(
            {
                "ph": "M", "pid": pid, "tid": tid,
                "name": "thread_name", "args": {"name": name},
            }
        )

    # Execution and kernel-time slices.
    for seg in trace.segments:
        if seg.who == IDLE:
            continue
        if seg.who == KERNEL:
            tid, name, cat = _KERNEL_TID, "kernel", "kernel"
        else:
            tid, name, cat = tids[seg.who], seg.who, "exec"
        events.append(
            {
                "ph": "X", "pid": pid, "tid": tid, "name": name,
                "cat": cat, "ts": _us(seg.start), "dur": _us(seg.duration),
            }
        )

    # Job lifecycle spans (async, so overrun jobs may overlap).
    for index, job in enumerate(trace.jobs):
        if job.completion is None:
            continue
        tid = tids[job.thread]
        span_id = span_base + index + 1
        common = {
            "pid": pid, "tid": tid, "cat": "job",
            "name": f"{job.thread} job", "id": span_id,
        }
        events.append({**common, "ph": "b", "ts": _us(job.release)})
        events.append(
            {
                **common,
                "ph": "e",
                "ts": _us(job.completion),
                "args": {
                    "response_ns": job.completion - job.release,
                    "deadline_ns": job.deadline,
                    "missed": job.missed,
                    "aborted": job.aborted,
                },
            }
        )

    # Instant events from the trace's point-event log.
    for time, kind, detail in trace.event_log():
        if kind == "context-switch":
            continue  # the exec slices already show switches
        events.append(
            {
                "ph": "i", "pid": pid, "tid": _KERNEL_TID, "s": "g",
                "name": kind,
                "cat": "alert" if kind in _ALERT_KINDS else "event",
                "ts": _us(time),
                "args": {"detail": detail},
            }
        )

    # Priority-inheritance instants from the collector (full mode).
    if collector is not None:
        for ev in collector.pi_events:
            tid = tids.get(ev.holder, _KERNEL_TID)
            if ev.kind == "restore":
                name = "pi-restore"
                args: Dict = {"holder": ev.holder}
            else:
                name = "pi-donation"
                args = {
                    "sem": ev.sem,
                    "donor": ev.donor,
                    "holder": ev.holder,
                    "kind": ev.kind,
                    "transitive": ev.transitive,
                }
            events.append(
                {
                    "ph": "i", "pid": pid, "tid": tid, "s": "t",
                    "name": name, "cat": "pi", "ts": _us(ev.time),
                    "args": args,
                }
            )
    return events


def chrome_trace_events(
    trace: Trace,
    collector: Optional["ObsCollector"] = None,
    label: str = "emeralds-sim",
) -> Dict:
    """Build the Chrome trace-event JSON object for one run."""
    events = node_trace_events(trace, collector, label=label)
    # Deterministic order: by timestamp, metadata first, stable within.
    events.sort(key=lambda e: (e.get("ts", -1.0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.tracer",
            "virtual_time_ns": trace.last_time(),
            "record_mode": trace.record,
            "truncated": trace.events_truncated,
        },
    }


def export_chrome_trace(
    path,
    trace: Trace,
    collector: Optional["ObsCollector"] = None,
    label: str = "emeralds-sim",
    indent: Optional[int] = 1,
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    payload = chrome_trace_events(trace, collector, label=label)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=indent, sort_keys=True)
        fh.write("\n")
    return len(payload["traceEvents"])


def validate_chrome_trace(payload: Dict) -> int:
    """Check the trace-event schema; returns the event count.

    Raises :class:`ValueError` on any violation -- the check CI runs
    after ``json.load`` on the exported artifact.  Beyond the basic
    per-event shape it checks two cross-event invariants the cluster
    exporter relies on:

    * **flow-event pairing**: flow events match on ``(cat, id)``;
      every start (``"s"``) needs a finish (``"f"``) and vice versa
      (a dangling arrow renders as nothing in Perfetto, silently);
    * **process naming**: every pid that appears must carry a
      ``process_name`` metadata record, so multi-pid (cluster) traces
      label each node's track group.
    """
    if not isinstance(payload, dict):
        raise ValueError("chrome trace must be a JSON object")
    for key in REQUIRED_TRACE_KEYS:
        if key not in payload:
            raise ValueError(f"chrome trace missing required key {key!r}")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    pids = set()
    named_pids = set()
    flow_starts = set()
    flow_finishes = set()
    for event in events:
        if "ph" not in event or "pid" not in event:
            raise ValueError(f"malformed trace event: {event!r}")
        ph = event["ph"]
        pids.add(event["pid"])
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event["pid"])
            continue
        if "ts" not in event:
            raise ValueError(f"non-metadata event without ts: {event!r}")
        if ph == "X" and "dur" not in event:
            raise ValueError(f"complete event without dur: {event!r}")
        if ph in ("s", "t", "f"):
            if "id" not in event:
                raise ValueError(f"flow event without id: {event!r}")
            key = (event.get("cat"), event["id"])
            if ph == "s":
                flow_starts.add(key)
            elif ph == "f":
                flow_finishes.add(key)
    unfinished = flow_starts - flow_finishes
    if unfinished:
        raise ValueError(
            f"flow starts without a matching finish: {sorted(unfinished)[:5]!r}"
        )
    unstarted = flow_finishes - flow_starts
    if unstarted:
        raise ValueError(
            f"flow finishes without a matching start: {sorted(unstarted)[:5]!r}"
        )
    unnamed = pids - named_pids
    if unnamed:
        raise ValueError(
            f"pids without process_name metadata: {sorted(unnamed)!r}"
        )
    return len(events)
