"""Structured observability: metrics registry, trace export, analyzers.

Public surface:

* :class:`~repro.obs.metrics.MetricsRegistry` and its instrument types
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) -- the
  deterministic registry with JSON / Prometheus-text export;
* :class:`~repro.obs.collector.ObsCollector` -- attaches to a kernel
  and populates the registry from dispatch/block/PI hook points;
* :mod:`~repro.obs.tracer` -- Chrome trace-event (Perfetto) export;
* :mod:`~repro.obs.analyzers` -- latency percentiles and
  priority-inheritance chain reconstruction.
"""

from repro.obs.analyzers import (
    PiChain,
    blocking_report,
    bus_chain_latency,
    bus_chain_report,
    latency_report,
    percentile,
    pi_chain_report,
    pi_chains,
    response_percentiles,
)
from repro.obs.cluster_trace import (
    BUS_PID,
    cluster_chrome_trace,
    cluster_metrics_registry,
    enable_cluster_tracing,
    export_cluster_trace,
)
from repro.obs.collector import (
    OBS_MODES,
    BlockingInterval,
    ObsCollector,
    PiEvent,
)
from repro.obs.metrics import (
    DEFAULT_RESPONSE_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    REQUIRED_TRACE_KEYS,
    chrome_trace_events,
    export_chrome_trace,
    node_trace_events,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_RESPONSE_BUCKETS_NS",
    "ObsCollector",
    "PiEvent",
    "BlockingInterval",
    "OBS_MODES",
    "chrome_trace_events",
    "node_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "REQUIRED_TRACE_KEYS",
    "BUS_PID",
    "enable_cluster_tracing",
    "cluster_chrome_trace",
    "export_cluster_trace",
    "cluster_metrics_registry",
    "percentile",
    "response_percentiles",
    "latency_report",
    "PiChain",
    "pi_chains",
    "pi_chain_report",
    "blocking_report",
    "bus_chain_latency",
    "bus_chain_report",
]
