"""Structured observability: metrics registry, trace export, analyzers.

Public surface:

* :class:`~repro.obs.metrics.MetricsRegistry` and its instrument types
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) -- the
  deterministic registry with JSON / Prometheus-text export;
* :class:`~repro.obs.collector.ObsCollector` -- attaches to a kernel
  and populates the registry from dispatch/block/PI hook points;
* :mod:`~repro.obs.tracer` -- Chrome trace-event (Perfetto) export;
* :mod:`~repro.obs.analyzers` -- latency percentiles and
  priority-inheritance chain reconstruction.
"""

from repro.obs.analyzers import (
    PiChain,
    blocking_report,
    latency_report,
    percentile,
    pi_chain_report,
    pi_chains,
    response_percentiles,
)
from repro.obs.collector import (
    OBS_MODES,
    BlockingInterval,
    ObsCollector,
    PiEvent,
)
from repro.obs.metrics import (
    DEFAULT_RESPONSE_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    REQUIRED_TRACE_KEYS,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_RESPONSE_BUCKETS_NS",
    "ObsCollector",
    "PiEvent",
    "BlockingInterval",
    "OBS_MODES",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "REQUIRED_TRACE_KEYS",
    "percentile",
    "response_percentiles",
    "latency_report",
    "PiChain",
    "pi_chains",
    "pi_chain_report",
    "blocking_report",
]
