"""The kernel-side observability collector.

An :class:`ObsCollector` attaches to a kernel (``collector.attach(k)``)
and receives callbacks from the kernel's existing hook points -- the
dispatcher, the block/unblock paths, job completion, and the semaphore
priority-inheritance code.  It records what the flat event log cannot
answer cheaply:

* per task: preemptions, dispatches, completed/aborted jobs, deadline
  misses, response-time min/sum/max (and, in full mode, a fixed-bucket
  histogram);
* per semaphore: number and total virtual duration of blocking
  episodes, the deepest waiter queue seen, and priority-inheritance
  donations (in full mode, the individual donation/restore events the
  PI-chain analyzer reconstructs);
* per queue: the engine event-queue depth sampled at every context
  switch.

Hot-path discipline (the PR-3 rule): observation is **off by default**
(``kernel.obs is None`` costs one attribute read and an ``is`` check
at each hook point); when enabled in ``"counters"`` mode every
callback performs plain integer adds only, and the hottest hook --
the per-context-switch counters -- is *inlined* in the kernel's
``_dispatch`` rather than called (a Python call per switch costs
measurable throughput; :meth:`ObsCollector.on_switch` stays as the
reference implementation).  Job completions are only counted live
when the trace kept no record (``record="off"``); on recorded runs
:meth:`ObsCollector.as_registry` folds the trace's job records in
post-hoc and the completion hot path is a two-comparison no-op.
``"full"`` mode additionally appends event records and feeds
histograms -- it is meant for analysis runs, not throughput
measurements.

Determinism: every recorded value derives from virtual time or event
counts, so the exports are byte-identical across repeated runs and
across ``parallel_map`` worker counts.  The collector never charges
virtual time and never writes to the :class:`~repro.sim.trace.Trace`,
so full-mode trace signatures are unchanged by attaching it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.obs.metrics import (
    DEFAULT_RESPONSE_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
)

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

__all__ = ["ObsCollector", "PiEvent", "BlockingInterval", "OBS_MODES"]

#: Valid collector modes, least to most detailed.
OBS_MODES = ("counters", "full")

#: ``blocked_on`` prefixes that mean "waiting because of a semaphore".
#: The part after the first colon is the semaphore name.
_SEM_REASONS = ("sem:", "sem-parked:", "sem-registry:")


class PiEvent(NamedTuple):
    """One priority-inheritance step (full mode only).

    ``kind`` is ``"raise"`` (standard queue reposition), ``"swap"``
    (the EMERALDS O(1) place-holder swap), or ``"restore"`` (the
    holder's inherited priority was undone; ``sem``/``donor`` empty).
    ``transitive`` marks steps propagated down a holder chain.
    """

    time: int
    sem: str
    donor: str
    holder: str
    kind: str
    transitive: bool


class BlockingInterval(NamedTuple):
    """One closed semaphore-induced blocking episode (full mode)."""

    sem: str
    thread: str
    start: int
    end: int
    reason: str


class _TaskStats:
    __slots__ = (
        "completions", "misses", "aborts",
        "resp_sum", "resp_min", "resp_max",
    )

    def __init__(self) -> None:
        self.completions = 0
        self.misses = 0
        self.aborts = 0
        self.resp_sum = 0
        self.resp_min = -1  # -1 = nothing observed yet
        self.resp_max = 0


class _SemStats:
    __slots__ = ("blocks", "blocked_ns", "max_waiters", "donations")

    def __init__(self) -> None:
        self.blocks = 0
        self.blocked_ns = 0
        self.max_waiters = 0
        self.donations = 0


class ObsCollector:
    """Deterministic run observer (see module docstring).

    Args:
        mode: ``"counters"`` (scalar adds only; the <10%-overhead
            mode) or ``"full"`` (also histograms, blocking intervals,
            and PI events for the analyzers).
        response_buckets: Histogram bucket bounds (ns) for per-task
            response times (full mode).
    """

    __slots__ = (
        "mode", "full", "response_buckets", "kernel", "tasks", "sems",
        "_block_since", "switches", "dispatch_counts", "preempt_counts",
        "queue_depth_max", "queue_depth_sum",
        "pi_events", "blocking_intervals", "response_hists",
        "_registry_sources",
    )

    def __init__(
        self,
        mode: str = "counters",
        response_buckets: Tuple[int, ...] = DEFAULT_RESPONSE_BUCKETS_NS,
    ):
        if mode not in OBS_MODES:
            raise ValueError(
                f"unknown obs mode {mode!r} (expected one of {OBS_MODES})"
            )
        self.mode = mode
        self.full = mode == "full"
        self.response_buckets = tuple(response_buckets)
        self.kernel: Optional["Kernel"] = None
        self.tasks: Dict[str, _TaskStats] = {}
        self.sems: Dict[str, _SemStats] = {}
        #: Open blocking episodes: thread -> (sem, start, reason).
        self._block_since: Dict[str, Tuple[str, int, str]] = {}
        #: Per-switch counters.  The kernel's ``_dispatch`` updates
        #: these *inline* (plain dict/integer adds, no method call --
        #: a call per context switch measurably costs throughput);
        #: :meth:`on_switch` applies the identical updates for callers
        #: outside that hot path.  Keep the two in sync.
        self.switches = 0
        self.dispatch_counts: Dict[str, int] = {}
        self.preempt_counts: Dict[str, int] = {}
        #: Queue depth is sampled once per switch, so ``switches`` is
        #: the sample count -- no separate samples counter to bump.
        self.queue_depth_max = 0
        self.queue_depth_sum = 0
        # full-mode event records
        self.pi_events: List[PiEvent] = []
        self.blocking_intervals: List[BlockingInterval] = []
        self.response_hists: Dict[str, Histogram] = {}
        #: Extra exporters: ``fn(registry)`` called at the end of
        #: :meth:`as_registry` (e.g. fieldbus dependability metrics).
        self._registry_sources: List = []

    def attach(self, kernel: "Kernel") -> "ObsCollector":
        """Install this collector on ``kernel`` and return it."""
        if kernel.obs is not None and kernel.obs is not self:
            raise ValueError("kernel already has an observer attached")
        kernel.obs = self
        self.kernel = kernel
        return self

    # ------------------------------------------------------------------
    # pickling (cluster workers ship collectors across the fork barrier)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Picklable snapshot of everything the collector *observed*.

        The attached kernel (whose thread programs hold closures) and
        the registry-source callbacks are dropped: a collector shipped
        back from a parallel-cluster worker carries its event records
        and counters, not live kernel state.  Consequently
        :meth:`as_registry` on an unpickled collector lacks the
        trace-derived completion stats -- cluster aggregation therefore
        builds registries *inside* the owning worker (see
        ``repro.obs.cluster_trace``) and ships those instead.
        """
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["kernel"] = None
        state["_registry_sources"] = []
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------------
    # internal get-or-create (kept tiny; runs on enabled hot paths)
    # ------------------------------------------------------------------
    def _task(self, name: str) -> _TaskStats:
        stats = self.tasks.get(name)
        if stats is None:
            stats = self.tasks[name] = _TaskStats()
        return stats

    def _sem(self, name: str) -> _SemStats:
        stats = self.sems.get(name)
        if stats is None:
            stats = self.sems[name] = _SemStats()
        return stats

    # ------------------------------------------------------------------
    # hooks (called by the kernel and the semaphores)
    # ------------------------------------------------------------------
    def on_block(self, thread: str, reason: str, now: int) -> None:
        """A thread blocked; track it when a semaphore is the cause."""
        for prefix in _SEM_REASONS:
            if reason.startswith(prefix):
                sem = reason[len(prefix):]
                self._sem(sem).blocks += 1
                self._block_since[thread] = (sem, now, prefix[:-1])
                return

    def on_unblock(self, thread: str, now: int) -> None:
        """A thread woke; close its open blocking episode, if any."""
        open_block = self._block_since.pop(thread, None)
        if open_block is None:
            return
        sem, start, reason = open_block
        self._sem(sem).blocked_ns += now - start
        if self.full:
            self.blocking_intervals.append(
                BlockingInterval(sem, thread, start, now, reason)
            )

    def on_switch(
        self,
        now: int,
        old: Optional[str],
        new: Optional[str],
        preempted: bool,
        queue_depth: int,
    ) -> None:
        """A context switch happened; count it and sample queue depth.

        The kernel dispatcher inlines these updates instead of calling
        this (see ``Kernel._dispatch``); this method exists for other
        callers and as the reference for what the inlined block does.
        """
        self.switches += 1
        if new is not None:
            counts = self.dispatch_counts
            counts[new] = counts.get(new, 0) + 1
        if preempted and old is not None:
            counts = self.preempt_counts
            counts[old] = counts.get(old, 0) + 1
        self.queue_depth_sum += queue_depth
        if queue_depth > self.queue_depth_max:
            self.queue_depth_max = queue_depth

    def on_job_completed(
        self, thread: str, release: int, completion: int, deadline: Optional[int]
    ) -> None:
        """A job finished; record its response time (and a miss)."""
        stats = self._task(thread)
        stats.completions += 1
        response = completion - release
        stats.resp_sum += response
        if stats.resp_min < 0 or response < stats.resp_min:
            stats.resp_min = response
        if response > stats.resp_max:
            stats.resp_max = response
        if deadline is not None and completion > deadline:
            stats.misses += 1
        if self.full:
            hist = self.response_hists.get(thread)
            if hist is None:
                hist = self.response_hists[thread] = Histogram(
                    "task_response_ns",
                    (("task", thread),),
                    buckets=self.response_buckets,
                )
            hist.observe(response)

    def on_job_aborted(self, thread: str) -> None:
        """A job was abandoned (budget overrun, crash, restart)."""
        self._task(thread).aborts += 1

    def on_sem_wait(self, sem: str, depth: int) -> None:
        """The waiter/parked population of a semaphore grew to ``depth``."""
        stats = self._sem(sem)
        if depth > stats.max_waiters:
            stats.max_waiters = depth

    def on_pi_donation(
        self,
        now: int,
        sem: str,
        donor: str,
        holder: str,
        kind: str,
        transitive: bool = False,
    ) -> None:
        """``donor``'s priority was donated to ``holder`` through ``sem``."""
        self._sem(sem).donations += 1
        if self.full:
            self.pi_events.append(
                PiEvent(now, sem, donor, holder, kind, transitive)
            )

    def on_pi_restore(self, now: int, thread: str) -> None:
        """``thread``'s inherited priority was undone."""
        if self.full:
            self.pi_events.append(PiEvent(now, "", "", thread, "restore", False))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_registry(self) -> MetricsRegistry:
        """Materialize everything observed into a metrics registry.

        Includes the kernel's own counters and per-category kernel time
        (snapshotted from the attached kernel's trace) so one export
        carries the whole picture.
        """
        reg = MetricsRegistry()
        # The kernel dispatcher tallies per-task switches on the TCB
        # (cheapest inline form); fold those into the name-keyed
        # dicts :meth:`on_switch` maintains for other callers.
        dispatches = dict(self.dispatch_counts)
        preempts = dict(self.preempt_counts)
        if self.kernel is not None:
            for name, thread in self.kernel.threads.items():
                if thread.obs_dispatches:
                    dispatches[name] = (
                        dispatches.get(name, 0) + thread.obs_dispatches
                    )
                if thread.obs_preemptions:
                    preempts[name] = (
                        preempts.get(name, 0) + thread.obs_preemptions
                    )
        # Completion stats: jobs counted live by on_job_completed plus
        # jobs the attached kernel's trace recorded -- the kernel only
        # calls the hook when the trace kept no record, so the two
        # sources never overlap (keeps the completion hot path a
        # two-comparison no-op on recorded runs).
        merged: Dict[str, _TaskStats] = {}
        for name, t in self.tasks.items():
            m = merged[name] = _TaskStats()
            m.completions, m.misses, m.aborts = t.completions, t.misses, t.aborts
            m.resp_sum, m.resp_min, m.resp_max = (
                t.resp_sum, t.resp_min, t.resp_max
            )
        traced: Dict[str, List[int]] = {}
        if self.kernel is not None:
            for job in self.kernel.trace.jobs:
                response = job.response_time
                if response is None:
                    continue
                m = merged.get(job.thread)
                if m is None:
                    m = merged[job.thread] = _TaskStats()
                m.completions += 1
                m.resp_sum += response
                if m.resp_min < 0 or response < m.resp_min:
                    m.resp_min = response
                if response > m.resp_max:
                    m.resp_max = response
                if job.missed:
                    m.misses += 1
                if self.full:
                    traced.setdefault(job.thread, []).append(response)
        names = set(merged) | set(dispatches) | set(preempts)
        blank = _TaskStats()
        for name in sorted(names):
            t = merged.get(name, blank)
            reg.counter("task_preemptions_total", task=name).inc(
                preempts.get(name, 0)
            )
            reg.counter("task_dispatches_total", task=name).inc(
                dispatches.get(name, 0)
            )
            reg.counter("task_jobs_completed_total", task=name).inc(t.completions)
            reg.counter("task_jobs_aborted_total", task=name).inc(t.aborts)
            reg.counter("task_deadline_misses_total", task=name).inc(t.misses)
            if t.completions:
                reg.gauge("task_response_ns_min", task=name).set(max(t.resp_min, 0))
                reg.gauge("task_response_ns_max", task=name).set(t.resp_max)
                reg.counter("task_response_ns_sum", task=name).inc(t.resp_sum)
                reg.gauge("task_response_jitter_ns", task=name).set(
                    t.resp_max - max(t.resp_min, 0)
                )
        for name in sorted(self.sems):
            s = self.sems[name]
            reg.counter("sem_blocks_total", sem=name).inc(s.blocks)
            reg.counter("sem_blocked_ns_total", sem=name).inc(s.blocked_ns)
            reg.gauge("sem_waiters_max", sem=name).set(s.max_waiters)
            reg.counter("sem_pi_donations_total", sem=name).inc(s.donations)
        reg.counter("sched_context_switches_total").inc(self.switches)
        depth = reg.gauge("engine_event_queue_depth")
        depth.set(0)
        depth.max_seen = self.queue_depth_max
        reg.counter("engine_event_queue_depth_sum").inc(self.queue_depth_sum)
        # Depth is sampled once per switch, so switches is the count.
        reg.counter("engine_event_queue_depth_samples").inc(self.switches)
        if self.full:
            for name in sorted(set(self.response_hists) | set(traced)):
                hist = reg.histogram(
                    "task_response_ns", buckets=self.response_buckets, task=name
                )
                src = self.response_hists.get(name)
                if src is not None:
                    hist.counts = list(src.counts)
                    hist.total = src.total
                    hist.count = src.count
                for response in traced.get(name, ()):
                    hist.observe(response)
        kernel = self.kernel
        if kernel is not None:
            trace = kernel.trace
            for category in sorted(trace.kernel_time):
                reg.counter("kernel_time_ns_total", category=category).inc(
                    trace.kernel_time[category]
                )
            reg.counter("kernel_idle_ns_total").inc(trace.idle_time)
            reg.counter("kernel_syscalls_total").inc(kernel.syscall_count)
            reg.counter("kernel_dispatches_total").inc(kernel.dispatch_count)
            reg.counter("kernel_events_popped_total").inc(kernel.events_popped)
            reg.gauge("kernel_virtual_time_ns").set(kernel.now)
        for source in self._registry_sources:
            source(reg)
        return reg

    def add_registry_source(self, fn) -> "ObsCollector":
        """Register ``fn(registry)`` to run at the end of every
        :meth:`as_registry` export (subsystems outside the kernel --
        the fieldbus, membership -- contribute their metrics here)."""
        self._registry_sources.append(fn)
        return self

    def metrics_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON export of the metrics registry."""
        return self.as_registry().to_json(indent=indent)

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition export of the metrics registry."""
        return self.as_registry().to_prometheus()
