"""Analyzers over recorded runs: latency percentiles and PI chains.

Two questions the flat event log answers only with ad-hoc scripts:

* *"What is T7's p99 response time under CSD-3?"* --
  :func:`response_percentiles` / :func:`latency_report` compute exact
  per-task percentiles from the trace's job records (nearest-rank, so
  every reported value is a response time that actually occurred).

* *"Which semaphore caused this deadline miss, and who donated
  priority to whom?"* -- :func:`pi_chains` reconstructs
  priority-inheritance chains (donor, the semaphores the donation
  flowed through, every holder raised along the way, and how long the
  inversion lasted) from a full-mode
  :class:`~repro.obs.collector.ObsCollector`;
  :func:`blocking_report` totals per-semaphore blocking.

Everything here is post-hoc and deterministic: inputs are virtual-time
integers, outputs sort by (time, name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.timeunits import to_us

if TYPE_CHECKING:
    from repro.obs.collector import ObsCollector
    from repro.sim.trace import Trace

__all__ = [
    "percentile",
    "response_percentiles",
    "latency_report",
    "PiChain",
    "pi_chains",
    "pi_chain_report",
    "blocking_report",
]


def percentile(values: Sequence[int], q: float) -> Optional[int]:
    """Nearest-rank percentile of a **sorted** sequence.

    Returns an element of ``values`` (never an interpolation), so a
    reported p99 is a response time that actually happened.  ``None``
    for an empty sequence.
    """
    if not values:
        return None
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100] (got {q})")
    # Nearest-rank: ceil(q/100 * n), clamped to [1, n], as a 0-index.
    rank = -(-q * len(values) // 100)  # ceil without floats drifting
    index = max(0, min(len(values) - 1, int(rank) - 1))
    return values[index]


def response_percentiles(trace: "Trace") -> Dict[str, Dict[str, Optional[float]]]:
    """Per-task response-time stats: count/mean/p50/p95/p99/max (ns).

    Requires job records; raises :class:`ValueError` for a trace
    recorded in ``"off"`` mode (nothing was stored to analyze).
    """
    if trace.record == "off":
        raise ValueError(
            "response percentiles need job records, but this trace was "
            "recorded in 'off' mode; re-run with record='jobs-only' or 'full'"
        )
    by_task: Dict[str, List[int]] = {}
    for job in trace.jobs:
        response = job.response_time
        if response is not None:
            by_task.setdefault(job.thread, []).append(response)
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for task in sorted(by_task):
        responses = sorted(by_task[task])
        out[task] = {
            "count": len(responses),
            "mean": sum(responses) / len(responses),
            "p50": percentile(responses, 50),
            "p95": percentile(responses, 95),
            "p99": percentile(responses, 99),
            "max": responses[-1],
        }
    return out


def latency_report(trace: "Trace") -> str:
    """Rendered per-task latency percentile table (us)."""
    from repro.analysis import format_table

    stats = response_percentiles(trace)
    if not stats:
        return "no completed jobs recorded"
    rows = []
    for task, s in stats.items():
        rows.append(
            [
                task,
                s["count"],
                f"{to_us(round(s['mean'])):.1f}",
                f"{to_us(s['p50']):.1f}",
                f"{to_us(s['p95']):.1f}",
                f"{to_us(s['p99']):.1f}",
                f"{to_us(s['max']):.1f}",
            ]
        )
    return format_table(
        ["task", "jobs", "mean us", "p50 us", "p95 us", "p99 us", "max us"],
        rows,
        title="per-task response time",
    )


# ----------------------------------------------------------------------
# priority-inversion / blocking analysis
# ----------------------------------------------------------------------
@dataclass
class PiChain:
    """One reconstructed priority-inheritance chain.

    ``links`` walks the donation hop by hop: ``(sem, holder, kind)``
    -- the donor's priority reached ``holder`` through ``sem`` via a
    standard queue ``raise`` or an EMERALDS place-holder ``swap``.
    ``resolved_at`` is the instant the final holder's inherited
    priority was restored (``None`` when the run ended first).
    """

    donor: str
    start: int
    links: List[Tuple[str, str, str]] = field(default_factory=list)
    resolved_at: Optional[int] = None

    @property
    def holders(self) -> List[str]:
        return [holder for _, holder, _ in self.links]

    @property
    def duration_ns(self) -> Optional[int]:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.start

    def describe(self) -> str:
        """One-line human-readable rendering of the chain."""
        path = " -> ".join(
            f"[{sem}] {holder} ({kind})" for sem, holder, kind in self.links
        )
        tail = (
            f"resolved after {to_us(self.duration_ns):.1f} us"
            if self.resolved_at is not None
            else "unresolved at end of run"
        )
        return f"t={to_us(self.start):.1f}us {self.donor} -> {path}; {tail}"


def pi_chains(collector: "ObsCollector") -> List[PiChain]:
    """Reconstruct donation chains from a full-mode collector.

    A chain starts at a non-transitive donation and extends through the
    transitive steps recorded immediately after it (the semaphore
    code walks holder chains synchronously, so order in the event list
    is chain order).  A ``restore`` of a chain's last holder closes
    every chain that ends in that holder.
    """
    if not collector.full:
        raise ValueError(
            "PI-chain reconstruction needs a full-mode collector "
            "(ObsCollector(mode='full')); counters mode keeps no events"
        )
    chains: List[PiChain] = []
    current: Optional[PiChain] = None
    for event in collector.pi_events:
        if event.kind == "restore":
            current = None
            for chain in chains:
                if chain.resolved_at is None and chain.holders and (
                    chain.holders[-1] == event.holder
                ):
                    chain.resolved_at = event.time
            continue
        link = (event.sem, event.holder, event.kind)
        if (
            event.transitive
            and current is not None
            and current.donor == event.donor
        ):
            current.links.append(link)
            continue
        current = PiChain(donor=event.donor, start=event.time, links=[link])
        chains.append(current)
    return chains


def pi_chain_report(collector: "ObsCollector") -> str:
    """Rendered PI-chain listing plus per-semaphore donation totals."""
    from repro.analysis import format_table

    chains = pi_chains(collector)
    lines: List[str] = []
    if not chains:
        lines.append("no priority-inheritance donations recorded")
    else:
        lines.append(f"priority-inheritance chains ({len(chains)}):")
        for chain in chains:
            lines.append("  " + chain.describe())
        totals: Dict[str, List[int]] = {}
        for chain in chains:
            for sem, _holder, _kind in chain.links:
                entry = totals.setdefault(sem, [0, 0])
                entry[0] += 1
                if chain.duration_ns is not None:
                    entry[1] += chain.duration_ns
        rows = [
            [sem, hops, f"{to_us(total_ns):.1f}"]
            for sem, (hops, total_ns) in sorted(totals.items())
        ]
        lines.append(
            format_table(
                ["sem", "donation hops", "inversion us"],
                rows,
                title="per-semaphore donation totals",
            )
        )
    return "\n".join(lines)


def blocking_report(collector: "ObsCollector") -> str:
    """Rendered per-semaphore blocking/PI totals (any collector mode)."""
    from repro.analysis import format_table

    if not collector.sems:
        return "no semaphore blocking recorded"
    rows = []
    for name in sorted(collector.sems):
        s = collector.sems[name]
        rows.append(
            [
                name,
                s.blocks,
                f"{to_us(s.blocked_ns):.1f}",
                s.max_waiters,
                s.donations,
            ]
        )
    return format_table(
        ["sem", "blocks", "blocked us", "max waiters", "PI donations"],
        rows,
        title="per-semaphore blocking",
    )
