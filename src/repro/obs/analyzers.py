"""Analyzers over recorded runs: latency percentiles and PI chains.

Two questions the flat event log answers only with ad-hoc scripts:

* *"What is T7's p99 response time under CSD-3?"* --
  :func:`response_percentiles` / :func:`latency_report` compute exact
  per-task percentiles from the trace's job records (nearest-rank, so
  every reported value is a response time that actually occurred).

* *"Which semaphore caused this deadline miss, and who donated
  priority to whom?"* -- :func:`pi_chains` reconstructs
  priority-inheritance chains (donor, the semaphores the donation
  flowed through, every holder raised along the way, and how long the
  inversion lasted) from a full-mode
  :class:`~repro.obs.collector.ObsCollector`;
  :func:`blocking_report` totals per-semaphore blocking.

Everything here is post-hoc and deterministic: inputs are virtual-time
integers, outputs sort by (time, name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.timeunits import to_us

if TYPE_CHECKING:
    from repro.obs.collector import ObsCollector
    from repro.sim.trace import Trace

__all__ = [
    "percentile",
    "response_percentiles",
    "latency_report",
    "PiChain",
    "pi_chains",
    "pi_chain_report",
    "blocking_report",
    "bus_chain_latency",
    "bus_chain_report",
]


def percentile(values: Sequence[int], q: float) -> Optional[int]:
    """Nearest-rank percentile of a **sorted** sequence.

    Returns an element of ``values`` (never an interpolation), so a
    reported p99 is a response time that actually happened.  ``None``
    for an empty sequence.
    """
    if not values:
        return None
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100] (got {q})")
    # Nearest-rank: ceil(q/100 * n), clamped to [1, n], as a 0-index.
    rank = -(-q * len(values) // 100)  # ceil without floats drifting
    index = max(0, min(len(values) - 1, int(rank) - 1))
    return values[index]


def response_percentiles(trace: "Trace") -> Dict[str, Dict[str, Optional[float]]]:
    """Per-task response-time stats: count/mean/p50/p95/p99/max (ns).

    Requires job records; raises :class:`ValueError` for a trace
    recorded in ``"off"`` mode (nothing was stored to analyze).
    """
    if trace.record == "off":
        raise ValueError(
            "response percentiles need job records, but this trace was "
            "recorded in 'off' mode; re-run with record='jobs-only' or 'full'"
        )
    by_task: Dict[str, List[int]] = {}
    for job in trace.jobs:
        response = job.response_time
        if response is not None:
            by_task.setdefault(job.thread, []).append(response)
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for task in sorted(by_task):
        responses = sorted(by_task[task])
        out[task] = {
            "count": len(responses),
            "mean": sum(responses) / len(responses),
            "p50": percentile(responses, 50),
            "p95": percentile(responses, 95),
            "p99": percentile(responses, 99),
            "max": responses[-1],
        }
    return out


def latency_report(trace: "Trace") -> str:
    """Rendered per-task latency percentile table (us)."""
    from repro.analysis import format_table

    stats = response_percentiles(trace)
    if not stats:
        return "no completed jobs recorded"
    rows = []
    for task, s in stats.items():
        rows.append(
            [
                task,
                s["count"],
                f"{to_us(round(s['mean'])):.1f}",
                f"{to_us(s['p50']):.1f}",
                f"{to_us(s['p95']):.1f}",
                f"{to_us(s['p99']):.1f}",
                f"{to_us(s['max']):.1f}",
            ]
        )
    return format_table(
        ["task", "jobs", "mean us", "p50 us", "p95 us", "p99 us", "max us"],
        rows,
        title="per-task response time",
    )


# ----------------------------------------------------------------------
# priority-inversion / blocking analysis
# ----------------------------------------------------------------------
@dataclass
class PiChain:
    """One reconstructed priority-inheritance chain.

    ``links`` walks the donation hop by hop: ``(sem, holder, kind)``
    -- the donor's priority reached ``holder`` through ``sem`` via a
    standard queue ``raise`` or an EMERALDS place-holder ``swap``.
    ``resolved_at`` is the instant the final holder's inherited
    priority was restored (``None`` when the run ended first).
    """

    donor: str
    start: int
    links: List[Tuple[str, str, str]] = field(default_factory=list)
    resolved_at: Optional[int] = None

    @property
    def holders(self) -> List[str]:
        return [holder for _, holder, _ in self.links]

    @property
    def duration_ns(self) -> Optional[int]:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.start

    def describe(self) -> str:
        """One-line human-readable rendering of the chain."""
        path = " -> ".join(
            f"[{sem}] {holder} ({kind})" for sem, holder, kind in self.links
        )
        tail = (
            f"resolved after {to_us(self.duration_ns):.1f} us"
            if self.resolved_at is not None
            else "unresolved at end of run"
        )
        return f"t={to_us(self.start):.1f}us {self.donor} -> {path}; {tail}"


def pi_chains(collector: "ObsCollector") -> List[PiChain]:
    """Reconstruct donation chains from a full-mode collector.

    A chain starts at a non-transitive donation and extends through the
    transitive steps recorded immediately after it (the semaphore
    code walks holder chains synchronously, so order in the event list
    is chain order).  A ``restore`` of a chain's last holder closes
    every chain that ends in that holder.
    """
    if not collector.full:
        raise ValueError(
            "PI-chain reconstruction needs a full-mode collector "
            "(ObsCollector(mode='full')); counters mode keeps no events"
        )
    chains: List[PiChain] = []
    current: Optional[PiChain] = None
    for event in collector.pi_events:
        if event.kind == "restore":
            current = None
            for chain in chains:
                if chain.resolved_at is None and chain.holders and (
                    chain.holders[-1] == event.holder
                ):
                    chain.resolved_at = event.time
            continue
        link = (event.sem, event.holder, event.kind)
        if (
            event.transitive
            and current is not None
            and current.donor == event.donor
        ):
            current.links.append(link)
            continue
        current = PiChain(donor=event.donor, start=event.time, links=[link])
        chains.append(current)
    return chains


def pi_chain_report(collector: "ObsCollector") -> str:
    """Rendered PI-chain listing plus per-semaphore donation totals."""
    from repro.analysis import format_table

    chains = pi_chains(collector)
    lines: List[str] = []
    if not chains:
        lines.append("no priority-inheritance donations recorded")
    else:
        lines.append(f"priority-inheritance chains ({len(chains)}):")
        for chain in chains:
            lines.append("  " + chain.describe())
        totals: Dict[str, List[int]] = {}
        for chain in chains:
            for sem, _holder, _kind in chain.links:
                entry = totals.setdefault(sem, [0, 0])
                entry[0] += 1
                if chain.duration_ns is not None:
                    entry[1] += chain.duration_ns
        rows = [
            [sem, hops, f"{to_us(total_ns):.1f}"]
            for sem, (hops, total_ns) in sorted(totals.items())
        ]
        lines.append(
            format_table(
                ["sem", "donation hops", "inversion us"],
                rows,
                title="per-semaphore donation totals",
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# end-to-end bus chain latency
# ----------------------------------------------------------------------
def _stage_stats(values: Optional[List[int]]) -> Optional[Dict[str, int]]:
    if not values:
        return None
    values = sorted(values)
    return {
        "count": len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": values[-1],
    }


def bus_chain_latency(
    bus_events,
    rx_logs: Dict[str, Optional[list]],
    rx_timelines: Optional[Dict[str, list]] = None,
) -> Dict[int, Dict]:
    """End-to-end latency chains per bus channel (CAN id).

    Walks each frame through its three observable stages:

    * **send -> deliver**: the sender's original transmit stamp
      (``BusEvent.queued``, which survives retransmission) to the
      instant the winning transmission completed on the wire -- so
      arbitration wait, wire time, error frames, and every retry are
      all inside this number;
    * **deliver -> dispatch**: the receiving interface's accepted
      delivery (``NetInterface.rx_log``) to the driver thread actually
      consuming the frame (the workload's per-node ``rx_timeline``),
      FIFO-matched per ``(node, can_id)``;
    * **send -> dispatch**: the full chain, keyed by the frame's flow
      id.

    Args:
        bus_events: A :attr:`Fieldbus.bus_log` (``enable_trace()``).
        rx_logs: Per-node accepted-delivery logs
            (:meth:`Cluster.rx_logs`); ``None`` values are skipped.
        rx_timelines: Optional per-node ``[(time, can_id), ...]``
            driver-consumption timelines (:meth:`Cluster.rx_timelines`);
            without them the dispatch stages are ``None``.

    Returns a dict keyed by CAN id; each value carries ``frames`` (the
    delivered count) and nearest-rank ``p50/p95/p99/max`` stats (ns)
    per stage (``None`` for stages with no samples).  Inputs are
    virtual-time integers, so the report is deterministic and
    identical across cluster sync modes and worker counts.
    """
    tx_by_flow: Dict[int, tuple] = {}
    send_deliver: Dict[int, List[int]] = {}
    for ev in bus_events:
        if ev.kind == "tx" and ev.verdict == "ok":
            if ev.flow is not None:
                tx_by_flow[ev.flow] = ev
            send_deliver.setdefault(ev.can_id, []).append(ev.end - ev.queued)
    deliver_dispatch: Dict[int, List[int]] = {}
    send_dispatch: Dict[int, List[int]] = {}
    for node in sorted(rx_logs):
        entries = rx_logs[node]
        if not entries:
            continue
        timeline = (rx_timelines or {}).get(node) or ()
        by_id: Dict[int, List[int]] = {}
        for time, can_id in timeline:
            by_id.setdefault(can_id, []).append(time)
        cursor = {can_id: 0 for can_id in by_id}
        for t_rx, flow, can_id, _sender in entries:
            times = by_id.get(can_id)
            if times is None:
                continue
            i = cursor[can_id]
            while i < len(times) and times[i] < t_rx:
                i += 1
            if i >= len(times):
                cursor[can_id] = i
                continue
            cursor[can_id] = i + 1
            t_dispatch = times[i]
            deliver_dispatch.setdefault(can_id, []).append(t_dispatch - t_rx)
            tx = tx_by_flow.get(flow)
            if tx is not None:
                send_dispatch.setdefault(can_id, []).append(
                    t_dispatch - tx.queued
                )
    out: Dict[int, Dict] = {}
    for can_id in sorted(set(send_deliver) | set(deliver_dispatch)):
        deliveries = send_deliver.get(can_id)
        out[can_id] = {
            "frames": len(deliveries) if deliveries else 0,
            "send_deliver_ns": _stage_stats(deliveries),
            "deliver_dispatch_ns": _stage_stats(deliver_dispatch.get(can_id)),
            "send_dispatch_ns": _stage_stats(send_dispatch.get(can_id)),
        }
    return out


def bus_chain_report(
    bus_events,
    rx_logs: Dict[str, Optional[list]],
    rx_timelines: Optional[Dict[str, list]] = None,
) -> str:
    """Rendered per-channel send->deliver->dispatch percentile table."""
    from repro.analysis import format_table

    chains = bus_chain_latency(bus_events, rx_logs, rx_timelines)
    if not chains:
        return "no delivered frames recorded on the bus"

    def cell(stats, key):
        return f"{to_us(stats[key]):.1f}" if stats else "-"

    rows = []
    for can_id, chain in chains.items():
        sd = chain["send_deliver_ns"]
        e2e = chain["send_dispatch_ns"]
        rows.append(
            [
                f"{can_id:#x}",
                chain["frames"],
                cell(sd, "p50"),
                cell(sd, "p95"),
                cell(sd, "p99"),
                cell(sd, "max"),
                cell(e2e, "p50"),
                cell(e2e, "max"),
            ]
        )
    return format_table(
        [
            "can id", "frames",
            "deliver p50 us", "p95 us", "p99 us", "max us",
            "e2e p50 us", "e2e max us",
        ],
        rows,
        title="bus chain latency (send -> deliver -> dispatch)",
    )


def blocking_report(collector: "ObsCollector") -> str:
    """Rendered per-semaphore blocking/PI totals (any collector mode)."""
    from repro.analysis import format_table

    if not collector.sems:
        return "no semaphore blocking recorded"
    rows = []
    for name in sorted(collector.sems):
        s = collector.sems[name]
        rows.append(
            [
                name,
                s.blocks,
                f"{to_us(s.blocked_ns):.1f}",
                s.max_waiters,
                s.donations,
            ]
        )
    return format_table(
        ["sem", "blocks", "blocked us", "max waiters", "PI donations"],
        rows,
        title="per-semaphore blocking",
    )
