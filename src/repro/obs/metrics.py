"""Deterministic metrics registry: counters, gauges, histograms.

The registry is the structured face of observability: every value in
it is an integer (or a ratio of integers) derived from *virtual* time
and event counts, so two runs of the same workload produce
byte-identical exports regardless of wall-clock speed, host machine,
or ``parallel_map`` worker count.  Determinism rules:

* values are virtual-time nanoseconds or event counts -- never wall
  clock, never floats accumulated in arbitrary order;
* histograms use fixed bucket boundaries chosen at construction;
* exports (:meth:`MetricsRegistry.to_dict`,
  :meth:`MetricsRegistry.to_json`, :meth:`MetricsRegistry.to_prometheus`)
  sort by metric name, then by label items, so the serialization never
  depends on insertion order.

Hot-path discipline (the PR-3 rule): ``Counter.inc`` / ``Gauge.set`` /
``Histogram.observe`` are plain integer adds plus at most a bisect;
anything heavier (sorting, formatting) happens only at export time.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_RESPONSE_BUCKETS_NS",
]

#: Fixed response-time histogram buckets (ns upper bounds); the last
#: implicit bucket is +Inf.  Spans 10 us .. 100 ms, the range the
#: paper's workloads live in.
DEFAULT_RESPONSE_BUCKETS_NS: Tuple[int, ...] = (
    10_000, 20_000, 50_000,
    100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000,
    10_000_000, 20_000_000, 50_000_000,
    100_000_000,
)

#: Label sets are stored as sorted ``(key, value)`` tuples.
LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (one plain integer add; hot-path safe)."""
        self.value += amount

    def snapshot(self) -> Dict:
        """Serializable view: labels and current value."""
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can move both ways; tracks the maximum seen."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "max_seen")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0
        self.max_seen = 0

    def set(self, value: int) -> None:
        """Record the current value (and bump the running maximum)."""
        self.value = value
        if value > self.max_seen:
            self.max_seen = value

    def snapshot(self) -> Dict:
        """Serializable view: labels, current value, and maximum."""
        return {
            "labels": dict(self.labels),
            "value": self.value,
            "max": self.max_seen,
        }


class Histogram:
    """Fixed-bucket histogram of virtual-time values.

    ``buckets`` are inclusive upper bounds in ascending order; one
    extra +Inf bucket is implicit.  ``observe`` is a bisect plus three
    integer adds -- cheap enough for per-job hot paths.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        buckets: Iterable[int] = DEFAULT_RESPONSE_BUCKETS_NS,
    ):
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing")
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound is required")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.total = 0
        self.count = 0

    def observe(self, value: int) -> None:
        """Record one sample into its bucket (bisect + three adds)."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> Dict:
        """Serializable view: cumulative bucket counts, count, sum."""
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            cumulative.append([bound, running])
        return {
            "labels": dict(self.labels),
            "buckets": cumulative,
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Get-or-create home for all metrics of one observed run.

    A metric name maps to exactly one kind (registering ``foo`` as a
    counter and then as a gauge is an error) and to one series per
    distinct label set.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], object] = {}
        self._kinds: Dict[str, str] = {}

    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric
        registered = self._kinds.get(name)
        if registered is not None and registered != cls.kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {registered}"
            )
        metric = cls(name, key[1], **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[int] = DEFAULT_RESPONSE_BUCKETS_NS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """Fold the ``others``' series into this registry (and return it).

        **The** aggregation API: counters add; gauges take the later
        registry's current value (running maxima combine); histograms
        require identical bucket bounds and add bucket counts.  Merge
        order is argument order, which makes the combined export
        deterministic when callers pass registries in a deterministic
        order (the parallel cluster passes per-node registries in node
        order, so aggregated metrics are byte-identical across worker
        counts).  Merging is associative, and merging into a *fresh*
        registry is idempotent in the sense that
        ``MetricsRegistry().merge(r)`` exports byte-identically to
        ``r`` itself (regression-tested).

        Single-use examples::

            collector_reg.merge(net_registry(...))   # in-place fold
            total = MetricsRegistry().merge(*shards) # N-way combine
        """
        for other in others:
            for (name, labels), theirs in other._metrics.items():
                if theirs.kind == "counter":
                    mine = self._get(Counter, name, dict(labels))
                    mine.value += theirs.value
                elif theirs.kind == "gauge":
                    mine = self._get(Gauge, name, dict(labels))
                    mine.set(theirs.value)
                    if theirs.max_seen > mine.max_seen:
                        mine.max_seen = theirs.max_seen
                else:
                    mine = self._get(
                        Histogram, name, dict(labels), buckets=theirs.buckets
                    )
                    if mine.buckets != theirs.buckets:
                        raise ValueError(
                            f"histogram {name!r}: bucket bounds differ"
                        )
                    for i, n in enumerate(theirs.counts):
                        mine.counts[i] += n
                    mine.total += theirs.total
                    mine.count += theirs.count
        return self

    @classmethod
    def merged(cls, registries) -> "MetricsRegistry":
        """Deprecated alias for ``MetricsRegistry().merge(*registries)``.

        PR 8 grew this classmethod next to the PR 5 instance method and
        the pair read as two different operations; they never were.
        Kept one deprecation cycle for external callers.
        """
        import warnings

        warnings.warn(
            "MetricsRegistry.merged(registries) is deprecated; use "
            "MetricsRegistry().merge(*registries)",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls().merge(*registries)

    def _sorted_metrics(self) -> List[object]:
        return [
            self._metrics[key]
            for key in sorted(self._metrics, key=lambda k: (k[0], k[1]))
        ]

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Nested dict keyed by metric name, series sorted by labels."""
        out: Dict[str, Dict] = {}
        for metric in self._sorted_metrics():
            entry = out.setdefault(
                metric.name, {"type": metric.kind, "series": []}
            )
            entry["series"].append(metric.snapshot())
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON export (sorted keys, sorted series)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (sorted, deterministic)."""
        lines: List[str] = []
        last_name = None
        for metric in self._sorted_metrics():
            if metric.name != last_name:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                last_name = metric.name
            label_text = ",".join(f'{k}="{v}"' for k, v in metric.labels)
            if metric.kind == "histogram":
                running = 0
                for bound, n in zip(metric.buckets, metric.counts):
                    running += n
                    le = [*metric.labels, ("le", str(bound))]
                    le_text = ",".join(f'{k}="{v}"' for k, v in le)
                    lines.append(f"{metric.name}_bucket{{{le_text}}} {running}")
                inf = [*metric.labels, ("le", "+Inf")]
                inf_text = ",".join(f'{k}="{v}"' for k, v in inf)
                lines.append(f"{metric.name}_bucket{{{inf_text}}} {metric.count}")
                suffix = f"{{{label_text}}}" if label_text else ""
                lines.append(f"{metric.name}_sum{suffix} {metric.total}")
                lines.append(f"{metric.name}_count{suffix} {metric.count}")
            else:
                suffix = f"{{{label_text}}}" if label_text else ""
                lines.append(f"{metric.name}{suffix} {metric.value}")
                if metric.kind == "gauge" and metric.max_seen != metric.value:
                    max_labels = [*metric.labels, ("stat", "max")]
                    max_text = ",".join(f'{k}="{v}"' for k, v in max_labels)
                    lines.append(f"{metric.name}{{{max_text}}} {metric.max_seen}")
        return "\n".join(lines) + "\n"
