"""Small deterministic scenarios used by the observability layer.

:func:`pi_demo_kernel` builds the transitive priority-inversion demo
the analyzers and golden tests run on -- a three-thread, two-semaphore
workload engineered so that a high-priority thread's donation must
flow *through* a middle thread to reach a low-priority holder:

* ``c`` (lowest priority) locks ``M`` first and computes inside it;
* ``b`` (middle) locks ``S``, then blocks on ``M`` (held by ``c``) --
  first donation, ``b -> c`` through ``M``;
* ``a`` (highest) blocks on ``S`` (held by ``b``) -- second donation
  ``a -> b`` through ``S``, and, because ``b`` is itself blocked on
  ``M``, a *transitive* hop ``a -> c`` under the standard scheme.

Everything is phase/period driven with no randomness, so two runs (on
any machine, in any worker process) observe byte-identical metrics --
which is exactly what the golden and property tests assert.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.kernel.program import Acquire, Compute, Program, Release
from repro.obs.collector import ObsCollector
from repro.sim.kernelsim import make_scheduler
from repro.sim.trace import Trace
from repro.timeunits import ms, us

__all__ = ["pi_demo_kernel", "run_pi_demo", "demo_metrics_fingerprint"]

#: Default virtual horizon for the demo: two 10 ms periods.
DEMO_HORIZON_NS = ms(20)


def pi_demo_kernel(
    scheme: str = "standard",
    policy: str = "edf",
    record: Optional[str] = "full",
) -> Kernel:
    """Build (but do not run) the transitive-PI demo kernel."""
    kernel = Kernel(
        make_scheduler(policy), sem_scheme=scheme, record=record
    )
    kernel.create_semaphore("M")
    kernel.create_semaphore("S")
    # c: lowest priority (latest deadline); grabs M at t=0 and holds it
    # long enough for both donors to queue up behind it.
    kernel.create_thread(
        "c",
        Program(
            [
                Acquire("M"),
                Compute(ms(2)),
                Release("M"),
                Compute(us(50)),
            ]
        ),
        period=ms(10),
        deadline=ms(9),
    )
    # b: middle priority; locks S, then blocks on M -> donates to c.
    kernel.create_thread(
        "b",
        Program(
            [
                Acquire("S"),
                Compute(us(100)),
                Acquire("M"),
                Compute(us(200)),
                Release("M"),
                Release("S"),
            ]
        ),
        period=ms(10),
        deadline=ms(6),
        phase=us(200),
    )
    # a: highest priority; blocks on S -> donates to b, transitively c.
    kernel.create_thread(
        "a",
        Program(
            [
                Acquire("S"),
                Compute(us(100)),
                Release("S"),
            ]
        ),
        period=ms(10),
        deadline=ms(3),
        phase=us(500),
    )
    return kernel


def run_pi_demo(
    scheme: str = "standard",
    policy: str = "edf",
    mode: str = "full",
    horizon: int = DEMO_HORIZON_NS,
    record: Optional[str] = "full",
) -> Tuple[Kernel, Trace, ObsCollector]:
    """Run the demo with an attached collector; returns
    ``(kernel, trace, collector)``."""
    kernel = pi_demo_kernel(scheme, policy, record=record)
    collector = ObsCollector(mode=mode).attach(kernel)
    trace = kernel.run_until(horizon)
    return kernel, trace, collector


def demo_metrics_fingerprint(scheme: str) -> str:
    """Hash of every observability export for one demo run.

    Module-level (hence picklable) so the determinism property test
    can fan it out through ``parallel_map`` and compare fingerprints
    across worker counts: sha256 over the metrics JSON, the Prometheus
    text, and the Chrome trace JSON.
    """
    import hashlib
    import json

    from repro.obs.tracer import chrome_trace_events

    kernel, trace, collector = run_pi_demo(scheme=scheme)
    chrome = json.dumps(
        chrome_trace_events(trace, collector), sort_keys=True
    )
    digest = hashlib.sha256()
    digest.update(collector.metrics_json().encode())
    digest.update(collector.metrics_prometheus().encode())
    digest.update(chrome.encode())
    digest.update(trace.signature().encode())
    return digest.hexdigest()
