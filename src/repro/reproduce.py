"""Regenerate the paper's evaluation from the command line.

Usage::

    python -m repro.reproduce            # everything (several minutes)
    python -m repro.reproduce --quick    # smaller sweeps (~30 s)
    python -m repro.reproduce figure3 figure11 table1   # selected targets

Targets: table1, table2, table3, figure2, figure3, figure4, figure5,
figure11, ipc, cyclic, footprint, validate.  Results print to stdout.

The ``faults`` subcommand (an extension beyond the paper) runs the
chaos harness instead::

    python -m repro.reproduce faults --seed 42 --wcet-overrun 0.1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.analysis import ascii_series, format_table
from repro.core.cyclic import CyclicScheduleError, build_cyclic_schedule
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import csd_overhead_per_period
from repro.core.task import TaskSpec, Workload, table2_workload
from repro.sim.breakdown import figure_series
from repro.sim.kernelsim import simulate_workload
from repro.sim.semexp import figure11_series
from repro.timeunits import ms, to_ms, to_us


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_table1(quick: bool) -> None:
    """Print Table 1 (scheduler primitive overheads)."""
    _banner("Table 1: scheduler primitive overheads (us)")
    model = OverheadModel()
    rows = []
    for n in (5, 10, 15, 25, 40, 58):
        rows.append(
            [
                n,
                f"{to_us(model.edf_block(n)):.2f}/{to_us(model.edf_unblock(n)):.2f}/"
                f"{to_us(model.edf_select(n)):.2f}",
                f"{to_us(model.rm_block(n)):.2f}/{to_us(model.rm_unblock(n)):.2f}/"
                f"{to_us(model.rm_select(n)):.2f}",
                f"{to_us(model.heap_block(n)):.2f}/{to_us(model.heap_unblock(n)):.2f}/"
                f"{to_us(model.heap_select(n)):.2f}",
            ]
        )
    print(
        format_table(
            ["n", "EDF t_b/t_u/t_s", "RM t_b/t_u/t_s", "heap t_b/t_u/t_s"], rows
        )
    )


def run_table2(quick: bool) -> None:
    """Print the reconstructed Table 2 workload."""
    _banner("Table 2 (reconstructed) + breakdown per policy")
    workload = table2_workload()
    rows = [
        [t.name, f"{to_ms(t.period):g}", f"{to_ms(t.wcet):g}"] for t in workload
    ]
    print(format_table(["task", "P (ms)", "c (ms)"], rows))
    print(f"U = {workload.utilization:.3f}")


def run_figure2(quick: bool) -> None:
    """Regenerate Figure 2 traces (RM / EDF / CSD-2)."""
    _banner("Figure 2: the Table 2 workload under RM / EDF / CSD-2")
    workload = table2_workload()
    for policy, splits in (("rm", None), ("edf", None), ("csd-2", (5,))):
        kernel, trace = simulate_workload(
            workload, policy, duration=ms(40), model=ZERO_OVERHEAD, splits=splits
        )
        misses = sorted({j.thread for j in trace.deadline_violations(kernel.now)})
        print(f"\n--- {policy} ---  misses: {misses or 'none'}")
        print(
            trace.gantt_ascii(
                0, ms(10), columns=60, threads=[f"tau{i}" for i in range(1, 6)]
            )
        )


def run_table3(quick: bool) -> None:
    """Print Table 3 (CSD-3 per-band overheads)."""
    _banner("Table 3: CSD-3 per-band per-period overheads (q=8, r=20, n=40)")
    model = OverheadModel()
    sizes = [8, 12, 20]
    rows = []
    for band, idx, asymptotic in (
        ("DP1", 0, "O(r)"),
        ("DP2", 1, "O(2r - q)"),
        ("FP", 2, "O(n - q)"),
    ):
        rows.append(
            [band, asymptotic, f"{to_us(csd_overhead_per_period(model, sizes, idx)):.1f}"]
        )
    print(format_table(["band", "paper total", "per-period (us)"], rows))


def _run_breakdown_figure(divisor: int, quick: bool) -> None:
    policies = ("csd-4", "csd-3", "csd-2", "edf", "rm")
    counts = [5, 15, 30, 50] if quick else list(range(5, 51, 5))
    workloads = 8 if quick else 25
    series = figure_series(
        counts, policies, workloads_per_point=workloads, seed=1,
        period_divisor=divisor,
    )
    print(
        ascii_series(
            series.task_counts,
            {p: series.values[p] for p in policies},
            title=f"average breakdown utilization (%), periods / {divisor}, "
            f"{workloads} workloads/point",
            x_label="n",
        )
    )


def run_figure3(quick: bool) -> None:
    """Regenerate Figure 3 (breakdown, base periods)."""
    _banner("Figure 3: breakdown utilization, base periods")
    _run_breakdown_figure(1, quick)


def run_figure4(quick: bool) -> None:
    """Regenerate Figure 4 (breakdown, periods / 2)."""
    _banner("Figure 4: breakdown utilization, periods / 2")
    _run_breakdown_figure(2, quick)


def run_figure5(quick: bool) -> None:
    """Regenerate Figure 5 (breakdown, periods / 3)."""
    _banner("Figure 5: breakdown utilization, periods / 3")
    _run_breakdown_figure(3, quick)


def run_figure11(quick: bool) -> None:
    """Regenerate Figure 11 (semaphore overheads)."""
    _banner("Figure 11 + Sec 6.4: semaphore acquire/release overhead")
    lengths = (3, 9, 15, 21, 30) if quick else tuple(range(3, 31, 3))
    for queue in ("dp", "fp"):
        rows = figure11_series(queue, lengths)
        print(
            ascii_series(
                [r[0] for r in rows],
                {
                    "standard": [to_us(r[1]) for r in rows],
                    "emeralds": [to_us(r[2]) for r in rows],
                },
                title=f"{queue.upper()} queue (us per contended pair)",
                x_label="queue length",
            )
        )
        print()


def run_ipc(quick: bool) -> None:
    """Regenerate the reconstructed Section 7 IPC comparison."""
    _banner("Section 7 (reconstructed): mailbox vs state-message IPC")
    sys.path.insert(0, "benchmarks")
    from repro.core.edf import EDFScheduler
    from repro.kernel.kernel import Kernel
    from repro.kernel.program import Compute, Program, Recv, Send, StateRead, StateWrite
    from repro.timeunits import us

    def ipc_time(trace):
        return (
            trace.kernel_time.get("ipc", 0)
            + trace.kernel_time.get("syscall", 0)
            + trace.kernel_time.get("state-msg", 0)
        )

    rows = []
    for readers in (1, 2, 4, 8):
        kernel = Kernel(EDFScheduler(OverheadModel()))
        for i in range(readers):
            kernel.create_mailbox(f"m{i}")
        kernel.create_thread(
            "writer",
            Program([Send(f"m{i}", size=16) for i in range(readers)]),
            period=ms(10), deadline=ms(2),
        )
        for i in range(readers):
            kernel.create_thread(
                f"r{i}", Program([Recv(f"m{i}"), Compute(us(10))]),
                period=ms(10), deadline=ms(5 + i),
            )
        mailbox_cost = ipc_time(kernel.run_until(ms(500))) / 50

        kernel = Kernel(EDFScheduler(OverheadModel()))
        kernel.create_channel("c", slots=4)
        kernel.create_thread(
            "writer", Program([StateWrite("c", value=1)]), period=ms(10),
            deadline=ms(2),
        )
        for i in range(readers):
            kernel.create_thread(
                f"r{i}", Program([StateRead("c"), Compute(us(10))]),
                period=ms(10), deadline=ms(5 + i),
            )
        state_cost = ipc_time(kernel.run_until(ms(500))) / 50
        rows.append(
            [readers, f"{to_us(round(mailbox_cost)):.1f}", f"{to_us(round(state_cost)):.1f}"]
        )
    print(format_table(["readers", "mailbox us/period", "state msg us/period"], rows))


def run_cyclic(quick: bool) -> None:
    """Quantify the Section 5 cyclic-executive pathologies."""
    _banner("Section 5 motivation: cyclic executive pathologies")

    def wl(*pairs):
        return Workload(
            TaskSpec(name=f"t{i}", period=ms(p), wcet=ms(c))
            for i, (p, c) in enumerate(pairs)
        )

    for name, w in (
        ("harmonic 10/20/40", wl((10, 1), (20, 2), (40, 2))),
        ("prime 7/11/13/17", wl((7, 1), (11, 1), (13, 1), (17, 1))),
    ):
        try:
            schedule = build_cyclic_schedule(w)
            print(
                f"{name}: hyperperiod {to_ms(schedule.hyperperiod):.0f} ms, "
                f"{schedule.table_entries} table entries, "
                f"{schedule.table_bytes} bytes"
            )
        except CyclicScheduleError as exc:
            print(f"{name}: UNSCHEDULABLE ({exc})")


def run_footprint(quick: bool) -> None:
    """Report example-application memory footprints."""
    _banner("Small-memory footprint of the example applications")
    import importlib
    import sys as _sys
    from pathlib import Path

    from repro.kernel.footprint import kernel_footprint

    _sys.path.insert(0, str(Path(__file__).parent.parent.parent / "examples"))
    for name in ("quickstart", "engine_control", "voice_pipeline"):
        try:
            module = importlib.import_module(name)
        except ImportError:
            print(f"{name}: examples/ not on path; skipped")
            continue
        kernel = (
            module.build_kernel("emeralds")
            if name == "engine_control"
            else module.build_kernel()
        )
        report = kernel_footprint(kernel)
        print(
            f"{name:>15}: {report.total_bytes:6d} B code+data "
            f"(fits 32 KB: {report.fits(32 * 1024)})"
        )


def run_validate(quick: bool) -> None:
    """Analytic-vs-kernel soundness spot checks."""
    _banner("Soundness: analytic breakdown vs the live kernel (2% inside)")
    from repro.sim.validate import validate_breakdown
    from repro.sim.workload import generate_workload

    policies = ("edf", "rm") if quick else ("edf", "rm", "csd-2", "csd-3")
    for policy in policies:
        for seed in (0, 1):
            w = generate_workload(6, seed=seed, utilization=0.5)
            result = validate_breakdown(w, policy)
            verdict = "clean" if result.sound else f"{result.violations} MISSES"
            print(
                f"{policy:>6} seed {seed}: breakdown "
                f"{100 * result.breakdown_utilization:.1f}% -> kernel {verdict}"
            )


def run_faults(argv: List[str]) -> int:
    """The ``faults`` subcommand: one seeded chaos run, reported."""
    from repro.faults.chaos import run_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce faults",
        description="Run the fault-injection chaos harness once.",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--duration-ms", type=int, default=1000, help="virtual run length"
    )
    parser.add_argument(
        "--wcet-overrun", type=float, default=0.0, metavar="RATE",
        help="WCET-overrun faults per virtual second",
    )
    parser.add_argument(
        "--crash", type=float, default=0.0, metavar="RATE",
        help="thread-crash faults per virtual second",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.0, metavar="RATE",
        help="clock-jitter faults per virtual second",
    )
    parser.add_argument(
        "--no-defenses", action="store_true",
        help="disable budgets and restart policies",
    )
    args = parser.parse_args(argv)
    if args.duration_ms <= 0:
        parser.error(f"--duration-ms must be positive (got {args.duration_ms})")
    for flag, rate in (
        ("--wcet-overrun", args.wcet_overrun),
        ("--crash", args.crash),
        ("--jitter", args.jitter),
    ):
        if rate < 0:
            parser.error(f"{flag} must be non-negative (got {rate:g})")
    result = run_chaos(
        args.seed,
        ms(args.duration_ms),
        wcet_overrun_rate=args.wcet_overrun,
        crash_rate=args.crash,
        clock_jitter_rate=args.jitter,
        defenses=not args.no_defenses,
    )
    _banner(
        f"Chaos run: seed {result.seed}, {args.duration_ms} ms, "
        f"defenses {'on' if result.defenses else 'off'}"
    )
    injected = ", ".join(
        f"{k}={v}" for k, v in sorted(result.faults_injected.items())
    ) or "none"
    print(f"faults planned/injected: {result.faults_planned} / {injected}")
    print(f"deadline-miss ratio:     {result.miss_ratio:.3f}")
    rows = [
        [name, f"{ratio:.3f}"] for name, ratio in result.service_ratio.items()
    ]
    print(format_table(["task", "on-time service"], rows))
    print(f"jobs aborted:            {result.jobs_aborted}")
    print(f"threads lost:            {', '.join(result.threads_dead) or 'none'}")
    print(f"recovery after burst:    {to_ms(result.recovery_ns):.1f} ms")
    print(f"trace signature:         {result.trace_signature[:16]}")
    return 0


TARGETS: Dict[str, Callable[[bool], None]] = {
    "table1": run_table1,
    "table2": run_table2,
    "figure2": run_figure2,
    "table3": run_table3,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure11": run_figure11,
    "ipc": run_ipc,
    "cyclic": run_cyclic,
    "footprint": run_footprint,
    "validate": run_validate,
}


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "faults":
        return run_faults(raw[1:])
    parser = argparse.ArgumentParser(
        description="Regenerate the EMERALDS paper's tables and figures."
    )
    parser.add_argument(
        "targets",
        nargs="*",
        choices=list(TARGETS) + [[]],
        help="artifacts to regenerate (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps for a fast pass"
    )
    args = parser.parse_args(raw)
    chosen = args.targets or list(TARGETS)
    started = time.time()
    for target in chosen:
        TARGETS[target](args.quick)
    print(f"\ndone in {time.time() - started:.1f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
