"""Regenerate the paper's evaluation from the command line.

Usage::

    python -m repro.reproduce            # everything (several minutes)
    python -m repro.reproduce --quick    # smaller sweeps (~30 s)
    python -m repro.reproduce figure3 figure11 table1   # selected targets

Targets: table1, table2, table3, figure2, figure3, figure4, figure5,
figure11, ipc, cyclic, footprint, validate.  Results print to stdout.

The ``faults`` subcommand (an extension beyond the paper) runs the
chaos harness instead::

    python -m repro.reproduce faults --seed 42 --wcet-overrun 0.1

The ``netfaults`` subcommand runs the dependable-fieldbus chaos
harness (CAN error confinement, bounded retransmission, heartbeat
membership, replica freshness)::

    python -m repro.reproduce netfaults --drop 0.1 --silence n2

The ``perf`` subcommand measures simulator throughput on the canonical
workload and maintains the persistent perf trajectory::

    python -m repro.reproduce perf --append BENCH_kernel.json --check BENCH_kernel.json

The ``bench`` subcommand runs the benchmark suite (or a selection)::

    python -m repro.reproduce bench all --workers 4

The ``trace`` and ``metrics`` subcommands run a workload with the
observability layer attached -- ``trace`` exports a Perfetto-loadable
Chrome trace JSON, ``metrics`` prints per-task latency percentiles and
per-semaphore blocking / priority-inheritance totals::

    python -m repro.reproduce trace --out trace.json
    python -m repro.reproduce metrics --demo pi --scheme emeralds

The ``cluster-trace`` subcommand runs the canonical ring cluster with
cluster-wide tracing armed and exports ONE merged Perfetto timeline
(one pid per node plus a bus pid, with causal flow arrows from each
transmit slice to its deliveries) plus the aggregated cross-node
metrics registry::

    python -m repro.reproduce cluster-trace --out cluster.trace.json
    python -m repro.reproduce cluster-trace --verify   # byte-identity

The ``snapshot`` subcommand demonstrates checkpoint/restore prefix
reuse: a small fault sweep whose points share one warm-up prefix is
run cold and through :func:`repro.perf.sweeps.prefix_map`, every
restored point is checked byte-identical to its cold twin, and the
wall-clock speedup is reported::

    python -m repro.reproduce snapshot --mode fork --warmup-ms 1500
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.analysis import ascii_series, format_table
from repro.core.cyclic import CyclicScheduleError, build_cyclic_schedule
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import csd_overhead_per_period
from repro.core.task import TaskSpec, Workload, table2_workload
from repro.sim.breakdown import figure_series
from repro.sim.kernelsim import simulate_workload
from repro.sim.semexp import figure11_series
from repro.timeunits import ms, to_ms, to_us


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_table1(quick: bool) -> None:
    """Print Table 1 (scheduler primitive overheads)."""
    _banner("Table 1: scheduler primitive overheads (us)")
    model = OverheadModel()
    rows = []
    for n in (5, 10, 15, 25, 40, 58):
        rows.append(
            [
                n,
                f"{to_us(model.edf_block(n)):.2f}/{to_us(model.edf_unblock(n)):.2f}/"
                f"{to_us(model.edf_select(n)):.2f}",
                f"{to_us(model.rm_block(n)):.2f}/{to_us(model.rm_unblock(n)):.2f}/"
                f"{to_us(model.rm_select(n)):.2f}",
                f"{to_us(model.heap_block(n)):.2f}/{to_us(model.heap_unblock(n)):.2f}/"
                f"{to_us(model.heap_select(n)):.2f}",
            ]
        )
    print(
        format_table(
            ["n", "EDF t_b/t_u/t_s", "RM t_b/t_u/t_s", "heap t_b/t_u/t_s"], rows
        )
    )


def run_table2(quick: bool) -> None:
    """Print the reconstructed Table 2 workload."""
    _banner("Table 2 (reconstructed) + breakdown per policy")
    workload = table2_workload()
    rows = [
        [t.name, f"{to_ms(t.period):g}", f"{to_ms(t.wcet):g}"] for t in workload
    ]
    print(format_table(["task", "P (ms)", "c (ms)"], rows))
    print(f"U = {workload.utilization:.3f}")


def run_figure2(quick: bool) -> None:
    """Regenerate Figure 2 traces (RM / EDF / CSD-2)."""
    _banner("Figure 2: the Table 2 workload under RM / EDF / CSD-2")
    workload = table2_workload()
    for policy, splits in (("rm", None), ("edf", None), ("csd-2", (5,))):
        kernel, trace = simulate_workload(
            workload, policy, duration=ms(40), model=ZERO_OVERHEAD, splits=splits
        )
        misses = sorted({j.thread for j in trace.deadline_violations(kernel.now)})
        print(f"\n--- {policy} ---  misses: {misses or 'none'}")
        print(
            trace.gantt_ascii(
                0, ms(10), columns=60, threads=[f"tau{i}" for i in range(1, 6)]
            )
        )


def run_table3(quick: bool) -> None:
    """Print Table 3 (CSD-3 per-band overheads)."""
    _banner("Table 3: CSD-3 per-band per-period overheads (q=8, r=20, n=40)")
    model = OverheadModel()
    sizes = [8, 12, 20]
    rows = []
    for band, idx, asymptotic in (
        ("DP1", 0, "O(r)"),
        ("DP2", 1, "O(2r - q)"),
        ("FP", 2, "O(n - q)"),
    ):
        rows.append(
            [band, asymptotic, f"{to_us(csd_overhead_per_period(model, sizes, idx)):.1f}"]
        )
    print(format_table(["band", "paper total", "per-period (us)"], rows))


def _run_breakdown_figure(divisor: int, quick: bool) -> None:
    policies = ("csd-4", "csd-3", "csd-2", "edf", "rm")
    counts = [5, 15, 30, 50] if quick else list(range(5, 51, 5))
    workloads = 8 if quick else 25
    series = figure_series(
        counts, policies, workloads_per_point=workloads, seed=1,
        period_divisor=divisor,
    )
    print(
        ascii_series(
            series.task_counts,
            {p: series.values[p] for p in policies},
            title=f"average breakdown utilization (%), periods / {divisor}, "
            f"{workloads} workloads/point",
            x_label="n",
        )
    )


def run_figure3(quick: bool) -> None:
    """Regenerate Figure 3 (breakdown, base periods)."""
    _banner("Figure 3: breakdown utilization, base periods")
    _run_breakdown_figure(1, quick)


def run_figure4(quick: bool) -> None:
    """Regenerate Figure 4 (breakdown, periods / 2)."""
    _banner("Figure 4: breakdown utilization, periods / 2")
    _run_breakdown_figure(2, quick)


def run_figure5(quick: bool) -> None:
    """Regenerate Figure 5 (breakdown, periods / 3)."""
    _banner("Figure 5: breakdown utilization, periods / 3")
    _run_breakdown_figure(3, quick)


def run_figure11(quick: bool) -> None:
    """Regenerate Figure 11 (semaphore overheads)."""
    _banner("Figure 11 + Sec 6.4: semaphore acquire/release overhead")
    lengths = (3, 9, 15, 21, 30) if quick else tuple(range(3, 31, 3))
    for queue in ("dp", "fp"):
        rows = figure11_series(queue, lengths)
        print(
            ascii_series(
                [r[0] for r in rows],
                {
                    "standard": [to_us(r[1]) for r in rows],
                    "emeralds": [to_us(r[2]) for r in rows],
                },
                title=f"{queue.upper()} queue (us per contended pair)",
                x_label="queue length",
            )
        )
        print()


def run_ipc(quick: bool) -> None:
    """Regenerate the reconstructed Section 7 IPC comparison."""
    _banner("Section 7 (reconstructed): mailbox vs state-message IPC")
    sys.path.insert(0, "benchmarks")
    from repro.core.edf import EDFScheduler
    from repro.kernel.kernel import Kernel
    from repro.kernel.program import Compute, Program, Recv, Send, StateRead, StateWrite
    from repro.timeunits import us

    def ipc_time(trace):
        return (
            trace.kernel_time.get("ipc", 0)
            + trace.kernel_time.get("syscall", 0)
            + trace.kernel_time.get("state-msg", 0)
        )

    rows = []
    for readers in (1, 2, 4, 8):
        kernel = Kernel(EDFScheduler(OverheadModel()))
        for i in range(readers):
            kernel.create_mailbox(f"m{i}")
        kernel.create_thread(
            "writer",
            Program([Send(f"m{i}", size=16) for i in range(readers)]),
            period=ms(10), deadline=ms(2),
        )
        for i in range(readers):
            kernel.create_thread(
                f"r{i}", Program([Recv(f"m{i}"), Compute(us(10))]),
                period=ms(10), deadline=ms(5 + i),
            )
        mailbox_cost = ipc_time(kernel.run_until(ms(500))) / 50

        kernel = Kernel(EDFScheduler(OverheadModel()))
        kernel.create_channel("c", slots=4)
        kernel.create_thread(
            "writer", Program([StateWrite("c", value=1)]), period=ms(10),
            deadline=ms(2),
        )
        for i in range(readers):
            kernel.create_thread(
                f"r{i}", Program([StateRead("c"), Compute(us(10))]),
                period=ms(10), deadline=ms(5 + i),
            )
        state_cost = ipc_time(kernel.run_until(ms(500))) / 50
        rows.append(
            [readers, f"{to_us(round(mailbox_cost)):.1f}", f"{to_us(round(state_cost)):.1f}"]
        )
    print(format_table(["readers", "mailbox us/period", "state msg us/period"], rows))


def run_cyclic(quick: bool) -> None:
    """Quantify the Section 5 cyclic-executive pathologies."""
    _banner("Section 5 motivation: cyclic executive pathologies")

    def wl(*pairs):
        return Workload(
            TaskSpec(name=f"t{i}", period=ms(p), wcet=ms(c))
            for i, (p, c) in enumerate(pairs)
        )

    for name, w in (
        ("harmonic 10/20/40", wl((10, 1), (20, 2), (40, 2))),
        ("prime 7/11/13/17", wl((7, 1), (11, 1), (13, 1), (17, 1))),
    ):
        try:
            schedule = build_cyclic_schedule(w)
            print(
                f"{name}: hyperperiod {to_ms(schedule.hyperperiod):.0f} ms, "
                f"{schedule.table_entries} table entries, "
                f"{schedule.table_bytes} bytes"
            )
        except CyclicScheduleError as exc:
            print(f"{name}: UNSCHEDULABLE ({exc})")


def run_footprint(quick: bool) -> None:
    """Report example-application memory footprints."""
    _banner("Small-memory footprint of the example applications")
    import importlib
    import sys as _sys
    from pathlib import Path

    from repro.kernel.footprint import kernel_footprint

    _sys.path.insert(0, str(Path(__file__).parent.parent.parent / "examples"))
    for name in ("quickstart", "engine_control", "voice_pipeline"):
        try:
            module = importlib.import_module(name)
        except ImportError:
            print(f"{name}: examples/ not on path; skipped")
            continue
        kernel = (
            module.build_kernel("emeralds")
            if name == "engine_control"
            else module.build_kernel()
        )
        report = kernel_footprint(kernel)
        print(
            f"{name:>15}: {report.total_bytes:6d} B code+data "
            f"(fits 32 KB: {report.fits(32 * 1024)})"
        )


def run_validate(quick: bool) -> None:
    """Analytic-vs-kernel soundness spot checks."""
    _banner("Soundness: analytic breakdown vs the live kernel (2% inside)")
    from repro.sim.validate import validate_breakdown
    from repro.sim.workload import generate_workload

    policies = ("edf", "rm") if quick else ("edf", "rm", "csd-2", "csd-3")
    for policy in policies:
        for seed in (0, 1):
            w = generate_workload(6, seed=seed, utilization=0.5)
            result = validate_breakdown(w, policy)
            verdict = "clean" if result.sound else f"{result.violations} MISSES"
            print(
                f"{policy:>6} seed {seed}: breakdown "
                f"{100 * result.breakdown_utilization:.1f}% -> kernel {verdict}"
            )


def run_faults(argv: List[str]) -> int:
    """The ``faults`` subcommand: one seeded chaos run, reported."""
    from repro.faults.chaos import run_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce faults",
        description="Run the fault-injection chaos harness once.",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--duration-ms", type=int, default=1000, help="virtual run length"
    )
    parser.add_argument(
        "--wcet-overrun", type=float, default=0.0, metavar="RATE",
        help="WCET-overrun faults per virtual second",
    )
    parser.add_argument(
        "--crash", type=float, default=0.0, metavar="RATE",
        help="thread-crash faults per virtual second",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.0, metavar="RATE",
        help="clock-jitter faults per virtual second",
    )
    parser.add_argument(
        "--no-defenses", action="store_true",
        help="disable budgets and restart policies",
    )
    args = parser.parse_args(argv)
    if args.duration_ms <= 0:
        parser.error(f"--duration-ms must be positive (got {args.duration_ms})")
    for flag, rate in (
        ("--wcet-overrun", args.wcet_overrun),
        ("--crash", args.crash),
        ("--jitter", args.jitter),
    ):
        if rate < 0:
            parser.error(f"{flag} must be non-negative (got {rate:g})")
    result = run_chaos(
        args.seed,
        ms(args.duration_ms),
        wcet_overrun_rate=args.wcet_overrun,
        crash_rate=args.crash,
        clock_jitter_rate=args.jitter,
        defenses=not args.no_defenses,
    )
    _banner(
        f"Chaos run: seed {result.seed}, {args.duration_ms} ms, "
        f"defenses {'on' if result.defenses else 'off'}"
    )
    injected = ", ".join(
        f"{k}={v}" for k, v in sorted(result.faults_injected.items())
    ) or "none"
    print(f"faults planned/injected: {result.faults_planned} / {injected}")
    print(f"deadline-miss ratio:     {result.miss_ratio:.3f}")
    rows = [
        [name, f"{ratio:.3f}"] for name, ratio in result.service_ratio.items()
    ]
    print(format_table(["task", "on-time service"], rows))
    print(f"jobs aborted:            {result.jobs_aborted}")
    print(f"threads lost:            {', '.join(result.threads_dead) or 'none'}")
    print(f"recovery after burst:    {to_ms(result.recovery_ns):.1f} ms")
    print(f"trace signature:         {result.trace_signature[:16]}")
    return 0


def run_netfaults(argv: List[str]) -> int:
    """The ``netfaults`` subcommand: one dependable-fieldbus chaos run."""
    from repro.faults.chaos import run_net_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce netfaults",
        description="Run the dependable-fieldbus chaos harness once.",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--duration-ms", type=int, default=1000, help="virtual run length"
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--drop", type=float, default=0.0, metavar="P",
        help="per-frame drop probability on the wire",
    )
    parser.add_argument(
        "--corrupt", type=float, default=0.0, metavar="P",
        help="per-frame corruption (CRC-failure) probability",
    )
    parser.add_argument(
        "--retransmits", type=int, default=8,
        help="retransmission bound per frame (0 = retries off)",
    )
    parser.add_argument(
        "--no-dependability", action="store_true",
        help="disarm error confinement, retries, and membership entirely",
    )
    parser.add_argument(
        "--stale-policy", choices=("hold", "invalidate"), default="hold",
        help="replica degradation once the freshness bound is exceeded",
    )
    parser.add_argument(
        "--silence", metavar="NODE", default=None,
        help="crash this node's heartbeat sender mid-run (e.g. n2)",
    )
    parser.add_argument(
        "--rejoin-ms", type=int, default=None, metavar="MS",
        help="restart the silenced sender after this back-off",
    )
    args = parser.parse_args(argv)
    if args.duration_ms <= 0:
        parser.error(f"--duration-ms must be positive (got {args.duration_ms})")
    if args.nodes < 2:
        parser.error(f"--nodes must be at least 2 (got {args.nodes})")
    for flag, p in (("--drop", args.drop), ("--corrupt", args.corrupt)):
        if not 0.0 <= p <= 1.0:
            parser.error(f"{flag} must be in [0, 1] (got {p:g})")
    if args.retransmits < 0:
        parser.error(f"--retransmits must be non-negative (got {args.retransmits})")
    result = run_net_chaos(
        args.seed,
        ms(args.duration_ms),
        nodes=args.nodes,
        drop_p=args.drop,
        corrupt_p=args.corrupt,
        dependability=not args.no_dependability,
        max_retransmits=args.retransmits,
        stale_policy=args.stale_policy,
        silence_node=args.silence,
        rejoin_backoff_ns=(
            ms(args.rejoin_ms) if args.rejoin_ms is not None else None
        ),
    )
    _banner(
        f"Network chaos: seed {result.seed}, {result.nodes} nodes, "
        f"{args.duration_ms} ms, drop {result.drop_p:g}, "
        f"corrupt {result.corrupt_p:g}, "
        f"retries {result.max_retransmits or 'off'}"
    )
    print(f"updates published:       {result.published}")
    broadcasts = max(1, result.published + result.rebroadcasts)
    rows = [
        [node, updates, f"{updates / broadcasts:.3f}"]
        for node, updates in sorted(result.per_node_updates.items())
    ]
    print(format_table(["replica", "updates", "ratio"], rows))
    print(f"worst delivery ratio:    {result.delivery_ratio:.3f}")
    print(
        f"retransmissions:         {result.frames_retransmitted} "
        f"({result.retransmits_exhausted} exhausted)"
    )
    print(f"error frames on wire:    {result.error_frames}")
    print(f"bus-off events:          {result.bus_off_events}")
    print(
        f"sequence gaps / dups:    {result.seq_gaps} / {result.duplicates}"
    )
    print(
        f"stale episodes/resyncs:  {result.stale_episodes} / {result.resyncs} "
        f"(+{result.rebroadcasts} rejoin re-broadcasts)"
    )
    print(f"worst replica age:       {to_ms(result.worst_staleness_ns):.1f} ms")
    print(f"worst update latency:    {to_us(result.worst_latency_ns):.0f} us")
    if result.membership_events:
        print("membership timeline:")
        for time, observer, peer, status in result.membership_events:
            print(
                f"  {to_ms(time):8.1f} ms  {observer} sees {peer} {status}"
            )
    else:
        print("membership timeline:     no transitions")
    print(f"signature:               {result.signature[:16]}")
    return 0


def run_perf(argv: List[str]) -> int:
    """The ``perf`` subcommand: the canonical throughput measurement.

    Measures the ``bench_kernel_overhead`` workload (EDF / RM / CSD-3,
    2 s of virtual time each), prints the counter report and the
    full-mode trace signatures, and optionally appends to / checks
    against the persistent perf trajectory (``BENCH_kernel.json``).
    """
    from repro.perf.profiler import profile_call
    from repro.perf.trajectory import (
        DEFAULT_MAX_REGRESSION,
        RegressionError,
        append_entry,
        check_regression,
        config_hash,
        make_entry,
    )
    from repro.perf.workloads import (
        full_signatures,
        run_throughput,
        throughput_config,
    )
    from repro.sim.trace import RECORD_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce perf",
        description="Measure simulator throughput on the canonical workload.",
    )
    parser.add_argument(
        "--mode", choices=RECORD_MODES, default="jobs-only",
        help="trace recording mode for the timed runs",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="pooled repetitions of the three policy runs",
    )
    parser.add_argument(
        "--label", default="perf-cli", help="label recorded in the entry"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also cProfile the run and print the hottest functions",
    )
    parser.add_argument(
        "--append", metavar="PATH", default=None,
        help="append the measurement to this trajectory file",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="fail when throughput regressed vs this trajectory's baseline",
    )
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional drop below baseline (default 0.30)",
    )
    parser.add_argument(
        "--no-signatures", action="store_true",
        help="skip the full-mode signature cross-check runs",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be positive (got {args.repeats})")

    report = run_throughput(args.mode, repeats=args.repeats, label=args.label)
    print(report.render())

    signatures = None
    if not args.no_signatures:
        signatures = full_signatures()
        print("full-trace signatures (must not move across optimizations):")
        for policy, signature in signatures.items():
            print(f"  {policy:>6}: {signature}")

    if args.profile:
        _, text = profile_call(run_throughput, args.mode, limit=20)
        print()
        print(text)

    config = throughput_config(args.mode)
    if args.check is not None:
        try:
            baseline = check_regression(
                args.check,
                report.throughput_sim_ns_per_s,
                config_hash(config),
                max_regression=args.max_regression,
            )
        except RegressionError as exc:
            print(f"REGRESSION: {exc}", file=sys.stderr)
            return 1
        if baseline is None:
            print(f"no comparable baseline in {args.check}; check skipped")
        else:
            base = float(baseline["throughput_sim_ns_per_s"])
            delta = 100 * (report.throughput_sim_ns_per_s - base) / base
            print(
                f"vs baseline {baseline.get('label')!r} "
                f"({base / 1e9:.2f}e9): {delta:+.1f}%"
            )
    if args.append is not None:
        entry = make_entry(args.label, report.as_dict(), config, signatures)
        append_entry(args.append, entry)
        print(f"appended to {args.append} (config {entry['config_hash']})")
    return 0


def run_bench(argv: List[str]) -> int:
    """The ``bench`` subcommand: run the benchmark suite.

    ``bench all`` runs every benchmark; ``bench fig3 kernel_overhead``
    runs a selection (names map to ``benchmarks/bench_<name>.py``).
    The shared ``--seed/--out/--workers/--record`` flags configure the
    runs via the environment knobs in ``benchmarks/common.py``; how
    each benchmark is invoked comes from the explicit ``BENCHMARKS``
    registry there.
    """
    from pathlib import Path

    bench_dir = Path(__file__).parent.parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    from common import BENCHMARKS, apply_bench_args  # noqa: E402

    available = sorted(BENCHMARKS)
    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce bench",
        description="Run the benchmark suite (or a selection).",
    )
    parser.add_argument(
        "names", nargs="+",
        help=f"benchmarks to run, or 'all'; available: {', '.join(available)}",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--record", choices=("full", "jobs-only", "off"), default=None
    )
    parser.add_argument(
        "--obs", choices=("counters", "full"), default=None,
        help="attach an observability collector to live-kernel runs",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="pass --smoke to CLI-style benchmarks (e.g. faults, obs)",
    )
    args = parser.parse_args(argv)

    names = available if "all" in args.names else args.names
    unknown = [n for n in names if n not in available]
    if unknown:
        parser.error(f"unknown benchmarks: {', '.join(unknown)}")

    apply_bench_args(args)
    pytest_files: List[str] = []
    exit_code = 0
    for name in names:
        if BENCHMARKS[name] == "cli":
            # CLI-style benchmark: call its main() in-process.
            module = __import__(f"bench_{name}")
            cli_args = ["--smoke"] if args.smoke else []
            code = module.main(cli_args)
            exit_code = exit_code or code
        else:
            pytest_files.append(str(bench_dir / f"bench_{name}.py"))
    if pytest_files:
        import pytest

        code = pytest.main(["-q", "-p", "no:cacheprovider", *pytest_files])
        exit_code = exit_code or int(code)
    return exit_code


def _obs_arg_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """Shared flags of the ``trace`` and ``metrics`` subcommands."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "--policy", default="edf",
        help="scheduling policy for the canonical workload (default edf)",
    )
    parser.add_argument(
        "--horizon-ms", type=int, default=200,
        help="virtual run length in ms (default 200)",
    )
    parser.add_argument(
        "--demo", choices=("pi",), default=None,
        help="run the transitive priority-inversion demo instead of "
        "the canonical workload",
    )
    parser.add_argument(
        "--scheme", choices=("standard", "emeralds"), default="standard",
        help="semaphore scheme for --demo pi (default standard)",
    )
    return parser


def _obs_run(args):
    """Run the selected workload with a full-mode collector attached.

    Returns ``(kernel, trace, collector)``.
    """
    from repro.obs.scenarios import run_pi_demo
    from repro.perf.workloads import min_overhead_splits, overhead_workload

    if args.demo == "pi":
        kernel, trace, collector = run_pi_demo(
            scheme=args.scheme, horizon=ms(max(20, args.horizon_ms))
        )
        return kernel, trace, collector
    workload = overhead_workload()
    splits = None
    if args.policy.startswith("csd-"):
        splits = min_overhead_splits(workload, 2, OverheadModel())
    kernel, trace = simulate_workload(
        workload,
        args.policy,
        duration=ms(args.horizon_ms),
        splits=splits,
        record="full",
        obs="full",
    )
    return kernel, trace, kernel.obs


def run_trace(argv: List[str]) -> int:
    """The ``trace`` subcommand: export a Chrome/Perfetto trace."""
    from repro.obs.tracer import export_chrome_trace

    parser = _obs_arg_parser(
        "python -m repro.reproduce trace",
        "Run a workload and export a Perfetto-loadable Chrome trace.",
    )
    parser.add_argument(
        "--out", default="trace.json", help="output path (default trace.json)"
    )
    args = parser.parse_args(argv)
    if args.horizon_ms <= 0:
        parser.error(f"--horizon-ms must be positive (got {args.horizon_ms})")
    kernel, trace, collector = _obs_run(args)
    count = export_chrome_trace(args.out, trace, collector)
    print(trace.summary(kernel.now))
    print(
        f"wrote {count} trace events to {args.out} "
        "(load at https://ui.perfetto.dev)"
    )
    return 0


def run_metrics(argv: List[str]) -> int:
    """The ``metrics`` subcommand: latency percentiles + blocking/PI."""
    from repro.obs.analyzers import (
        blocking_report,
        latency_report,
        pi_chain_report,
    )

    parser = _obs_arg_parser(
        "python -m repro.reproduce metrics",
        "Run a workload and report latency percentiles, semaphore "
        "blocking, and priority-inheritance chains.",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "prom"), default="text",
        help="output format (default: rendered text reports)",
    )
    parser.add_argument(
        "--out", default=None, help="also write the output to this path"
    )
    args = parser.parse_args(argv)
    if args.horizon_ms <= 0:
        parser.error(f"--horizon-ms must be positive (got {args.horizon_ms})")
    kernel, trace, collector = _obs_run(args)
    if args.format == "json":
        output = collector.metrics_json()
    elif args.format == "prom":
        output = collector.metrics_prometheus()
    else:
        output = "\n\n".join(
            [
                latency_report(trace),
                blocking_report(collector),
                pi_chain_report(collector),
            ]
        )
    print(output)
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(output if output.endswith("\n") else output + "\n")
        print(f"written to {args.out}")
    return 0


def _traced_ring_cluster(
    nodes: int, utilization: float, horizon_ns: int, sync: str,
    workers: int,
):
    """One fully-instrumented ring run; returns the (closed-later) cluster."""
    from repro.obs.cluster_trace import enable_cluster_tracing
    from repro.perf.clusterload import build_ring_cluster

    cluster = build_ring_cluster(
        nodes, utilization, sync, record="full",
        workers=workers or None,
    )
    enable_cluster_tracing(cluster, obs="full")
    cluster.run_until(horizon_ns)
    return cluster


def _cluster_trace_text(payload: Dict) -> str:
    """The canonical on-disk serialization (what byte-identity compares)."""
    import json

    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def run_cluster_trace(argv: List[str]) -> int:
    """The ``cluster-trace`` subcommand: merged multi-node Perfetto export.

    Runs the canonical ring workload with cluster-wide tracing armed,
    exports the merged Chrome/Perfetto JSON (validated before writing),
    prints the bus-chain latency percentiles, and optionally writes the
    aggregated cross-node metrics registry.  ``--verify`` re-runs the
    same configuration under lockstep / adaptive / parallel
    synchronization and asserts the merged trace and metrics are
    byte-identical -- the determinism contract of the exporter.
    """
    from repro.obs.analyzers import bus_chain_report
    from repro.obs.cluster_trace import (
        cluster_chrome_trace,
        cluster_metrics_registry,
    )
    from repro.obs.tracer import validate_chrome_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce cluster-trace",
        description="Export one merged multi-node Perfetto timeline "
        "from the canonical ring cluster.",
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--utilization", type=float, default=0.5,
        help="offered bus load of the ring senders (default 0.5)",
    )
    parser.add_argument(
        "--horizon-ms", type=int, default=100,
        help="virtual run length in ms (default 100)",
    )
    parser.add_argument(
        "--sync", choices=("lockstep", "adaptive", "parallel"),
        default="adaptive", help="cluster synchronization mode",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for --sync parallel (0 = auto)",
    )
    parser.add_argument(
        "--out", default="cluster.trace.json",
        help="merged trace output path (default cluster.trace.json)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="also write the aggregated metrics registry JSON here",
    )
    parser.add_argument(
        "--prom-out", default=None,
        help="also write the Prometheus text exposition here",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller horizon and a 2-configuration --verify matrix",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="assert byte-identical output across sync modes and "
        "worker counts before writing",
    )
    args = parser.parse_args(argv)
    if args.nodes < 2:
        parser.error(f"--nodes must be at least 2 (got {args.nodes})")
    if not 0.0 < args.utilization <= 1.0:
        parser.error(
            f"--utilization must be in (0, 1] (got {args.utilization:g})"
        )
    if args.horizon_ms <= 0:
        parser.error(f"--horizon-ms must be positive (got {args.horizon_ms})")
    if args.workers < 0:
        parser.error(f"--workers must be non-negative (got {args.workers})")
    horizon = ms(20 if args.quick else args.horizon_ms)

    _banner(
        f"Cluster trace: {args.nodes}-node ring, u={args.utilization:g}, "
        f"{to_ms(horizon):.0f} ms, sync={args.sync}"
    )
    cluster = _traced_ring_cluster(
        args.nodes, args.utilization, horizon, args.sync, args.workers
    )
    payload = cluster_chrome_trace(cluster)
    count = validate_chrome_trace(payload)
    text = _cluster_trace_text(payload)
    bus_events = list(cluster.bus.bus_log or [])
    rx_logs = cluster.rx_logs()
    rx_timelines = cluster.rx_timelines()
    registry = cluster_metrics_registry(cluster)
    cluster.close()

    flow_pairs = sum(1 for e in payload["traceEvents"] if e.get("ph") == "s")
    print(
        f"merged events: {count} ({flow_pairs} flow pairs, "
        f"{len(payload['otherData']['nodes'])} node pids + bus pid)"
    )
    print()
    print(bus_chain_report(bus_events, rx_logs, rx_timelines))

    if args.verify:
        matrix = [("lockstep", 0), ("parallel", 2)]
        if not args.quick:
            matrix.append(("parallel", 4))
        print()
        for sync, workers in matrix:
            other = _traced_ring_cluster(
                args.nodes, args.utilization, horizon, sync, workers
            )
            other_text = _cluster_trace_text(cluster_chrome_trace(other))
            other_metrics = cluster_metrics_registry(other).to_json()
            other.close()
            tag = f"{sync}/w{workers}" if workers else sync
            if other_text != text:
                print(f"VERIFY FAILED: trace differs under {tag}")
                return 1
            if other_metrics != registry.to_json():
                print(f"VERIFY FAILED: metrics differ under {tag}")
                return 1
            print(f"verified byte-identical under {tag}")

    with open(args.out, "w") as fh:
        fh.write(text)
    print(f"\nwrote {count} merged trace events to {args.out} "
          "(load at https://ui.perfetto.dev)")
    if args.metrics_out is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(registry.to_json() + "\n")
        print(f"aggregated metrics JSON written to {args.metrics_out}")
    if args.prom_out is not None:
        with open(args.prom_out, "w") as fh:
            fh.write(registry.to_prometheus())
        print(f"Prometheus exposition written to {args.prom_out}")
    return 0


def run_snapshot(argv: List[str]) -> int:
    """The ``snapshot`` subcommand: prefix-reuse demo + self-check.

    Runs a small canonical fault sweep (every point shares the same
    fault-free warm-up) twice -- cold-starting each point, then
    restoring each point from a snapshot of the shared prefix -- and
    verifies the restored results byte-identical to the cold ones
    (the dataclasses carry full-record trace signatures).
    """
    import time as _time

    from repro.faults.chaos import chaos_continue, chaos_prefix, run_chaos
    from repro.perf.snapshot import SNAPSHOT_MODES, resolve_snapshot_mode
    from repro.perf.sweeps import PrefixSpec, prefix_map

    parser = argparse.ArgumentParser(
        prog="reproduce snapshot",
        description="Checkpoint/restore prefix reuse: identity + speedup.",
    )
    parser.add_argument(
        "--mode", choices=SNAPSHOT_MODES, default=None,
        help="snapshot mechanism (default: REPRO_SNAPSHOT or auto)",
    )
    parser.add_argument(
        "--duration-ms", type=int, default=4000,
        help="virtual horizon per sweep point (ms)",
    )
    parser.add_argument(
        "--warmup-ms", type=int, default=3000,
        help="shared fault-free warm-up before the storms arm (ms)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2],
        help="seeds per fault rate",
    )
    parser.add_argument(
        "--rates", type=float, nargs="+", default=[5.0, 50.0],
        help="fault rates (faults per virtual second)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.warmup_ms < args.duration_ms:
        parser.error("--warmup-ms must lie inside the --duration-ms horizon")

    duration, warmup = ms(args.duration_ms), ms(args.warmup_ms)
    mode = resolve_snapshot_mode(args.mode)
    cases = [(rate, seed) for rate in args.rates for seed in args.seeds]

    def plan(case):
        rate, seed = case
        spec = PrefixSpec(
            key=("snapshot-demo", warmup),
            t_split=warmup,
            build=lambda: chaos_prefix(True, t_split=warmup),
        )

        def continuation(kernel):
            return chaos_continue(
                kernel,
                seed,
                duration,
                wcet_overrun_rate=rate,
                crash_rate=rate / 10,
                clock_jitter_rate=rate / 2,
                faults_from=warmup,
            )

        return spec, continuation

    def cold_case(case):
        rate, seed = case
        return run_chaos(
            seed,
            duration,
            wcet_overrun_rate=rate,
            crash_rate=rate / 10,
            clock_jitter_rate=rate / 2,
            faults_from=warmup,
        )

    print(
        f"Snapshot demo: {len(cases)} points x {args.duration_ms} ms, "
        f"shared {args.warmup_ms} ms warm-up, mode={mode}"
    )
    started = _time.perf_counter()
    cold = [cold_case(case) for case in cases]
    cold_wall = _time.perf_counter() - started
    started = _time.perf_counter()
    restored = prefix_map(plan, cases, mode=mode)
    snap_wall = _time.perf_counter() - started

    failed = False
    for case, a, b in zip(cases, cold, restored):
        verdict = "identical" if a == b else "MISMATCH"
        failed = failed or a != b
        print(
            f"  rate={case[0]:g} seed={case[1]}: {verdict} "
            f"(miss ratio {a.miss_ratio:.3f}, "
            f"signature {a.trace_signature[:12]})"
        )
    speedup = cold_wall / snap_wall if snap_wall else float("inf")
    print(
        f"cold {cold_wall:.2f} s, snapshot {snap_wall:.2f} s "
        f"-> {speedup:.2f}x"
    )
    if failed:
        print("FAIL: restored results diverged from cold runs")
        return 1
    print("every restored point is byte-identical to its cold run")
    return 0


TARGETS: Dict[str, Callable[[bool], None]] = {
    "table1": run_table1,
    "table2": run_table2,
    "figure2": run_figure2,
    "table3": run_table3,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure11": run_figure11,
    "ipc": run_ipc,
    "cyclic": run_cyclic,
    "footprint": run_footprint,
    "validate": run_validate,
}


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "faults":
        return run_faults(raw[1:])
    if raw and raw[0] == "netfaults":
        return run_netfaults(raw[1:])
    if raw and raw[0] == "perf":
        return run_perf(raw[1:])
    if raw and raw[0] == "bench":
        return run_bench(raw[1:])
    if raw and raw[0] == "trace":
        return run_trace(raw[1:])
    if raw and raw[0] == "metrics":
        return run_metrics(raw[1:])
    if raw and raw[0] == "cluster-trace":
        return run_cluster_trace(raw[1:])
    if raw and raw[0] == "snapshot":
        return run_snapshot(raw[1:])
    parser = argparse.ArgumentParser(
        description="Regenerate the EMERALDS paper's tables and figures."
    )
    parser.add_argument(
        "targets",
        nargs="*",
        choices=list(TARGETS) + [[]],
        help="artifacts to regenerate (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps for a fast pass"
    )
    args = parser.parse_args(raw)
    chosen = args.targets or list(TARGETS)
    started = time.time()
    for target in chosen:
        TARGETS[target](args.quick)
    print(f"\ndone in {time.time() - started:.1f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
