"""Trace metrics: response-time statistics, miss ratios, overhead shares.

Post-processing helpers that turn a :class:`~repro.sim.trace.Trace`
into the quantities real-time evaluations report: per-task worst/mean
response times, deadline-miss ratios, and the breakdown of CPU time
into application work, kernel overhead (by category), and idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.trace import IDLE, KERNEL, Trace

__all__ = [
    "ResponseStats",
    "CpuBreakdown",
    "response_stats",
    "cpu_breakdown",
    "miss_ratio",
    "recovery_time_ns",
]


@dataclass(frozen=True)
class ResponseStats:
    """Response-time statistics of one thread's completed jobs (ns)."""

    thread: str
    jobs: int
    completed: int
    minimum: Optional[int]
    mean: Optional[float]
    maximum: Optional[int]
    p99: Optional[int]

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.jobs if self.jobs else 0.0


def response_stats(trace: Trace, thread: str) -> ResponseStats:
    """Summarize the response times of ``thread``'s jobs."""
    jobs = trace.jobs_of(thread)
    responses = sorted(
        j.response_time for j in jobs if j.response_time is not None
    )
    if not responses:
        return ResponseStats(thread, len(jobs), 0, None, None, None, None)
    index_99 = min(len(responses) - 1, round(0.99 * (len(responses) - 1)))
    return ResponseStats(
        thread=thread,
        jobs=len(jobs),
        completed=len(responses),
        minimum=responses[0],
        mean=sum(responses) / len(responses),
        maximum=responses[-1],
        p99=responses[index_99],
    )


def miss_ratio(trace: Trace, now: int, thread: Optional[str] = None) -> float:
    """Fraction of released jobs that violated their deadline.

    Counts both late completions and overdue unfinished jobs.  Restrict
    to one thread with ``thread``.
    """
    jobs = trace.jobs if thread is None else trace.jobs_of(thread)
    if not jobs:
        return 0.0
    violations = {id(j) for j in trace.deadline_violations(now)}
    missed = sum(1 for j in jobs if id(j) in violations)
    return missed / len(jobs)


def recovery_time_ns(trace: Trace, now: int, burst_end: int) -> int:
    """How long after ``burst_end`` the system kept violating deadlines.

    Returns the distance from ``burst_end`` to the *last* deadline
    violation instant -- a late job counts at its completion, an
    unfinished or aborted overdue job at its deadline.  Zero means
    every violation (if any) happened during the burst: the kernel was
    back to a zero-miss steady state the moment the faults stopped.
    """
    latest: Optional[int] = None
    for job in trace.deadline_violations(now):
        instant = job.completion if job.completion is not None else job.deadline
        if instant is None:
            continue
        if instant > burst_end and (latest is None or instant > latest):
            latest = instant
    return 0 if latest is None else latest - burst_end


@dataclass(frozen=True)
class CpuBreakdown:
    """Where the CPU time of ``[start, end)`` went."""

    window_ns: int
    application_ns: int
    kernel_ns: int
    idle_ns: int
    kernel_by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def application_share(self) -> float:
        return self.application_ns / self.window_ns if self.window_ns else 0.0

    @property
    def kernel_share(self) -> float:
        return self.kernel_ns / self.window_ns if self.window_ns else 0.0

    @property
    def idle_share(self) -> float:
        return self.idle_ns / self.window_ns if self.window_ns else 0.0


def cpu_breakdown(trace: Trace, start: int, end: int) -> CpuBreakdown:
    """Split ``[start, end)`` into application, kernel, and idle time.

    Requires the trace to have been recorded with segments enabled.
    The per-category kernel split uses the whole-run counters (the
    trace does not keep per-window categories), so it is exact only
    when the window covers the full run.
    """
    if end <= start:
        raise ValueError("end must be after start")
    application = 0
    kernel = 0
    idle = 0
    for segment in trace.segments:
        lo = max(segment.start, start)
        hi = min(segment.end, end)
        if hi <= lo:
            continue
        if segment.who == KERNEL:
            kernel += hi - lo
        elif segment.who == IDLE:
            idle += hi - lo
        else:
            application += hi - lo
    return CpuBreakdown(
        window_ns=end - start,
        application_ns=application,
        kernel_ns=kernel,
        idle_ns=idle,
        kernel_by_category=dict(trace.kernel_time),
    )
