"""Result rendering: tables and ASCII series for the evaluation."""

from repro.analysis.metrics import (
    CpuBreakdown,
    ResponseStats,
    cpu_breakdown,
    miss_ratio,
    recovery_time_ns,
    response_stats,
)
from repro.analysis.tables import ascii_series, format_table

__all__ = [
    "CpuBreakdown",
    "ResponseStats",
    "ascii_series",
    "cpu_breakdown",
    "format_table",
    "miss_ratio",
    "recovery_time_ns",
    "response_stats",
]
