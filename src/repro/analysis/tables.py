"""Plain-text table and series rendering for benchmark output.

The benchmark harness regenerates the paper's tables and figures as
text: :func:`format_table` renders aligned rows (Tables 1-3),
:func:`ascii_series` renders multi-series line data (Figures 3-5, 11)
as a column-per-x table plus a crude ASCII plot so trends are visible
in CI logs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["format_table", "ascii_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render several named series as a table plus a rough ASCII plot."""
    names = list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [f"{series[name][i]:.1f}" for name in names])
    table = format_table([x_label or "x"] + names, rows, title=title)

    # Crude plot: one character column per x value per series.
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return table
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    markers = "ox+*#@%&"
    grid = [[" "] * (len(x_values) * 3) for _ in range(height)]
    for s_idx, name in enumerate(names):
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(series[name]):
            row = height - 1 - round((value - lo) / span * (height - 1))
            col = i * 3 + 1
            if grid[row][col] == " ":
                grid[row][col] = marker
            else:
                grid[row][col] = "*"  # overlapping series
    plot_lines = []
    for r, line in enumerate(grid):
        level = hi - (r / (height - 1)) * span
        plot_lines.append(f"{level:8.1f} |{''.join(line)}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(names)
    )
    return "\n".join(
        [table, "", *plot_lines, " " * 10 + legend + ("  (* = overlap)" if len(names) > 1 else "")]
    )
