"""Execution traces: Gantt segments, job records, kernel-time accounting.

The trace is how experiments observe the kernel: every context switch,
deadline miss, and nanosecond of kernel overhead (by category) is
recorded here.  :meth:`Trace.gantt_ascii` renders schedules like the
paper's Figure 2.

Recording modes
---------------

Tracing sits on the simulator's hottest path, so what gets *stored*
is switchable (what gets *counted* -- context switches, kernel time by
category, idle time -- is always maintained; the counters are plain
integer adds):

* ``"full"`` -- everything: point events, job records, Gantt segments.
* ``"jobs-only"`` -- job records only; point events and segments are
  discarded as they arrive.  Deadline accounting
  (:meth:`Trace.misses`, :meth:`Trace.deadline_violations`) still
  works; this is the mode for long throughput runs.
* ``"off"`` -- counters only; nothing is stored.

Even at ``"full"``, the event log can be capped with ``max_events``:
the log becomes a ring buffer keeping the newest events, and the trace
marks itself truncated (:attr:`Trace.events_dropped`,
:meth:`Trace.event_log` prepends an explicit ``<truncated>`` marker)
instead of growing without bound.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.timeunits import to_ms, to_us

__all__ = ["Trace", "Segment", "JobRecord", "RECORD_MODES"]

#: Pseudo-thread names used in execution segments.
IDLE = "<idle>"
KERNEL = "<kernel>"

#: Valid trace recording modes, most to least detailed.
RECORD_MODES = ("full", "jobs-only", "off")

#: Kind tag of the marker entry :meth:`Trace.event_log` prepends when
#: the ring buffer dropped events.
TRUNCATED = "<truncated>"


class Segment:
    """A half-open interval ``[start, end)`` of CPU time.

    ``who`` is a thread name, or :data:`IDLE`/:data:`KERNEL`.
    """

    __slots__ = ("start", "end", "who")

    def __init__(self, start: int, end: int, who: str):
        self.start = start
        self.end = end
        self.who = who

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __eq__(self, other) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (self.start, self.end, self.who) == (other.start, other.end, other.who)

    def __repr__(self) -> str:
        return f"Segment(start={self.start}, end={self.end}, who={self.who!r})"


class JobRecord:
    """One job (periodic activation) of a thread."""

    __slots__ = ("thread", "release", "deadline", "completion", "aborted")

    def __init__(
        self,
        thread: str,
        release: int,
        deadline: Optional[int],
        completion: Optional[int] = None,
        aborted: bool = False,
    ):
        self.thread = thread
        self.release = release
        self.deadline = deadline
        self.completion = completion
        #: Abandoned before completion (budget enforcement, crash,
        #: restart).  The record keeps ``completion=None``, so an
        #: overdue aborted job still counts as a deadline violation.
        self.aborted = aborted

    @property
    def missed(self) -> bool:
        """True when the job finished after its deadline."""
        if self.completion is None or self.deadline is None:
            return False
        return self.completion > self.deadline

    @property
    def response_time(self) -> Optional[int]:
        if self.completion is None:
            return None
        return self.completion - self.release

    def __eq__(self, other) -> bool:
        if not isinstance(other, JobRecord):
            return NotImplemented
        return (
            self.thread, self.release, self.deadline, self.completion, self.aborted
        ) == (
            other.thread, other.release, other.deadline, other.completion, other.aborted
        )

    def __repr__(self) -> str:
        return (
            f"JobRecord(thread={self.thread!r}, release={self.release}, "
            f"deadline={self.deadline}, completion={self.completion}, "
            f"aborted={self.aborted})"
        )


class Trace:
    """Accumulates everything observable about one kernel run.

    Args:
        record_segments: Legacy switch; ``False`` is shorthand for
            ``record="jobs-only"``.
        record: Recording mode (see module docstring); overrides
            ``record_segments`` when given.
        max_events: Cap on the stored event log; ``None`` = unbounded.
            When the cap is hit the oldest events are dropped and the
            trace is marked truncated.
    """

    __slots__ = (
        "record",
        "record_segments",
        "_record_events",
        "_record_jobs",
        "max_events",
        "segments",
        "jobs",
        "events",
        "events_dropped",
        "context_switches",
        "kernel_time",
        "kernel_time_total",
        "idle_time",
        "_open_jobs",
    )

    def __init__(
        self,
        record_segments: bool = True,
        record: Optional[str] = None,
        max_events: Optional[int] = None,
    ):
        if record is None:
            record = "full" if record_segments else "jobs-only"
        if record not in RECORD_MODES:
            raise ValueError(
                f"unknown record mode {record!r} (expected one of {RECORD_MODES})"
            )
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive (got {max_events})")
        self.record = record
        self.record_segments = record == "full"
        self._record_events = record == "full"
        self._record_jobs = record != "off"
        self.max_events = max_events
        self.segments: List[Segment] = []
        self.jobs: List[JobRecord] = []
        self.events: deque = deque(maxlen=max_events)
        #: Events discarded by the ring buffer (oldest-first).
        self.events_dropped = 0
        self.context_switches = 0
        self.kernel_time: Dict[str, int] = {}
        #: Running total of :attr:`kernel_time` (plain attribute so the
        #: hot path pays one add, not a sum over categories per query).
        self.kernel_time_total = 0
        self.idle_time = 0
        self._open_jobs: Dict[Tuple[str, int], JobRecord] = {}

    # ------------------------------------------------------------------
    # recording (called by the kernel)
    # ------------------------------------------------------------------
    def add_segment(self, start: int, end: int, who: str) -> None:
        """Record CPU occupancy; merges adjacent same-owner segments."""
        if end <= start:
            return
        if who == IDLE:
            self.idle_time += end - start
        if not self.record_segments:
            return
        segments = self.segments
        if segments:
            last = segments[-1]
            if last.who == who and last.end == start:
                last.end = end
                return
        segments.append(Segment(start, end, who))

    def charge_kernel(self, start: int, end: int, category: str) -> None:
        """Record kernel overhead time under a named category."""
        if end <= start:
            return
        delta = end - start
        kernel_time = self.kernel_time
        kernel_time[category] = kernel_time.get(category, 0) + delta
        self.kernel_time_total += delta
        if self.record_segments:
            self.add_segment(start, end, KERNEL)

    def note(self, time: int, kind: str, detail: str) -> None:
        """Record a point event (release, miss, switch, fault...)."""
        if not self._record_events:
            return
        events = self.events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.events_dropped += 1
        events.append((time, kind, detail))

    def job_released(
        self, thread: str, release: int, deadline: int, job_no: int
    ) -> Optional[JobRecord]:
        """Open a job record at its (nominal) release.

        Returns ``None`` in ``"off"`` mode (nothing is stored)."""
        if not self._record_jobs:
            return None
        record = JobRecord(thread, release, deadline)
        self.jobs.append(record)
        self._open_jobs[(thread, job_no)] = record
        return record

    def job_completed(self, thread: str, job_no: int, completion: int) -> Optional[JobRecord]:
        """Close a job record; notes a deadline miss when late."""
        record = self._open_jobs.pop((thread, job_no), None)
        if record is not None:
            record.completion = completion
            deadline = record.deadline
            if deadline is not None and completion > deadline:
                self.note(completion, "deadline-miss", thread)
        return record

    def job_aborted(self, thread: str, job_no: int, time: int) -> Optional[JobRecord]:
        """Close a job record without a completion (the job was
        abandoned by budget enforcement, a crash, or a restart)."""
        record = self._open_jobs.pop((thread, job_no), None)
        if record is not None:
            record.aborted = True
            self.note(time, "job-aborted", thread)
        return record

    def context_switch(self, time: int, old: Optional[str], new: Optional[str]) -> None:
        """Count and note one context switch."""
        self.context_switches += 1
        if self._record_events:
            self.note(time, "context-switch", f"{old or IDLE} -> {new or IDLE}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def events_truncated(self) -> bool:
        """True when the ring buffer has dropped events."""
        return self.events_dropped > 0

    def event_log(self) -> List[Tuple[int, str, str]]:
        """The stored events, with an explicit truncation marker.

        When the ring buffer dropped events, the first entry is
        ``(t_oldest, "<truncated>", "N older events dropped")`` so a
        reader can never mistake a capped log for a complete one.
        """
        log = list(self.events)
        if self.events_dropped:
            oldest = log[0][0] if log else 0
            log.insert(
                0, (oldest, TRUNCATED, f"{self.events_dropped} older events dropped")
            )
        return log

    def signature(self, include_segments: bool = False) -> str:
        """Deterministic sha256 over the recorded behavior.

        Hashes the point events and the job records (thread, release,
        deadline, completion, aborted) -- and, with
        ``include_segments``, the Gantt segments too.  Two runs are
        behaviorally identical iff their full-mode signatures match;
        performance work must leave this hash unchanged.
        """
        if self.events_dropped:
            raise ValueError("signature of a truncated event log is meaningless")
        fingerprint: Tuple = (
            tuple(self.events),
            tuple(
                (j.thread, j.release, j.deadline, j.completion, j.aborted)
                for j in self.jobs
            ),
        )
        if include_segments:
            fingerprint = fingerprint + (
                tuple((s.start, s.end, s.who) for s in self.segments),
            )
        return hashlib.sha256(repr(fingerprint).encode()).hexdigest()

    def last_time(self) -> int:
        """Latest instant covered by any stored record (ns).

        The maximum over segment ends, job releases/completions, and
        point-event stamps -- 0 for an empty trace.  Exporters use it
        to place end-of-run markers without knowing the horizon.
        """
        last = 0
        if self.segments:
            last = self.segments[-1].end
        for job in self.jobs:
            if job.completion is not None and job.completion > last:
                last = job.completion
            elif job.release > last:
                last = job.release
        for time, _kind, _detail in self.events:
            if time > last:
                last = time
        return last

    def misses(self) -> List[JobRecord]:
        """Jobs that completed after their deadline."""
        return [j for j in self.jobs if j.missed]

    def unfinished(self, now: int) -> List[JobRecord]:
        """Jobs released but not completed whose deadline has passed."""
        return [
            j
            for j in self.jobs
            if j.completion is None and j.deadline is not None and j.deadline < now
        ]

    def deadline_violations(self, now: int) -> List[JobRecord]:
        """Late completions plus overdue unfinished jobs."""
        return self.misses() + self.unfinished(now)

    def jobs_of(self, thread: str) -> List[JobRecord]:
        """All job records of one thread, in release order."""
        return [j for j in self.jobs if j.thread == thread]

    def max_response_ns(self, thread: str) -> Optional[int]:
        """Worst observed response time of completed jobs (ns)."""
        responses = [
            j.response_time for j in self.jobs_of(thread) if j.response_time is not None
        ]
        return max(responses) if responses else None

    def _require_segments(self, caller: str) -> None:
        """Fail loudly when a segment query runs on a reduced-mode
        trace: a silent empty chart / 0.0 share reads like a real
        result and has sent people debugging the wrong layer."""
        if self.record != "full":
            raise ValueError(
                f"{caller} needs Gantt segments, but this trace was "
                f"recorded in {self.record!r} mode; re-run with "
                "record='full' (the default) to store them"
            )

    def cpu_share(self, who: str, start: int, end: int) -> float:
        """Fraction of ``[start, end)`` occupied by ``who``.

        Raises :class:`ValueError` unless the trace was recorded in
        ``"full"`` mode (segments are not stored otherwise).
        """
        self._require_segments("cpu_share")
        if end <= start:
            return 0.0
        busy = 0
        for seg in self.segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi > lo and seg.who == who:
                busy += hi - lo
        return busy / (end - start)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def gantt_ascii(
        self,
        start: int,
        end: int,
        columns: int = 72,
        threads: Optional[List[str]] = None,
    ) -> str:
        """Render the schedule as an ASCII Gantt chart (cf. Figure 2).

        One row per thread; ``#`` marks execution, ``.`` marks other
        time, ``!`` marks a deadline miss within that column.

        Raises :class:`ValueError` unless the trace was recorded in
        ``"full"`` mode (segments are not stored otherwise).
        """
        self._require_segments("gantt_ascii")
        if end <= start:
            raise ValueError("end must be after start")
        if threads is None:
            seen: List[str] = []
            for seg in self.segments:
                if seg.who not in (IDLE, KERNEL) and seg.who not in seen:
                    seen.append(seg.who)
            threads = seen
        width = (end - start) / columns
        lines = [
            f"gantt [{to_ms(start):g}ms .. {to_ms(end):g}ms], "
            f"one column = {to_ms(round(width)):g}ms"
        ]
        misses = {
            (j.thread, j.completion)
            for j in self.misses()
            if j.completion is not None
        }
        label_width = max((len(t) for t in threads), default=4)
        for thread in threads:
            cells = []
            for col in range(columns):
                lo = start + round(col * width)
                hi = start + round((col + 1) * width)
                busy = any(
                    seg.who == thread and seg.start < hi and seg.end > lo
                    for seg in self.segments
                )
                miss_here = any(
                    t == thread and c is not None and lo <= c < hi for t, c in misses
                )
                cells.append("!" if miss_here else "#" if busy else ".")
            lines.append(f"{thread.rjust(label_width)} |{''.join(cells)}|")
        return "\n".join(lines)

    def summary(self, now: int) -> str:
        """Human-readable run summary.

        Deadline accounting goes through one path --
        :meth:`deadline_violations` is :meth:`misses` plus
        :meth:`unfinished` -- and both components are itemized so the
        total is self-describing.  Per-task response-time stats
        (mean/max) come from the same percentile helper the
        ``reproduce metrics`` subcommand uses.
        """
        misses = self.misses()
        overdue = self.unfinished(now)
        lines = [
            f"jobs: {len(self.jobs)}  completed: "
            f"{sum(1 for j in self.jobs if j.completion is not None)}  "
            f"deadline violations: {len(misses) + len(overdue)} "
            f"({len(misses)} late, {len(overdue)} overdue unfinished)",
            f"context switches: {self.context_switches}",
            f"kernel time: {to_us(self.kernel_time_total):.1f} us "
            f"({', '.join(f'{k}={to_us(v):.1f}us' for k, v in sorted(self.kernel_time.items()))})",
            f"idle time: {to_us(self.idle_time):.1f} us",
        ]
        if self.record != "off" and self.jobs:
            from repro.obs.analyzers import response_percentiles

            for task, stats in response_percentiles(self).items():
                lines.append(
                    f"  {task}: {stats['count']} jobs, response "
                    f"mean={to_us(round(stats['mean'])):.1f}us "
                    f"max={to_us(stats['max']):.1f}us"
                )
        if self.events_dropped:
            lines.append(f"event log truncated: {self.events_dropped} dropped")
        return "\n".join(lines)
