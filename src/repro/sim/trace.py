"""Execution traces: Gantt segments, job records, kernel-time accounting.

The trace is how experiments observe the kernel: every context switch,
deadline miss, and nanosecond of kernel overhead (by category) is
recorded here.  :meth:`Trace.gantt_ascii` renders schedules like the
paper's Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.timeunits import to_ms, to_us

__all__ = ["Trace", "Segment", "JobRecord"]

#: Pseudo-thread names used in execution segments.
IDLE = "<idle>"
KERNEL = "<kernel>"


@dataclass
class Segment:
    """A half-open interval ``[start, end)`` of CPU time.

    ``who`` is a thread name, or :data:`IDLE`/:data:`KERNEL`.
    """

    start: int
    end: int
    who: str

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class JobRecord:
    """One job (periodic activation) of a thread."""

    thread: str
    release: int
    deadline: Optional[int]
    completion: Optional[int] = None
    #: Abandoned before completion (budget enforcement, crash, restart).
    #: The record keeps ``completion=None``, so an overdue aborted job
    #: still counts as a deadline violation.
    aborted: bool = False

    @property
    def missed(self) -> bool:
        """True when the job finished after its deadline."""
        if self.completion is None or self.deadline is None:
            return False
        return self.completion > self.deadline

    @property
    def response_time(self) -> Optional[int]:
        if self.completion is None:
            return None
        return self.completion - self.release


class Trace:
    """Accumulates everything observable about one kernel run."""

    def __init__(self, record_segments: bool = True):
        self.record_segments = record_segments
        self.segments: List[Segment] = []
        self.jobs: List[JobRecord] = []
        self.events: List[Tuple[int, str, str]] = []
        self.context_switches = 0
        self.kernel_time: Dict[str, int] = defaultdict(int)
        self.idle_time = 0
        self._open_jobs: Dict[Tuple[str, int], JobRecord] = {}

    # ------------------------------------------------------------------
    # recording (called by the kernel)
    # ------------------------------------------------------------------
    def add_segment(self, start: int, end: int, who: str) -> None:
        """Record CPU occupancy; merges adjacent same-owner segments."""
        if end <= start:
            return
        if who == IDLE:
            self.idle_time += end - start
        if not self.record_segments:
            return
        if self.segments and self.segments[-1].who == who and self.segments[-1].end == start:
            self.segments[-1].end = end
        else:
            self.segments.append(Segment(start, end, who))

    def charge_kernel(self, start: int, end: int, category: str) -> None:
        """Record kernel overhead time under a named category."""
        if end <= start:
            return
        self.kernel_time[category] += end - start
        self.add_segment(start, end, KERNEL)

    def note(self, time: int, kind: str, detail: str) -> None:
        """Record a point event (release, miss, switch, fault...)."""
        self.events.append((time, kind, detail))

    def job_released(self, thread: str, release: int, deadline: int, job_no: int) -> JobRecord:
        """Open a job record at its (nominal) release."""
        record = JobRecord(thread, release, deadline)
        self.jobs.append(record)
        self._open_jobs[(thread, job_no)] = record
        return record

    def job_completed(self, thread: str, job_no: int, completion: int) -> Optional[JobRecord]:
        """Close a job record; notes a deadline miss when late."""
        record = self._open_jobs.pop((thread, job_no), None)
        if record is not None:
            record.completion = completion
            if record.missed:
                self.note(completion, "deadline-miss", thread)
        return record

    def job_aborted(self, thread: str, job_no: int, time: int) -> Optional[JobRecord]:
        """Close a job record without a completion (the job was
        abandoned by budget enforcement, a crash, or a restart)."""
        record = self._open_jobs.pop((thread, job_no), None)
        if record is not None:
            record.aborted = True
            self.note(time, "job-aborted", thread)
        return record

    def context_switch(self, time: int, old: Optional[str], new: Optional[str]) -> None:
        """Count and note one context switch."""
        self.context_switches += 1
        self.note(time, "context-switch", f"{old or IDLE} -> {new or IDLE}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def kernel_time_total(self) -> int:
        """All kernel overhead charged, in nanoseconds."""
        return sum(self.kernel_time.values())

    def misses(self) -> List[JobRecord]:
        """Jobs that completed after their deadline."""
        return [j for j in self.jobs if j.missed]

    def unfinished(self, now: int) -> List[JobRecord]:
        """Jobs released but not completed whose deadline has passed."""
        return [
            j
            for j in self.jobs
            if j.completion is None and j.deadline is not None and j.deadline < now
        ]

    def deadline_violations(self, now: int) -> List[JobRecord]:
        """Late completions plus overdue unfinished jobs."""
        return self.misses() + self.unfinished(now)

    def jobs_of(self, thread: str) -> List[JobRecord]:
        """All job records of one thread, in release order."""
        return [j for j in self.jobs if j.thread == thread]

    def max_response_ns(self, thread: str) -> Optional[int]:
        """Worst observed response time of completed jobs (ns)."""
        responses = [
            j.response_time for j in self.jobs_of(thread) if j.response_time is not None
        ]
        return max(responses) if responses else None

    def cpu_share(self, who: str, start: int, end: int) -> float:
        """Fraction of ``[start, end)`` occupied by ``who``."""
        if end <= start:
            return 0.0
        busy = 0
        for seg in self.segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi > lo and seg.who == who:
                busy += hi - lo
        return busy / (end - start)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def gantt_ascii(
        self,
        start: int,
        end: int,
        columns: int = 72,
        threads: Optional[List[str]] = None,
    ) -> str:
        """Render the schedule as an ASCII Gantt chart (cf. Figure 2).

        One row per thread; ``#`` marks execution, ``.`` marks other
        time, ``!`` marks a deadline miss within that column.
        """
        if end <= start:
            raise ValueError("end must be after start")
        if threads is None:
            seen: List[str] = []
            for seg in self.segments:
                if seg.who not in (IDLE, KERNEL) and seg.who not in seen:
                    seen.append(seg.who)
            threads = seen
        width = (end - start) / columns
        lines = [
            f"gantt [{to_ms(start):g}ms .. {to_ms(end):g}ms], "
            f"one column = {to_ms(round(width)):g}ms"
        ]
        misses = {
            (j.thread, j.completion)
            for j in self.misses()
            if j.completion is not None
        }
        label_width = max((len(t) for t in threads), default=4)
        for thread in threads:
            cells = []
            for col in range(columns):
                lo = start + round(col * width)
                hi = start + round((col + 1) * width)
                busy = any(
                    seg.who == thread and seg.start < hi and seg.end > lo
                    for seg in self.segments
                )
                miss_here = any(
                    t == thread and c is not None and lo <= c < hi for t, c in misses
                )
                cells.append("!" if miss_here else "#" if busy else ".")
            lines.append(f"{thread.rjust(label_width)} |{''.join(cells)}|")
        return "\n".join(lines)

    def summary(self, now: int) -> str:
        """Human-readable run summary."""
        misses = self.deadline_violations(now)
        lines = [
            f"jobs: {len(self.jobs)}  completed: "
            f"{sum(1 for j in self.jobs if j.completion is not None)}  "
            f"deadline violations: {len(misses)}",
            f"context switches: {self.context_switches}",
            f"kernel time: {to_us(self.kernel_time_total):.1f} us "
            f"({', '.join(f'{k}={to_us(v):.1f}us' for k, v in sorted(self.kernel_time.items()))})",
            f"idle time: {to_us(self.idle_time):.1f} us",
        ]
        return "\n".join(lines)
