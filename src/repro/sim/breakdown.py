"""Breakdown-utilization experiments (Section 5.7, Figures 3-5).

"Our test procedure involves generating random task workloads, then for
each workload, scaling the execution times of tasks until the workload
is no longer feasible for a given scheduler.  The utilization at which
the workload becomes infeasible is called the breakdown utilization."

:func:`breakdown_utilization` locates the largest feasible
execution-time scale against an overhead-aware feasibility test
(feasibility is monotone in the scale: demand grows with execution
times while run-time overheads are scale-independent).

Implementation notes:

* Under EDF with implicit deadlines the test is ``U' <= 1``, so the
  breakdown utilization has the closed form ``1 - sum(t_i / P_i)``
  (raw utilization plus the overhead utilization must reach exactly 1).
* RM uses a plain binary search over response-time analysis.
* CSD must maximize over queue allocations as well (the paper's offline
  search).  We search a coarse grid of DP-set sizes with rate-balanced
  inner splits, then refine locally around the best candidate.  The
  incumbent best scale prunes hard: a candidate allocation is tested
  once at the incumbent; only improvers pay for a binary search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import balanced_splits
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import (
    BLOCKING_FACTOR,
    band_sizes_from_splits,
    csd_overhead_per_period,
    csd_schedulable,
    edf_overhead_per_period,
    edf_schedulable,
    heap_overhead_per_period,
    rm_overhead_per_period,
    rm_schedulable,
)
from repro.core.task import Workload
from repro.sim.workload import generate_base_workloads

__all__ = [
    "POLICIES",
    "BreakdownResult",
    "best_csd_configuration",
    "breakdown_utilization",
    "figure_series",
    "FigureSeries",
]

#: Scheduling policies understood by this module.  ``csd-x`` uses
#: ``x - 1`` dynamic-priority queues plus the FP queue.
POLICIES = ("edf", "rm", "rm-heap", "csd-2", "csd-3", "csd-4", "csd-5", "csd-6")

#: Absolute precision of the scale binary search.
_SCALE_TOLERANCE = 1e-3


def _dp_bands(policy: str) -> int:
    if not policy.startswith("csd-"):
        raise ValueError(f"not a CSD policy: {policy}")
    x = int(policy.split("-", 1)[1])
    if x < 2:
        raise ValueError("CSD needs at least two queues")
    return x - 1


@dataclass
class BreakdownResult:
    """Outcome of one breakdown search."""

    policy: str
    utilization: float
    scale: float
    splits: Optional[Tuple[int, ...]] = None


def _search_max_scale(
    feasible: Callable[[float], bool],
    hi: float,
    lo: float = 0.0,
    tolerance: float = _SCALE_TOLERANCE,
) -> float:
    """Largest feasible scale in ``[lo, hi]`` by bisection.

    ``lo`` must already be known feasible (or zero); ``hi`` is an upper
    bound beyond which the workload cannot be feasible.
    """
    if feasible(hi):
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def _overhead_utilization(workload: Workload, overheads: Sequence[int]) -> float:
    """Utilization consumed by per-period scheduler overheads."""
    return sum(o / t.period for o, t in zip(overheads, workload))


def _edf_breakdown(
    workload: Workload, model: OverheadModel, blocking_factor: float
) -> BreakdownResult:
    n = len(workload)
    base = workload.utilization
    overhead = edf_overhead_per_period(model, n, blocking_factor)
    overhead_util = _overhead_utilization(workload, [overhead] * n)
    if all(t.deadline >= t.period for t in workload):
        # Closed form: scale * U_base + U_overhead = 1.
        utilization = max(0.0, 1.0 - overhead_util)
        return BreakdownResult("edf", utilization, utilization / base)
    hi = max(0.0, (1.0 - overhead_util) / base)
    scale = _search_max_scale(
        lambda s: edf_schedulable(workload.scaled(s), model, blocking_factor),
        hi=max(hi, _SCALE_TOLERANCE),
    )
    return BreakdownResult("edf", scale * base, scale)


def _rm_breakdown(
    workload: Workload,
    model: OverheadModel,
    blocking_factor: float,
    heap: bool,
) -> BreakdownResult:
    n = len(workload)
    base = workload.utilization
    per = (
        heap_overhead_per_period(model, n, blocking_factor)
        if heap
        else rm_overhead_per_period(model, n, blocking_factor)
    )
    overhead_util = _overhead_utilization(workload, [per] * n)
    hi = max(_SCALE_TOLERANCE, (1.0 - overhead_util) / base)
    scale = _search_max_scale(
        lambda s: rm_schedulable(workload.scaled(s), model, blocking_factor, heap=heap),
        hi=hi,
    )
    policy = "rm-heap" if heap else "rm"
    return BreakdownResult(policy, scale * base, scale)


def _csd_allocation_cap(
    workload: Workload,
    splits: Tuple[int, ...],
    model: OverheadModel,
    blocking_factor: float,
) -> float:
    """Scale upper bound for one allocation from ``U' <= 1``."""
    sizes = band_sizes_from_splits(len(workload), splits)
    overheads: List[int] = []
    start = 0
    for k, size in enumerate(sizes):
        per = csd_overhead_per_period(model, sizes, k, blocking_factor)
        overheads.extend([per] * size)
        start += size
    overhead_util = _overhead_utilization(workload, overheads)
    base = workload.utilization
    return max(0.0, (1.0 - overhead_util) / base)


def _csd_breakdown(
    workload: Workload,
    policy: str,
    model: OverheadModel,
    blocking_factor: float,
) -> BreakdownResult:
    n = len(workload)
    base = workload.utilization
    dp_bands = _dp_bands(policy)

    def feasible(splits: Tuple[int, ...], scale: float) -> bool:
        return csd_schedulable(workload.scaled(scale), splits, model, blocking_factor)

    def evaluate(splits: Tuple[int, ...], incumbent: float) -> Optional[float]:
        """Best scale for ``splits`` if it beats ``incumbent``, else None."""
        cap = _csd_allocation_cap(workload, splits, model, blocking_factor)
        if cap <= incumbent:
            return None
        probe = incumbent + _SCALE_TOLERANCE if incumbent > 0 else min(cap, 0.5 / base)
        probe = min(probe, cap)
        if not feasible(splits, probe):
            if incumbent > 0:
                return None
            # Incumbent is zero: find *any* feasible scale to seed from.
            scale = probe / 2
            while scale * base > 1e-4 and not feasible(splits, scale):
                scale /= 2
            if scale * base <= 1e-4:
                return None
            return _search_max_scale(lambda s: feasible(splits, s), hi=cap, lo=scale)
        return _search_max_scale(lambda s: feasible(splits, s), hi=cap, lo=probe)

    # Coarse grid over DP-set sizes, rate-balanced inner splits.
    if n <= 12:
        grid = list(range(n + 1))
    else:
        step = max(1, n // 10)
        grid = sorted(set(list(range(0, n + 1, step)) + [n]))
    best_scale = 0.0
    best_splits: Optional[Tuple[int, ...]] = None
    for r in grid:
        splits = balanced_splits(workload, dp_bands, r)
        result = evaluate(splits, best_scale)
        if result is not None and result > best_scale:
            best_scale = result
            best_splits = splits

    # Local refinement around the best DP-set size and inner splits.
    if best_splits is not None:
        candidates: List[Tuple[int, ...]] = []
        best_r = best_splits[-1]
        for dr in (-3, -2, -1, 1, 2, 3):
            r = best_r + dr
            if 0 <= r <= n:
                candidates.append(balanced_splits(workload, dp_bands, r))
        if dp_bands >= 2:
            inner = list(best_splits[:-1])
            for idx in range(len(inner)):
                for di in (-2, -1, 1, 2):
                    moved = list(best_splits)
                    moved[idx] = inner[idx] + di
                    if 0 <= moved[idx] and all(
                        moved[i] <= moved[i + 1] for i in range(len(moved) - 1)
                    ):
                        candidates.append(tuple(moved))
        for splits in candidates:
            result = evaluate(splits, best_scale)
            if result is not None and result > best_scale:
                best_scale = result
                best_splits = splits

    return BreakdownResult(policy, best_scale * base, best_scale, best_splits)


def breakdown_utilization(
    workload: Workload,
    policy: str,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
) -> BreakdownResult:
    """Maximum raw utilization at which ``workload`` stays feasible
    under ``policy`` (one of :data:`POLICIES`)."""
    if workload.utilization <= 0:
        return BreakdownResult(policy, 0.0, 0.0)
    if policy == "edf":
        return _edf_breakdown(workload, model, blocking_factor)
    if policy == "rm":
        return _rm_breakdown(workload, model, blocking_factor, heap=False)
    if policy == "rm-heap":
        return _rm_breakdown(workload, model, blocking_factor, heap=True)
    if policy.startswith("csd-"):
        return _csd_breakdown(workload, policy, model, blocking_factor)
    raise ValueError(f"unknown policy {policy!r}")


def best_csd_configuration(
    workload: Workload,
    model: OverheadModel = ZERO_OVERHEAD,
    max_queues: int = 6,
    blocking_factor: float = BLOCKING_FACTOR,
) -> Tuple[int, BreakdownResult]:
    """The Section 5.6 search: the best number of CSD queues.

    "For a given workload, the best number of queues and the best
    number of tasks per queue can be found through an exhaustive
    search."  Evaluates CSD-2 .. CSD-``max_queues`` (each with its own
    allocation search) and returns ``(x, result)`` for the x with the
    highest breakdown utilization.
    """
    if max_queues < 2:
        raise ValueError("CSD needs at least two queues")
    best_x = 2
    best: Optional[BreakdownResult] = None
    for x in range(2, max_queues + 1):
        result = breakdown_utilization(
            workload, f"csd-{x}", model, blocking_factor
        )
        if best is None or result.utilization > best.utilization:
            best = result
            best_x = x
    assert best is not None
    return best_x, best


@dataclass
class FigureSeries:
    """One figure's worth of breakdown-utilization data.

    ``values[policy]`` is the list of average breakdown utilizations
    (percent), one per entry of ``task_counts``.
    """

    task_counts: List[int]
    period_divisor: int
    workloads_per_point: int
    values: Dict[str, List[float]] = field(default_factory=dict)

    def rows(self) -> List[Tuple[int, Dict[str, float]]]:
        """Per-n rows for table rendering."""
        out = []
        for idx, n in enumerate(self.task_counts):
            out.append((n, {p: v[idx] for p, v in self.values.items()}))
        return out


def _figure_cell(args: Tuple) -> float:
    """One (task count, policy) cell of a figure: the average breakdown
    utilization in percent.

    Module-level (not a closure) so :func:`repro.perf.sweeps.parallel_map`
    can ship it to worker processes; each worker regenerates its
    workloads deterministically from the seed, so results are identical
    at any worker count.
    """
    n, policy, workloads_per_point, seed, period_divisor, model, blocking = args
    workloads = generate_base_workloads(n, workloads_per_point, seed=seed)
    if period_divisor != 1:
        workloads = [w.with_periods_divided(period_divisor) for w in workloads]
    total = 0.0
    for w in workloads:
        total += breakdown_utilization(w, policy, model, blocking).utilization
    return 100.0 * total / len(workloads)


def figure_series(
    task_counts: Sequence[int],
    policies: Sequence[str],
    workloads_per_point: int = 40,
    seed: int = 0,
    period_divisor: int = 1,
    model: Optional[OverheadModel] = None,
    blocking_factor: float = BLOCKING_FACTOR,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> FigureSeries:
    """Compute one of Figures 3-5.

    Args:
        task_counts: The x axis (the paper uses 5..50).
        policies: Which schedulers to include.
        workloads_per_point: Random workloads averaged per point (the
            paper uses 500; smaller values keep CI runtimes sane and
            the averages stable to within a percent or two).
        seed: Base RNG seed.
        period_divisor: 1 for Figure 3, 2 for Figure 4, 3 for Figure 5.
        model: Overhead model; default is the paper's MC68040 table.
        blocking_factor: Section 5.1 blocking multiplier.
        progress: Optional callback receiving progress strings.
        workers: Worker processes for the (n, policy) grid; ``None``
            honors ``REPRO_BENCH_WORKERS`` (default serial), ``0``
            means one per CPU.  Results are identical at any count.

    Returns:
        A :class:`FigureSeries` with average breakdown utilization in
        percent for each policy and task count.
    """
    from repro.perf.sweeps import parallel_map

    model = model if model is not None else OverheadModel()
    series = FigureSeries(
        task_counts=list(task_counts),
        period_divisor=period_divisor,
        workloads_per_point=workloads_per_point,
        values={p: [] for p in policies},
    )
    cells = [
        (n, policy, workloads_per_point, seed, period_divisor, model, blocking_factor)
        for n in task_counts
        for policy in policies
    ]
    averages = parallel_map(_figure_cell, cells, workers=workers)
    for cell, average in zip(cells, averages):
        n, policy = cell[0], cell[1]
        series.values[policy].append(average)
        if progress is not None:
            progress(f"n={n} {policy}: {average:.1f}%")
    return series
