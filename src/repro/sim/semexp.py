"""The semaphore overhead experiment (Section 6.4, Figure 11).

Reconstructs the paper's measurement scenario (Figure 6): a
low-priority thread T1 locks semaphore S and is inside the critical
section when an external event E wakes the high-priority thread T2,
whose next blocking call is ``acquire_sem(S)``.  The experiment
measures the kernel time attributable to the contended acquire/release
pair, as a function of the scheduler queue length (filler tasks pad
the queue; they stay blocked throughout).

Expected shapes (the paper's findings):

* DP (EDF) queue: both schemes grow linearly in the queue length
  (selection is an O(n) scan charged per context switch), but the
  standard scheme pays two context switches per pair and the EMERALDS
  scheme one, so the standard slope is twice the new slope; at queue
  length 15 the saving is ~11 us (28%).
* FP (RM) queue: the standard scheme's priority-inheritance steps are
  O(n) queue repositions, so its cost grows linearly; the EMERALDS
  scheme's place-holder swap is O(1) and the saved context switch makes
  the total *constant* (~29.4 us on the paper's hardware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel
from repro.core.rm import RMScheduler
from repro.kernel.kernel import Kernel
from repro.kernel.program import Acquire, Compute, Program, Release, Wait
from repro.timeunits import ms, seconds, us

__all__ = ["PairOverhead", "measure_pair_overhead", "figure11_series"]

#: Kernel-time categories attributed to the acquire/release pair.
_PAIR_CATEGORIES = ("sem", "pi", "sched", "context-switch", "syscall")


@dataclass
class PairOverhead:
    """Measured cost of one contended acquire/release pair."""

    queue: str
    scheme: str
    queue_length: int
    overhead_ns: int
    context_switches: int
    saved_switches: int


def _build_scenario(
    queue: str,
    scheme: str,
    queue_length: int,
    model: Optional[OverheadModel],
) -> Tuple[Kernel, int]:
    """Create the Figure 6 scenario with ``queue_length`` tasks on the
    relevant queue.  Returns the kernel and the time E fires."""
    model = model if model is not None else OverheadModel()
    if queue == "dp":
        scheduler = EDFScheduler(model)
    elif queue == "fp":
        scheduler = RMScheduler(model)
    else:
        raise ValueError("queue must be 'dp' or 'fp'")
    kernel = Kernel(scheduler, sem_scheme=scheme)
    kernel.create_semaphore("S")
    kernel.create_event("E")

    fillers = queue_length - 3
    if fillers < 0:
        raise ValueError("queue_length must be at least 3 (T1, T2, Tx)")

    # T2: highest priority; wakes on E, then locks S.
    kernel.create_thread(
        "T2",
        Program(
            [
                Wait("E"),
                Compute(us(5)),
                Acquire("S"),
                Compute(us(20)),
                Release("S"),
                # Tail compute separates the release from the job-end
                # block, so the measurement window can close cleanly.
                Compute(us(50)),
            ]
        ),
        period=seconds(1),
        deadline=ms(1),
    )
    # T1: lower priority; holds S across the E firing.
    kernel.create_thread(
        "T1",
        Program(
            [
                Acquire("S"),
                Compute(us(150)),
                Release("S"),
                Compute(us(10)),
            ]
        ),
        period=seconds(2),
        deadline=ms(5),
    )
    # Tx: unrelated lowest-priority work, running when E fires.
    kernel.create_thread(
        "Tx",
        Program([Compute(us(400))]),
        period=seconds(4),
        deadline=ms(20),
    )
    # Fillers: pad the queue; released far beyond the run horizon.
    for i in range(fillers):
        kernel.create_thread(
            f"fill{i}",
            Program([Compute(us(1))]),
            period=seconds(3) + i * 1_000,
            deadline=ms(10) + i * 1_000,
            phase=seconds(100),
        )

    return kernel, 0


def measure_pair_overhead(
    queue: str,
    scheme: str,
    queue_length: int,
    model: Optional[OverheadModel] = None,
) -> PairOverhead:
    """Measure one contended acquire/release pair.

    Runs the scenario until T1 is inside its critical section (S
    locked, T2 blocked on E), snapshots the kernel-time counters, fires
    E, then runs until T2 finishes and attributes the delta to the
    pair.
    """
    kernel, _ = _build_scenario(queue, scheme, queue_length, model)
    sem = kernel.semaphores["S"]
    cap = seconds(1)
    while not sem.locked and kernel.now < cap:
        kernel.run_for(us(10))
    if not sem.locked:
        raise RuntimeError(
            "scenario broken: S never got locked "
            f"(queue={queue}, scheme={scheme}, n={queue_length})"
        )
    before: Dict[str, int] = dict(kernel.trace.kernel_time)
    switches_before = kernel.trace.context_switches
    kernel.events_by_name["E"].signal(kernel)

    # The pair is complete once T2 has released S (the second release
    # overall: T1's, then T2's).  Ending the window there keeps T2's
    # job-end block/unblock costs out of the measurement, as the
    # paper's pair timing would.
    deadline = kernel.now + seconds(1)
    while sem.releases < 2 and kernel.now < deadline:
        kernel.run_for(us(2))
    if sem.releases < 2:
        raise RuntimeError("scenario broken: T2 never released S")

    after = kernel.trace.kernel_time
    overhead = sum(
        after.get(cat, 0) - before.get(cat, 0) for cat in _PAIR_CATEGORIES
    )
    if scheme == "standard":
        # The window starts at E, but the paper attributes only the
        # costs incurred *by the semaphore calls* to the pair.  Under
        # the standard scheme T2's wake-up at E (t_u + t_s + context
        # switch C1 of Figure 6) is caused by the event, not by the
        # semaphore, so it is excluded; under the EMERALDS scheme T2
        # never wakes at E -- release_sem performs the (single) wake-up,
        # which therefore *is* pair cost.
        model_ = kernel.model
        if queue == "dp":
            wake = (
                model_.edf_unblock(queue_length)
                + model_.edf_select(queue_length)
                + model_.context_switch_ns
            )
        else:
            wake = (
                model_.rm_unblock(queue_length)
                + model_.rm_select(queue_length)
                + model_.context_switch_ns
            )
        overhead -= wake
    saved = getattr(sem, "saved_switches", 0)
    return PairOverhead(
        queue=queue,
        scheme=scheme,
        queue_length=queue_length,
        overhead_ns=overhead,
        context_switches=kernel.trace.context_switches - switches_before,
        saved_switches=saved,
    )


def figure11_series(
    queue: str,
    lengths: Sequence[int] = tuple(range(3, 31)),
    model: Optional[OverheadModel] = None,
) -> List[Tuple[int, int, int]]:
    """Sweep queue lengths; returns ``(n, standard_ns, emeralds_ns)``
    rows -- the two curves of Figure 11 (``queue='dp'``) or the FP
    variant discussed at the end of Section 6.4 (``queue='fp'``)."""
    rows = []
    for n in lengths:
        std = measure_pair_overhead(queue, "standard", n, model)
        new = measure_pair_overhead(queue, "emeralds", n, model)
        rows.append((n, std.overhead_ns, new.overhead_ns))
    return rows
