"""Discrete-event engine: virtual clock and time-ordered event queue.

This is the substitute for the paper's 25 MHz MC68040: a deterministic
virtual timeline in integer nanoseconds.  The kernel advances the clock
as it charges primitive costs (kernel code runs with interrupts
effectively masked: events that come due while the kernel is charging
time are delivered at the next dispatch point, just as a real kernel
defers interrupts until it re-enables them).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

__all__ = ["VirtualClock", "EventQueue", "ScheduledEvent"]


class VirtualClock:
    """Monotonic virtual time in integer nanoseconds."""

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError(
                f"clock start must be non-negative (got {start})"
            )
        self._now = start

    @property
    def now(self) -> int:
        """Current virtual time (ns)."""
        return self._now

    def advance_to(self, time: int) -> None:
        """Jump forward to an absolute time."""
        if time < self._now:
            raise ValueError(f"clock cannot go backwards ({time} < {self._now})")
        self._now = time

    def advance_by(self, delta: int) -> None:
        """Move forward by a relative amount (used to charge costs)."""
        if delta < 0:
            raise ValueError(
                f"cannot charge negative time (got {delta} at {self._now})"
            )
        self._now += delta


class ScheduledEvent:
    """A pending event: fires ``action()`` at ``time``.

    Events are ordered by ``(time, sequence)``; the sequence number
    makes simultaneous events fire in scheduling order, keeping runs
    deterministic.  ``cancel()`` marks the event dead in place.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled")

    def __init__(self, time: int, sequence: int, action: Callable[[], None], label: str):
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent {self.label} @{self.time}{state}>"


class EventQueue:
    """Priority queue of :class:`ScheduledEvent` ordered by time."""

    def __init__(self):
        self._heap: List[ScheduledEvent] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        # Cancelled events can be buried below live ones, where _trim
        # cannot reach them; count only the live ones.
        self._trim()
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self, time: int, action: Callable[[], None], label: str = "event"
    ) -> ScheduledEvent:
        """Enqueue ``action`` to fire at absolute virtual time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative (got {time})")
        event = ScheduledEvent(time, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` when empty."""
        self._trim()
        return self._heap[0].time if self._heap else None

    def pop_due(self, now: int) -> Optional[ScheduledEvent]:
        """Pop the next live event with ``time <= now``, if any."""
        self._trim()
        if self._heap and self._heap[0].time <= now:
            return heapq.heappop(self._heap)
        return None

    def _trim(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
