"""Discrete-event engine: virtual clock and time-ordered event queue.

This is the substitute for the paper's 25 MHz MC68040: a deterministic
virtual timeline in integer nanoseconds.  The kernel advances the clock
as it charges primitive costs (kernel code runs with interrupts
effectively masked: events that come due while the kernel is charging
time are delivered at the next dispatch point, just as a real kernel
defers interrupts until it re-enables them).

The queue stores ``(time, sequence, event)`` tuples so heap sifting
compares machine integers instead of calling back into Python, and it
keeps live/cancelled bookkeeping incrementally: ``len()`` is O(1) and
cancelled entries are compacted away once they dominate the heap
instead of being rescanned on every query.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["VirtualClock", "EventQueue", "ScheduledEvent"]

#: Compact the heap once at least this many cancelled entries are
#: buried in it *and* they outnumber the live ones.
_COMPACT_MIN_DEAD = 64


class VirtualClock:
    """Monotonic virtual time in integer nanoseconds.

    ``now`` is a plain attribute: the kernel reads it hundreds of
    thousands of times per simulated second, and a property costs a
    Python call each time.  Use :meth:`advance_to`/:meth:`advance_by`
    to move it -- they enforce monotonicity.
    """

    __slots__ = ("now",)

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError(
                f"clock start must be non-negative (got {start})"
            )
        self.now = start

    def advance_to(self, time: int) -> None:
        """Jump forward to an absolute time."""
        if time < self.now:
            raise ValueError(f"clock cannot go backwards ({time} < {self.now})")
        self.now = time

    def advance_by(self, delta: int) -> None:
        """Move forward by a relative amount (used to charge costs)."""
        if delta < 0:
            raise ValueError(
                f"cannot charge negative time (got {delta} at {self.now})"
            )
        self.now += delta


class ScheduledEvent:
    """A pending event: fires ``action()`` at ``time``.

    Events are ordered by ``(time, sequence)``; the sequence number
    makes simultaneous events fire in scheduling order, keeping runs
    deterministic.  ``cancel()`` marks the event dead in place.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled", "_queue")

    def __init__(self, time: int, sequence: int, action: Callable[[], None], label: str):
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent the event from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            queue._dead += 1
            # A cancel-heavy queue that stops scheduling would never
            # hit the schedule()-side trigger and peek_time() would
            # degrade to scanning dead heads -- compact from here too.
            if queue._dead >= _COMPACT_MIN_DEAD and queue._dead > queue._live:
                queue._compact()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent {self.label} @{self.time}{state}>"


class EventQueue:
    """Priority queue of :class:`ScheduledEvent` ordered by time."""

    __slots__ = ("_heap", "_sequence", "_live", "_dead")

    def __init__(self):
        self._heap: List[Tuple[int, int, ScheduledEvent]] = []
        self._sequence = 0
        #: Live (scheduled, not cancelled, not popped) events.
        self._live = 0
        #: Cancelled events still buried in the heap.
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def schedule(
        self, time: int, action: Callable[[], None], label: str = "event"
    ) -> ScheduledEvent:
        """Enqueue ``action`` to fire at absolute virtual time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative (got {time})")
        self._sequence += 1
        event = ScheduledEvent(time, self._sequence, action, label)
        event._queue = self
        heapq.heappush(self._heap, (time, self._sequence, event))
        self._live += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                entry[2]._queue = None
                self._dead -= 1
                continue
            return entry[0]
        return None

    def next_event_time(self) -> Optional[int]:
        """Earliest pending event time, or ``None`` when the queue is
        empty -- the peek the cluster's adaptive conservative
        synchronization builds on (same contract as
        :meth:`peek_time`; cancelled heads are trimmed in passing)."""
        return self.peek_time()

    def pop_due(self, now: int) -> Optional[ScheduledEvent]:
        """Pop the next live event with ``time <= now``, if any."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                event._queue = None
                self._dead -= 1
                continue
            if entry[0] <= now:
                heapq.heappop(heap)
                event._queue = None
                self._live -= 1
                return event
            return None
        return None

    def _compact(self) -> None:
        """Rebuild the heap without the cancelled entries.

        Dropped entries are unlinked from the queue (``_queue = None``,
        like the pop/peek trims do), so a compacted-away event no
        longer pins the queue and its closures alive.
        """
        live = []
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2]._queue = None
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._dead = 0
