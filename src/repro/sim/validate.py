"""Cross-validation: analytic schedulability vs the live kernel.

The breakdown-utilization figures are computed analytically (the
paper's own methodology -- its schedulability test [36] includes the
Table 1 run-time overheads).  This module closes the loop: it takes an
analytic breakdown result, scales the workload to just inside the
breakdown point, runs it on the *live kernel* (which charges the same
overheads operationally, through actual blocks/unblocks/selections and
context switches), and checks that no deadline is missed.

The analytic tests are *sufficient* conditions, so feasible-side
agreement is a soundness requirement: an analytic "feasible" that
misses deadlines in simulation would be a real bug.  The converse
(analytic "infeasible" that simulates cleanly) is legitimate
pessimism, which :func:`validate_breakdown` reports but does not
fail on.

Two sources of model/operational mismatch are accounted for:

* the analytic model charges the *worst-case* selection cost on every
  scheduler invocation, while the kernel charges the cost of the queue
  actually parsed -- the kernel is never more expensive;
* the analytic 1.5x blocking factor covers extra blocking system
  calls; the pure-compute simulation bodies make exactly one
  block/unblock per period, again never more expensive.  Validation
  therefore uses ``blocking_factor=1.0`` for a like-for-like check by
  default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.overhead import OverheadModel
from repro.core.task import Workload
from repro.sim.breakdown import breakdown_utilization
from repro.sim.kernelsim import hyperperiod, simulate_workload

__all__ = ["ValidationResult", "validate_breakdown"]

#: Default virtual-time horizon cap for validation runs (ns).
DEFAULT_HORIZON_CAP = 3_000_000_000


@dataclass
class ValidationResult:
    """Outcome of one analytic-vs-simulation check."""

    policy: str
    breakdown_utilization: float
    feasible_scale_tested: float
    feasible_side_clean: bool
    violations: int
    horizon_ns: int

    @property
    def sound(self) -> bool:
        """True when the analytic feasible claim held operationally."""
        return self.feasible_side_clean


def validate_breakdown(
    workload: Workload,
    policy: str,
    model: Optional[OverheadModel] = None,
    margin: float = 0.02,
    blocking_factor: float = 1.0,
    horizon_cap: int = DEFAULT_HORIZON_CAP,
) -> ValidationResult:
    """Check an analytic breakdown result against the live kernel.

    Args:
        workload: The task set.
        policy: Scheduling policy name (see breakdown.POLICIES).
        model: Overhead model (default: the paper's).
        margin: Relative step inside the breakdown scale to test
            (2% by default: comfortably feasible analytically).
        blocking_factor: Per-period blocking multiplier used for the
            analysis (1.0 matches the simulation bodies; the paper's
            1.5 adds analytic headroom).
        horizon_cap: Simulation length cap in ns.

    Returns:
        A :class:`ValidationResult`; ``sound`` must be True.
    """
    model = model if model is not None else OverheadModel()
    result = breakdown_utilization(
        workload, policy, model, blocking_factor=blocking_factor
    )
    scale = result.scale * (1.0 - margin)
    scaled = workload.scaled(scale)
    horizon = min(hyperperiod(scaled), horizon_cap)
    kernel, trace = simulate_workload(
        scaled,
        policy,
        duration=horizon,
        model=model,
        splits=result.splits,
        record_segments=False,
        stop_on_deadline_miss=True,
    )
    violations = len(trace.deadline_violations(kernel.now))
    return ValidationResult(
        policy=policy,
        breakdown_utilization=result.utilization,
        feasible_scale_tested=scale,
        feasible_side_clean=violations == 0 and kernel.now >= horizon,
        violations=violations,
        horizon_ns=horizon,
    )
