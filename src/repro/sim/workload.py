"""Random workload generation for the Section 5.7 experiments.

"To mimic the mix of short and long period tasks expected in real-time
embedded systems, we generate the base task workloads by randomly
selecting task periods such that each period has an equal probability
of being single-digit (5-9 ms), double-digit (10-99 ms), or three-digit
(100-999 ms)."

Execution times are drawn as random fractions of the period; their
absolute scale is irrelevant because the breakdown-utilization
procedure rescales them anyway (Section 5.7).  Every quantity is
rounded to whole microseconds so virtual time stays integral.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.task import TaskSpec, Workload
from repro.timeunits import ms, us

__all__ = ["generate_workload", "generate_base_workloads", "PERIOD_CLASSES_MS"]

#: The three period classes of Section 5.7, inclusive millisecond ranges.
PERIOD_CLASSES_MS = ((5, 9), (10, 99), (100, 999))


def generate_workload(
    n: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    utilization: float = 0.5,
    blocking_calls: bool = True,
) -> Workload:
    """Generate one random workload of ``n`` periodic tasks.

    Args:
        n: Number of tasks.
        rng: Random source; alternatively pass ``seed``.
        seed: Convenience seed when ``rng`` is not given.
        utilization: Target raw utilization; individual task
            utilizations are drawn uniformly and normalized to this.
            The breakdown search rescales execution times, so this only
            sets the starting point.
        blocking_calls: When True, half of the tasks are marked as
            making one extra blocking call per period, matching the
            Section 5.1 assumption behind the 1.5 factor.

    Returns:
        A :class:`~repro.core.task.Workload` in RM order.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if rng is None:
        rng = random.Random(seed)
    periods_ns: List[int] = []
    for _ in range(n):
        lo, hi = PERIOD_CLASSES_MS[rng.randrange(len(PERIOD_CLASSES_MS))]
        periods_ns.append(ms(rng.randint(lo, hi)))

    shares = [rng.uniform(0.1, 1.0) for _ in range(n)]
    total_share = sum(shares)
    tasks = []
    for i, (period, share) in enumerate(zip(periods_ns, shares)):
        task_utilization = utilization * share / total_share
        wcet = us(max(1, round(task_utilization * period / 1_000)))
        tasks.append(
            TaskSpec(
                name=f"t{i}",
                period=period,
                wcet=min(wcet, period),
                blocking_calls=1 if blocking_calls and i % 2 == 0 else 0,
            )
        )
    return Workload(tasks)


def generate_base_workloads(
    n: int, count: int, seed: int = 0, utilization: float = 0.5
) -> List[Workload]:
    """Generate ``count`` independent base workloads of ``n`` tasks.

    Each workload uses a sub-seed derived from ``seed`` so individual
    workloads are reproducible regardless of how many are requested.
    """
    return [
        generate_workload(n, seed=seed * 1_000_003 + k, utilization=utilization)
        for k in range(count)
    ]
