"""Simulation substrate: event engine, workloads, experiments, traces."""

from repro.sim.breakdown import (
    BreakdownResult,
    FigureSeries,
    best_csd_configuration,
    breakdown_utilization,
    figure_series,
)
from repro.sim.workload import generate_base_workloads, generate_workload

__all__ = [
    "BreakdownResult",
    "FigureSeries",
    "best_csd_configuration",
    "breakdown_utilization",
    "figure_series",
    "generate_base_workloads",
    "generate_workload",
]
