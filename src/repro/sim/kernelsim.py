"""Bridge from analytic workloads to live kernel simulations.

Builds a kernel whose threads execute ``Compute(c_i)`` once per period
under a chosen scheduling policy, so analytic results (schedulability,
breakdown utilization) can be cross-validated against what the kernel
actually does -- and so Figure 2's trace can be regenerated from a
real schedule rather than re-drawn.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.csd import CSDScheduler
from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel
from repro.core.rm import RMHeapScheduler, RMScheduler
from repro.core.scheduler import Scheduler
from repro.core.schedulability import band_sizes_from_splits
from repro.core.task import Workload
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program
from repro.sim.trace import Trace

__all__ = ["make_scheduler", "build_kernel", "simulate_workload", "hyperperiod"]


def make_scheduler(
    policy: str,
    model: Optional[OverheadModel] = None,
    splits: Optional[Sequence[int]] = None,
) -> Scheduler:
    """Instantiate a scheduler by policy name (see
    :data:`repro.sim.breakdown.POLICIES`)."""
    model = model if model is not None else OverheadModel()
    if policy == "edf":
        return EDFScheduler(model)
    if policy in ("rm", "dm"):
        return RMScheduler(model)
    if policy == "rm-heap":
        return RMHeapScheduler(model)
    if policy.startswith("csd-"):
        x = int(policy.split("-", 1)[1])
        if x < 2:
            raise ValueError("CSD needs at least two queues")
        return CSDScheduler(model, dp_queue_count=x - 1)
    raise ValueError(f"unknown policy {policy!r}")


def build_kernel(
    workload: Workload,
    policy: str = "edf",
    model: Optional[OverheadModel] = None,
    splits: Optional[Sequence[int]] = None,
    record_segments: bool = True,
    stop_on_deadline_miss: bool = False,
    record: Optional[str] = None,
    max_trace_events: Optional[int] = None,
    obs: Optional[str] = None,
) -> Kernel:
    """Create a kernel running ``workload`` under ``policy``.

    For CSD policies, ``splits`` gives the queue allocation (cumulative
    split points in RM order, as in
    :func:`repro.core.schedulability.csd_schedulable`); everything past
    the last split lands on the FP queue.  ``record`` selects the trace
    recording mode (see :mod:`repro.sim.trace`), overriding the legacy
    ``record_segments`` switch when given.  ``obs`` attaches an
    observability collector in the named mode (``"counters"`` or
    ``"full"``; see :mod:`repro.obs.collector`) -- reach it afterwards
    as ``kernel.obs``.
    """
    scheduler = make_scheduler(policy, model, splits)
    kernel = Kernel(
        scheduler,
        record_segments=record_segments,
        stop_on_deadline_miss=stop_on_deadline_miss,
        record=record,
        max_trace_events=max_trace_events,
    )
    if obs is not None:
        from repro.obs.collector import ObsCollector

        ObsCollector(mode=obs).attach(kernel)
    queue_of = {}
    if policy.startswith("csd-"):
        if splits is None:
            raise ValueError("CSD simulation needs an explicit allocation")
        sizes = band_sizes_from_splits(len(workload), splits)
        index = 0
        for band, size in enumerate(sizes):
            for _ in range(size):
                queue_of[workload[index].name] = band
                index += 1
    for task in workload:
        kernel.create_thread(
            task.name,
            Program([Compute(task.wcet)]),
            period=task.period,
            deadline=task.deadline,
            phase=task.phase,
            csd_queue=queue_of.get(task.name),
            fp_policy="dm" if policy == "dm" else "rm",
        )
    return kernel


def hyperperiod(workload: Workload, cap: int = 10_000_000_000) -> int:
    """LCM of the task periods, capped (ns)."""
    import math

    value = 1
    for task in workload:
        value = value * task.period // math.gcd(value, task.period)
        if value > cap:
            return cap
    return value


def simulate_workload(
    workload: Workload,
    policy: str = "edf",
    duration: Optional[int] = None,
    model: Optional[OverheadModel] = None,
    splits: Optional[Sequence[int]] = None,
    record_segments: bool = True,
    stop_on_deadline_miss: bool = False,
    record: Optional[str] = None,
    max_trace_events: Optional[int] = None,
    obs: Optional[str] = None,
) -> Tuple[Kernel, Trace]:
    """Run ``workload`` and return the kernel plus its trace.

    With synchronous release and implicit deadlines, simulating one
    hyperperiod from the critical instant is decisive for feasibility,
    so that is the default duration (capped at 10 s of virtual time).
    """
    kernel = build_kernel(
        workload,
        policy,
        model,
        splits,
        record_segments=record_segments,
        stop_on_deadline_miss=stop_on_deadline_miss,
        record=record,
        max_trace_events=max_trace_events,
        obs=obs,
    )
    horizon = duration if duration is not None else hyperperiod(workload)
    trace = kernel.run_until(horizon)
    return kernel, trace
