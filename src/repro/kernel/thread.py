"""Kernel threads: TCBs binding a program to a schedulable entity.

A thread is the unit of scheduling (EMERALDS threads are
kernel-scheduled, Section 3).  Periodic threads re-execute their
program once per period and carry a deadline per job; aperiodic
threads are activated explicitly (by an interrupt handler or another
thread) and run their program once per activation.

The TCB inherits the scheduler-facing fields from
:class:`~repro.core.queues.Schedulable` (ready flag, priority keys,
deadlines) and adds program state, blocking state, and the Section 6
semaphore bookkeeping (held semaphores, the parser-inserted hint of
the blocking call the thread is currently suspended in, registry
membership).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.queues import Schedulable
from repro.core.task import TaskSpec
from repro.kernel.program import Program

if TYPE_CHECKING:
    from repro.kernel.process import Process

__all__ = ["Thread", "ThreadState"]


class ThreadState(enum.Enum):
    """Life-cycle states of a thread."""

    #: Created, waiting for its first release/activation.
    IDLE = "idle"
    #: Runnable (on its scheduler queue, ready flag set).
    READY = "ready"
    #: Currently executing on the (single) CPU.
    RUNNING = "running"
    #: Blocked in a system call (semaphore, event, mailbox, sleep...).
    BLOCKED = "blocked"


class Thread(Schedulable):
    """A kernel thread executing a :class:`Program`.

    Args:
        name: Unique thread name.
        program: The body to execute each activation.
        spec: Periodic parameters; ``None`` makes the thread aperiodic
            (activated via :meth:`repro.kernel.kernel.Kernel.activate`).
        process: Owning protection domain (may be ``None`` for
            kernel-test threads that never touch memory).
        priority: Explicit fixed-priority value for aperiodic threads;
            periodic threads derive their RM key from the period.
        relative_deadline: Deadline for aperiodic activations (ns after
            activation); defaults to no deadline.
        fp_policy: Fixed-priority assignment for periodic threads:
            ``"rm"`` (rate-monotonic, the default) or ``"dm"``
            (deadline-monotonic) -- Section 5.3 allows either for the
            FP queue.
    """

    __slots__ = (
        "spec",
        "program",
        "_ops",
        "_ops_len",
        "release_label",
        "process",
        "state",
        "pc",
        "remaining",
        "job_no",
        "release_time",
        "pending_releases",
        "relative_deadline",
        "blocked_on",
        "pending_hint",
        "held_sems",
        "registered_on",
        "parked_on",
        "inbox",
        "last_received",
        "last_read",
        "completed_jobs",
        "obs_dispatches",
        "obs_preemptions",
        "pi_donor_of",
        "op_started",
        "read_token",
        "period_hint",
        "suspended",
        "dead",
        "min_interarrival",
        "last_activation",
        "criticality",
        "budget_ns",
        "budget_action",
        "budget_fired",
        "job_exec_ns",
        "jobs_aborted",
        "miss_count",
        "max_restarts",
        "restart_backoff_ns",
        "restart_count",
        "restart_until",
    )

    def __init__(
        self,
        name: str,
        program: Program,
        spec: Optional[TaskSpec] = None,
        process: Optional["Process"] = None,
        priority: Optional[int] = None,
        relative_deadline: Optional[int] = None,
        fp_policy: str = "rm",
    ):
        if fp_policy not in ("rm", "dm"):
            raise ValueError(f"thread {name}: unknown fp_policy {fp_policy!r}")
        if spec is not None:
            key_field = spec.period if fp_policy == "rm" else spec.deadline
            base_key = (key_field, name)
        elif priority is not None:
            base_key = (priority, name)
        else:
            raise ValueError(
                f"thread {name}: aperiodic threads need an explicit priority"
            )
        super().__init__(name, base_key)
        self.spec = spec
        self.program = program
        # Programs are immutable; cache the op tuple and its length so
        # current_op() is two attribute reads, not a __len__/__getitem__
        # protocol round-trip per step.
        self._ops = program.ops
        self._ops_len = len(self._ops)
        #: Event label for this thread's periodic releases (built once;
        #: releases are scheduled once per period per thread).
        self.release_label = f"release:{name}"
        self.process = process
        if process is not None:
            process.threads.append(self)
        self.state = ThreadState.IDLE
        #: Program counter into ``program.ops``.
        self.pc = 0
        #: Remaining nanoseconds of the current Compute op.
        self.remaining = 0
        #: Number of the job currently executing (1-based).
        self.job_no = 0
        #: Nominal release time of the current job.
        self.release_time = 0
        #: Releases that arrived while a previous job was still running.
        self.pending_releases = 0
        if relative_deadline is not None:
            self.relative_deadline: Optional[int] = relative_deadline
        elif spec is not None:
            self.relative_deadline = spec.deadline
        else:
            self.relative_deadline = None
        #: What the thread is blocked in ("sem:mtx", "event:crank", ...).
        self.blocked_on: Optional[str] = None
        #: Semaphore hint carried by the blocking call the thread is
        #: suspended in (inserted by the code parser, Section 6.2.1).
        self.pending_hint: Optional[str] = None
        #: Semaphores currently held (acquisition order).
        self.held_sems: List[str] = []
        #: Pre-lock registry queues the thread is on (Section 6.3.1).
        self.registered_on: Set[str] = set()
        #: Semaphore this thread is parked on (hint check found the
        #: semaphore locked, so the unblock was suppressed).
        self.parked_on: Optional[str] = None
        #: Messages delivered while blocked in Recv.
        self.inbox: List[object] = []
        #: Payload of the last completed Recv.
        self.last_received: Optional[object] = None
        #: Value of the last completed StateRead.
        self.last_read: Optional[object] = None
        self.completed_jobs = 0
        #: Dispatch/preemption tallies, bumped by the dispatcher only
        #: while an observability collector is attached (TCB integer
        #: adds are the cheapest place to count per-task switches).
        self.obs_dispatches = 0
        self.obs_preemptions = 0
        #: Name of the thread currently acting as this thread's PI
        #: place-holder, if any (EMERALDS O(1) PI, Section 6.2).
        self.pi_donor_of: Optional[str] = None
        #: True when the current op began executing (multi-phase ops
        #: such as timed StateReads).
        self.op_started = False
        #: In-progress state-message read token.
        self.read_token: Optional[object] = None
        #: Semaphore hint for the implicit period-boundary block (the
        #: parser sets this when the body's first blocking-relevant op
        #: is an Acquire).
        self.period_hint: Optional[str] = None
        #: Suspended by ``Kernel.suspend_thread``; wake-ups are
        #: deferred until resume.
        self.suspended = False
        #: Killed by ``Kernel.kill_thread``; never scheduled again.
        self.dead = False
        #: Sporadic minimum inter-arrival time for aperiodic threads
        #: (ns); activations arriving sooner are rejected.
        self.min_interarrival: Optional[int] = None
        #: Time of the last accepted activation.
        self.last_activation: Optional[int] = None
        #: Overload-shedding rank (higher = more critical; releases of
        #: the least critical tasks go first when a CSD band overruns).
        self.criticality = 0
        #: Per-job execution-time budget (ns); ``None`` = unlimited.
        self.budget_ns: Optional[int] = None
        #: Enforcement action when the budget exhausts
        #: ("warn", "suspend_job", "kill", or "restart").
        self.budget_action = "warn"
        #: The budget already fired for the current job (warn once).
        self.budget_fired = False
        #: Execution time consumed by the current job (ns).
        self.job_exec_ns = 0
        #: Jobs abandoned by budget enforcement, crashes, or restarts.
        self.jobs_aborted = 0
        #: Deadline misses detected at miss time (armed checks).
        self.miss_count = 0
        #: Restart policy: ``None`` means a crash kills the thread for
        #: good; an integer bounds how many restarts are granted.
        self.max_restarts: Optional[int] = None
        #: Base back-off delay between restarts (doubles each time).
        self.restart_backoff_ns = 0
        #: Restarts consumed so far.
        self.restart_count = 0
        #: Releases before this time are skipped (restart back-off).
        self.restart_until: Optional[int] = None

    @property
    def periodic(self) -> bool:
        return self.spec is not None

    @property
    def period(self) -> Optional[int]:
        return self.spec.period if self.spec is not None else None

    def current_op(self):
        """The op at the program counter, or ``None`` past the end."""
        pc = self.pc
        if pc >= self._ops_len:
            return None
        return self._ops[pc]

    def start_job(self, release_time: int) -> None:
        """Reset program state for a new activation."""
        self.job_no += 1
        self.release_time = release_time
        self.pc = 0
        self.remaining = 0
        self.op_started = False
        self.read_token = None
        self.job_exec_ns = 0
        self.budget_fired = False
        if self.relative_deadline is not None:
            self.abs_deadline = release_time + self.relative_deadline
        else:
            self.abs_deadline = None
        self.rank_cache = None

    def __repr__(self) -> str:
        return (
            f"<Thread {self.name} {self.state.value} pc={self.pc} "
            f"job={self.job_no}>"
        )
