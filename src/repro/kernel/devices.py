"""Device models: the simulated hardware side of user-level drivers.

The paper's targets talk to sensors, actuators, and fieldbus networks
(Figure 1).  These device models stand in for that hardware: they
inject interrupts into the virtual timeline.  Driver *logic* runs in
user threads blocked on the per-vector interrupt events registered via
:meth:`~repro.kernel.interrupts.InterruptController.register_event_handler`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

__all__ = ["PeriodicDevice", "AperiodicDevice"]


class PeriodicDevice:
    """A device interrupting at a fixed rate (e.g. an ADC sample clock).

    Optional bounded jitter perturbs each arrival, modelling sensor
    clock drift; arrivals remain monotone.
    """

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        vector: int,
        period: int,
        phase: int = 0,
        jitter: int = 0,
        seed: int = 0,
    ):
        if period <= 0:
            raise ValueError("device period must be positive")
        if jitter < 0 or jitter >= period:
            raise ValueError("jitter must be in [0, period)")
        self._kernel = kernel
        self.name = name
        self.vector = vector
        self.period = period
        self.jitter = jitter
        self._rng = random.Random(seed)
        self.interrupts_raised = 0
        self._next_nominal = kernel.now + phase
        self._schedule_next()

    def _schedule_next(self) -> None:
        offset = self._rng.randint(0, self.jitter) if self.jitter else 0
        fire_at = self._next_nominal + offset

        def fire() -> None:
            self.interrupts_raised += 1
            self._kernel.interrupts._dispatch(self.vector)
            self._next_nominal += self.period
            self._schedule_next()

        self._kernel.schedule_event(fire_at, fire, label=f"dev:{self.name}")


class AperiodicDevice:
    """A device with sporadic arrivals (e.g. an operator button, a
    fieldbus frame).

    Arrivals come either from an explicit list of absolute times or
    from an exponential process with the given mean inter-arrival time
    and a minimum separation (the sporadic model real-time analysis
    assumes).
    """

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        vector: int,
        arrivals: Optional[Iterable[int]] = None,
        mean_interarrival: Optional[int] = None,
        min_interarrival: int = 0,
        seed: int = 0,
        horizon: Optional[int] = None,
    ):
        self._kernel = kernel
        self.name = name
        self.vector = vector
        self.interrupts_raised = 0
        if (arrivals is None) == (mean_interarrival is None):
            raise ValueError("pass exactly one of arrivals / mean_interarrival")
        if arrivals is not None:
            times: List[int] = sorted(arrivals)
            for t in times:
                self._schedule_at(t)
        else:
            assert mean_interarrival is not None
            if mean_interarrival <= 0:
                raise ValueError("mean inter-arrival must be positive")
            rng = random.Random(seed)
            t = kernel.now
            end = horizon if horizon is not None else kernel.now + 100 * mean_interarrival
            while True:
                gap = max(min_interarrival, round(rng.expovariate(1.0 / mean_interarrival)))
                t += max(1, gap)
                if t > end:
                    break
                self._schedule_at(t)

    def _schedule_at(self, time: int) -> None:
        def fire() -> None:
            self.interrupts_raised += 1
            self._kernel.interrupts._dispatch(self.vector)

        self._kernel.schedule_event(time, fire, label=f"dev:{self.name}")
