"""Memory-footprint accounting for the small-memory budget.

The paper's whole premise is 32-128 KB of on-chip memory (Section 2),
with the kernel itself fitting in 13 KB of code.  We cannot
meaningfully reproduce *code* size in Python, but the *data* side of
the budget -- what the kernel's objects cost in RAM on the modeled
target -- is well defined and worth accounting: TCBs and stacks,
scheduler queues, semaphores, mailbox buffers, state-message slots,
shared memory, and timers.

Per-object costs default to figures representative of a 32-bit
microcontroller kernel of the era (a TCB around 128 bytes, 512-byte
minimum stacks, 8-byte queue nodes...).  They are all parameters of
:class:`FootprintModel`, so a port can re-cost them.

:func:`kernel_footprint` walks a live kernel and produces an itemized
:class:`FootprintReport`; :meth:`FootprintReport.fits` answers the
question that matters on these parts: does the configuration fit the
budget?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

__all__ = ["FootprintModel", "FootprintReport", "kernel_footprint", "KERNEL_CODE_BYTES"]

#: The paper's measured kernel code size on the MC68040 (Section 3):
#: "a rich set of OS services in just 13 kbytes of code".
KERNEL_CODE_BYTES = 13 * 1024


@dataclass(frozen=True)
class FootprintModel:
    """Per-object RAM costs (bytes) on the modeled target."""

    tcb_bytes: int = 128
    stack_bytes: int = 512
    queue_node_bytes: int = 8
    semaphore_bytes: int = 32
    event_bytes: int = 16
    condvar_bytes: int = 24
    mailbox_header_bytes: int = 48
    channel_slot_header_bytes: int = 8
    timer_bytes: int = 24
    process_bytes: int = 64
    region_descriptor_bytes: int = 16
    state_value_bytes: int = 8


@dataclass
class FootprintReport:
    """Itemized RAM usage of one kernel configuration."""

    items: List[Tuple[str, int]] = field(default_factory=list)
    code_bytes: int = KERNEL_CODE_BYTES

    def add(self, label: str, size: int) -> None:
        """Record one itemized cost ("category:name", bytes)."""
        self.items.append((label, size))

    @property
    def data_bytes(self) -> int:
        """Total RAM consumed by kernel objects."""
        return sum(size for _, size in self.items)

    @property
    def total_bytes(self) -> int:
        """Code plus data."""
        return self.code_bytes + self.data_bytes

    def fits(self, budget_bytes: int) -> bool:
        """Does code + data fit the part's memory?"""
        return self.total_bytes <= budget_bytes

    def by_category(self) -> Dict[str, int]:
        """Aggregate items by their category prefix ("threads", ...)."""
        out: Dict[str, int] = {}
        for label, size in self.items:
            category = label.split(":", 1)[0]
            out[category] = out.get(category, 0) + size
        return out

    def render(self) -> str:
        """Human-readable per-category summary."""
        lines = [f"kernel code: {self.code_bytes} B (paper: 13 KB on MC68040)"]
        for category, size in sorted(self.by_category().items()):
            lines.append(f"{category}: {size} B")
        lines.append(f"total: {self.total_bytes} B")
        return "\n".join(lines)


def kernel_footprint(
    kernel: "Kernel", model: FootprintModel = FootprintModel()
) -> FootprintReport:
    """Account the RAM every object of ``kernel`` would occupy."""
    report = FootprintReport()
    for name, thread in kernel.threads.items():
        report.add(f"threads:{name}", model.tcb_bytes + model.stack_bytes)
    # Scheduler queue nodes: one per task per queue membership.
    queue_nodes = sum(kernel.scheduler.queue_lengths())
    report.add("scheduler:queues", queue_nodes * model.queue_node_bytes)
    for name, sem in kernel.semaphores.items():
        report.add(f"sync:{name}", model.semaphore_bytes)
    for name in kernel.events_by_name:
        report.add(f"sync:{name}", model.event_bytes)
    for name in kernel.condvars:
        report.add(f"sync:{name}", model.condvar_bytes)
    for name, mbox in kernel.mailboxes.items():
        report.add(
            f"ipc:{name}",
            model.mailbox_header_bytes + mbox.capacity * mbox.max_message_size,
        )
    for name, channel in kernel.channels.items():
        report.add(
            f"ipc:{name}",
            channel.slots
            * (model.channel_slot_header_bytes + model.state_value_bytes),
        )
    for name, shm in kernel.shared_memory.items():
        report.add(f"ipc:{name}", shm.size)
    for name in kernel.timers:
        report.add(f"timers:{name}", model.timer_bytes)
    for name, process in kernel.processes.items():
        report.add(
            f"processes:{name}",
            model.process_bytes
            + len(process.memory) * model.region_descriptor_bytes,
        )
    return report
