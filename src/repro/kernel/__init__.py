"""The microkernel substrate: threads, dispatch, IRQs, memory, devices."""

from repro.kernel.clock import Timer
from repro.kernel.devices import AperiodicDevice, PeriodicDevice
from repro.kernel.footprint import FootprintModel, FootprintReport, kernel_footprint
from repro.kernel.interrupts import InterruptController
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.kevent import KernelEvent
from repro.kernel.memory import MemoryMap, ProtectionFault, Region
from repro.kernel.process import AddressSpaceAllocator, Process
from repro.kernel.program import (
    Acquire,
    Call,
    Compute,
    CvBroadcast,
    CvSignal,
    CvWait,
    Op,
    Program,
    Recv,
    Release,
    Send,
    Signal,
    Sleep,
    StateRead,
    StateWrite,
    Wait,
)
from repro.kernel.syscalls import Syscalls
from repro.kernel.thread import Thread, ThreadState

__all__ = [
    "Acquire",
    "AddressSpaceAllocator",
    "AperiodicDevice",
    "Call",
    "Compute",
    "CvBroadcast",
    "CvSignal",
    "CvWait",
    "FootprintModel",
    "FootprintReport",
    "InterruptController",
    "Kernel",
    "KernelError",
    "KernelEvent",
    "MemoryMap",
    "Op",
    "PeriodicDevice",
    "Process",
    "Program",
    "ProtectionFault",
    "Recv",
    "Region",
    "Release",
    "Send",
    "Signal",
    "Sleep",
    "StateRead",
    "StateWrite",
    "Syscalls",
    "Thread",
    "ThreadState",
    "Timer",
    "Wait",
    "kernel_footprint",
]
