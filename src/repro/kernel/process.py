"""Processes: protection domains owning memory maps and threads.

EMERALDS is a microkernel with multi-threaded user processes
(Section 3, Figure 1): threads are scheduled by the kernel, while the
process provides the protection boundary.  A default allocator carves
regions out of the flat on-chip address space, reflecting the paper's
in-memory, no-virtual-memory target (32-128 KB of RAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.memory import MemoryMap, Region

__all__ = ["Process", "AddressSpaceAllocator"]

#: Default simulated physical memory size: 128 KB, the top of the
#: paper's target range.
DEFAULT_MEMORY_BYTES = 128 * 1024


class AddressSpaceAllocator:
    """Bump allocator for the flat physical address space.

    Small-memory systems lay memory out statically at build time; this
    allocator stands in for the linker.
    """

    def __init__(self, total_bytes: int = DEFAULT_MEMORY_BYTES):
        if total_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.total_bytes = total_bytes
        self._next = 0

    @property
    def used_bytes(self) -> int:
        return self._next

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self._next

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if self._next + size > self.total_bytes:
            raise MemoryError(
                f"out of simulated memory: need {size}, have {self.free_bytes}"
            )
        base = self._next
        self._next += size
        return base


class Process:
    """A protection domain: a named memory map plus member threads."""

    def __init__(self, name: str, allocator: Optional[AddressSpaceAllocator] = None):
        self.name = name
        self.memory = MemoryMap()
        self.threads: List[object] = []
        self._allocator = allocator

    def map_region(
        self,
        name: str,
        size: int,
        readable: bool = True,
        writable: bool = True,
        base: Optional[int] = None,
    ) -> Region:
        """Map a new region, allocating space when ``base`` is None."""
        if base is None:
            if self._allocator is None:
                raise ValueError(
                    f"process {self.name} has no allocator; pass an explicit base"
                )
            base = self._allocator.allocate(size)
        region = Region(name, base, size, readable=readable, writable=writable)
        self.memory.map(region)
        return region

    def __repr__(self) -> str:
        return (
            f"<Process {self.name}: {len(self.threads)} threads, "
            f"{len(self.memory)} regions>"
        )
