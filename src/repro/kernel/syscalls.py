"""User-facing system call interface.

EMERALDS optimizes the user/kernel transition: "user threads enter
protected kernel mode to simply call kernel procedures, simplifying
interfaces" (Section 4).  This facade is that interface: every call
charges one (configurable) syscall entry and is counted per name, so
experiments can quantify trap overhead (the ``syscall_ns`` knob of the
overhead model).

Thread programs normally use ops directly; this interface serves
``Call`` op bodies, interrupt handlers, and example code that drives
the kernel imperatively.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["Syscalls"]


class Syscalls:
    """Per-kernel system call dispatcher with call accounting."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.counts: Counter = Counter()

    def _enter(self, name: str) -> "Kernel":
        kernel = self._kernel
        self.counts[name] += 1
        kernel.syscall_count += 1
        kernel.charge(kernel.model.syscall_ns, "syscall")
        return kernel

    # ------------------------------------------------------------------
    # clock services
    # ------------------------------------------------------------------
    def get_time(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._enter("get_time").now

    # ------------------------------------------------------------------
    # events and activation
    # ------------------------------------------------------------------
    def signal_event(self, name: str) -> int:
        """Signal a kernel event; returns the number of threads woken."""
        kernel = self._enter("signal_event")
        return kernel.events_by_name[name].signal(kernel)

    def activate_thread(self, name: str) -> None:
        """Activate an aperiodic thread."""
        self._enter("activate_thread").activate(name)

    # ------------------------------------------------------------------
    # state messages (user-level: *no* trap charged -- that is the
    # whole point of the mechanism; provided here for ISR use)
    # ------------------------------------------------------------------
    def state_write(self, channel: str, value: Any, writer: Optional[str] = None) -> None:
        """Publish a value on a state channel (no kernel trap)."""
        kernel = self._kernel
        self.counts["state_write"] += 1
        kernel.charge(kernel.model.state_msg_write_ns, "state-msg")
        kernel.channels[channel].write(value, writer_name=writer)

    def state_read(self, channel: str) -> Any:
        """Read the latest value of a state channel (no kernel trap)."""
        kernel = self._kernel
        self.counts["state_read"] += 1
        kernel.charge(kernel.model.state_msg_read_ns, "state-msg")
        return kernel.channels[channel].read()

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------
    def raise_interrupt(self, vector: int) -> None:
        """Software interrupt injection."""
        self._enter("raise_interrupt").interrupts.raise_interrupt(vector)
