"""Thread programs: declarative operation lists.

EMERALDS applications are compiled C/C++; their structure (which
semaphore each ``acquire_sem()`` call locks, which blocking call
precedes it) is visible to the static code parser of Section 6.2.1.
Our substitute is a *declarative program*: each thread's body is a
sequence of operations the kernel interprets.  Because the body is
data, the code parser (:mod:`repro.sync.parser`) can perform the same
rewrite the paper's parser does -- annotate the blocking call that
precedes each ``Acquire`` with the semaphore identifier.

A periodic thread executes its body once per period; the implicit
block/unblock at the period boundary (Section 5.1) is provided by the
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

__all__ = [
    "Op",
    "Compute",
    "Acquire",
    "Release",
    "Wait",
    "Signal",
    "Send",
    "Recv",
    "CvWait",
    "CvSignal",
    "CvBroadcast",
    "StateWrite",
    "StateRead",
    "Sleep",
    "Call",
    "Program",
]


class Op:
    """Base class for thread operations."""

    #: Ops that may block the calling thread ("blocking system calls").
    blocking = False


@dataclass
class Compute(Op):
    """Execute application code for ``duration`` ns (preemptible)."""

    duration: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("compute duration must be non-negative")


@dataclass
class Acquire(Op):
    """``acquire_sem()``: lock a semaphore, blocking if unavailable."""

    sem: str
    blocking = True


@dataclass
class Release(Op):
    """``release_sem()``: unlock a semaphore."""

    sem: str


@dataclass
class Wait(Op):
    """Block until a kernel event is signalled.

    ``hint`` names the semaphore the thread will lock next, the extra
    parameter the code parser of Section 6.2.1 inserts; ``None`` (the
    paper's ``-1``) means the next blocking call is not an acquire.
    """

    event: str
    hint: Optional[str] = None
    blocking = True


@dataclass
class Signal(Op):
    """Signal a kernel event, waking its waiters."""

    event: str


@dataclass
class Send(Op):
    """Send a message to a mailbox (blocks when the mailbox is full)."""

    mailbox: str
    size: int = 16
    payload: Any = None
    buffer: Optional[str] = None
    blocking = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("message size must be positive")


@dataclass
class Recv(Op):
    """Receive from a mailbox (blocks when empty).

    ``hint`` plays the same role as on :class:`Wait`: mailbox receive
    is a blocking call, so the code parser annotates it too.
    """

    mailbox: str
    buffer: Optional[str] = None
    hint: Optional[str] = None
    blocking = True


@dataclass
class CvWait(Op):
    """Wait on a condition variable, releasing ``mutex`` atomically."""

    condvar: str
    mutex: str
    blocking = True


@dataclass
class CvSignal(Op):
    """Wake one waiter of a condition variable."""

    condvar: str


@dataclass
class CvBroadcast(Op):
    """Wake every waiter of a condition variable."""

    condvar: str


@dataclass
class StateWrite(Op):
    """Publish a value to a state-message channel (never blocks)."""

    channel: str
    value: Any = None


@dataclass
class StateRead(Op):
    """Read the latest value of a state-message channel (never blocks).

    ``duration`` models the time spent copying the slot; a non-zero
    duration makes the read preemptible, which is what the slot-count
    rule of the state-message design protects against.
    """

    channel: str
    duration: int = 0


@dataclass
class Sleep(Op):
    """Block for a relative amount of virtual time."""

    duration: int
    hint: Optional[str] = None
    blocking = True

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("sleep duration must be non-negative")


@dataclass
class Call(Op):
    """Escape hatch: invoke ``fn(kernel, thread)`` as a system call.

    Used by examples and tests for behaviour the op set does not model
    (reading the clock into a variable, custom assertions...).  The
    call is charged one syscall entry.
    """

    fn: Callable[[Any, Any], None]
    label: str = "call"


class Program:
    """An immutable sequence of operations forming a thread body."""

    def __init__(self, ops: Sequence[Op]):
        for op in ops:
            if not isinstance(op, Op):
                raise TypeError(f"not an Op: {op!r}")
        self._ops: Tuple[Op, ...] = tuple(ops)

    @property
    def ops(self) -> Tuple[Op, ...]:
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index: int) -> Op:
        return self._ops[index]

    def __iter__(self):
        return iter(self._ops)

    def compute_total(self) -> int:
        """Total ``Compute`` time in the body (ns) -- the nominal c_i."""
        return sum(op.duration for op in self._ops if isinstance(op, Compute))

    def __repr__(self) -> str:
        return f"Program({len(self._ops)} ops, c={self.compute_total()}ns)"
