"""Kernel events: the primitive blocking/wake-up mechanism.

Threads block on events (``Wait``) and other threads or interrupt
handlers signal them (``Signal``).  This is the "event E" of the
Section 6 scenarios: the completion of some unrelated blocking call
that wakes a thread shortly before it locks a semaphore.

Semantics: ``signal`` wakes every current waiter; with no waiters the
signal is latched, and the next ``wait`` consumes the latch without
blocking (binary-event semantics, the common RTOS flavour).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["KernelEvent"]


class KernelEvent:
    """A latching broadcast event."""

    def __init__(self, name: str):
        self.name = name
        self.pending = False
        self.waiters: List["Thread"] = []
        # statistics
        self.signals = 0
        self.waits = 0

    def wait(self, kernel: "Kernel", thread: "Thread", hint=None) -> bool:
        """Block ``thread`` until signalled.

        Returns True when the wait was satisfied immediately (latched
        signal); False when the thread blocked.  ``hint`` is the
        parser-inserted semaphore identifier carried by this blocking
        call (Section 6.2.1).
        """
        self.waits += 1
        if self.pending:
            self.pending = False
            return True
        thread.pending_hint = hint
        self.waiters.append(thread)
        kernel.block_thread(thread, f"event:{self.name}")
        return False

    def signal(self, kernel: "Kernel") -> int:
        """Wake all waiters (or latch).  Returns the number woken."""
        self.signals += 1
        if not self.waiters:
            self.pending = True
            return 0
        woken = 0
        for waiter in sorted(self.waiters, key=kernel.priority_rank):
            self.waiters.remove(waiter)
            kernel.deliver_unblock(waiter)
            woken += 1
        return woken

    def __repr__(self) -> str:
        latch = " latched" if self.pending else ""
        return f"<KernelEvent {self.name}{latch}, {len(self.waiters)} waiting>"
