"""Memory regions and protection checks.

EMERALDS provides "full memory protection for threads" (Section 3)
without virtual memory: processes own statically mapped regions of the
single physical address space, and the kernel validates that IPC
buffers lie inside regions the caller has mapped with the right access.
We substitute the MMU with software checks over the same region
structures; the *validation logic* -- the part that belongs to the OS
-- is executed in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Region", "MemoryMap", "ProtectionFault"]


class ProtectionFault(Exception):
    """Raised when an access violates a process's memory map."""


@dataclass(frozen=True)
class Region:
    """One mapped region of the flat physical address space."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError(f"region {self.name}: invalid extent")

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True when ``[address, address+length)`` lies in the region."""
        return self.base <= address and address + length <= self.end

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions share any address."""
        return self.base < other.end and other.base < self.end


class MemoryMap:
    """The set of regions a process has mapped."""

    def __init__(self):
        self._regions: Dict[str, Region] = {}

    def __len__(self) -> int:
        return len(self._regions)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> List[Region]:
        """All mapped regions."""
        return list(self._regions.values())

    def map(self, region: Region) -> None:
        """Add a region; overlapping or duplicate names are rejected."""
        if region.name in self._regions:
            raise ValueError(f"region {region.name} already mapped")
        for existing in self._regions.values():
            if existing.overlaps(region):
                raise ValueError(
                    f"region {region.name} overlaps {existing.name}"
                )
        self._regions[region.name] = region

    def unmap(self, name: str) -> Region:
        """Remove and return a region by name."""
        if name not in self._regions:
            raise KeyError(f"region {name} is not mapped")
        return self._regions.pop(name)

    def region(self, name: str) -> Region:
        """Look a region up by name; faults when unmapped."""
        if name not in self._regions:
            raise ProtectionFault(f"region {name} is not mapped")
        return self._regions[name]

    def check_readable(self, name: str, length: int = 1) -> Region:
        """Validate a read of ``length`` bytes from the named region."""
        region = self.region(name)
        if not region.readable:
            raise ProtectionFault(f"region {name} is not readable")
        if length > region.size:
            raise ProtectionFault(
                f"read of {length} bytes exceeds region {name} ({region.size} bytes)"
            )
        return region

    def check_writable(self, name: str, length: int = 1) -> Region:
        """Validate a write of ``length`` bytes into the named region."""
        region = self.region(name)
        if not region.writable:
            raise ProtectionFault(f"region {name} is not writable")
        if length > region.size:
            raise ProtectionFault(
                f"write of {length} bytes exceeds region {name} ({region.size} bytes)"
            )
        return region

    def find(self, address: int) -> Optional[Region]:
        """Region containing ``address``, if any."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None
