"""Interrupt controller, ISRs, and user-level device driver support.

EMERALDS provides "highly optimized context switching and interrupt
handling" and "kernel support for user-level device drivers"
(Section 3).  The paper treats interrupt/timer overhead as dictated by
hardware, so our model charges a fixed entry cost per interrupt and
runs a short kernel-resident first-level handler; the bulk of driver
work happens in user threads that block on per-vector interrupt
events -- the user-level driver pattern of Figure 1.

Interrupts preempt application code but not kernel code: the
discrete-event engine delivers interrupts that arrive while the kernel
is charging time at the next dispatch point, which is exactly how a
kernel running with interrupts masked behaves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel

__all__ = ["InterruptController"]

#: First-level handler: runs in kernel context at interrupt time.
Handler = Callable[["Kernel", int], None]


class InterruptController:
    """Vector table plus dispatch statistics."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._handlers: Dict[int, Handler] = {}
        self._masked: Dict[int, bool] = {}
        #: Per-vector delivery counts.
        self.delivered: Dict[int, int] = {}
        self.dropped_masked = 0

    def register(self, vector: int, handler: Handler) -> None:
        """Install a first-level interrupt handler."""
        if vector < 0:
            raise ValueError("interrupt vector must be non-negative")
        self._handlers[vector] = handler
        self._masked.setdefault(vector, False)

    def register_event_handler(self, vector: int, event_name: str) -> None:
        """Install the user-level-driver pattern: the first-level
        handler just signals a kernel event that a driver thread waits
        on."""
        kernel = self._kernel
        if event_name not in kernel.events_by_name:
            kernel.create_event(event_name)

        def handler(k: "Kernel", _vector: int) -> None:
            k.events_by_name[event_name].signal(k)

        self.register(vector, handler)

    def mask(self, vector: int) -> None:
        """Disable delivery for a vector (interrupts are dropped)."""
        self._masked[vector] = True

    def unmask(self, vector: int) -> None:
        """Re-enable delivery for a vector."""
        self._masked[vector] = False

    def raise_interrupt(self, vector: int, at: Optional[int] = None) -> None:
        """Deliver (or schedule) an interrupt on ``vector``.

        With ``at=None`` the interrupt is queued for the current
        instant; otherwise it fires at the given virtual time.
        """
        kernel = self._kernel
        time = kernel.now if at is None else at

        def fire() -> None:
            self._dispatch(vector)

        kernel.schedule_event(time, fire, label=f"irq{vector}")

    def _dispatch(self, vector: int) -> None:
        kernel = self._kernel
        if self._masked.get(vector, False):
            self.dropped_masked += 1
            kernel.trace.note(kernel.now, "irq-masked", f"vector {vector}")
            return
        handler = self._handlers.get(vector)
        kernel.charge(kernel.model.interrupt_entry_ns, "interrupt")
        self.delivered[vector] = self.delivered.get(vector, 0) + 1
        kernel.trace.note(kernel.now, "irq", f"vector {vector}")
        if handler is not None:
            handler(kernel, vector)
        kernel.request_reschedule()
