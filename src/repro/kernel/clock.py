"""Clock services and software timers (Section 3, Figure 1).

The on-chip timer of the paper's targets (e.g. the 68332's TPU) is
modelled by the virtual clock; this module provides the kernel-level
services built on it: one-shot and periodic software timers whose
callbacks run in kernel context, and the time-of-day syscall.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.sim.engine import ScheduledEvent

__all__ = ["Timer"]


class Timer:
    """A software timer: fires a callback after ``interval`` ns.

    Periodic timers re-arm themselves after each firing.  Callbacks run
    in kernel context (they may signal events, activate threads, or
    raise interrupts, but must not block).
    """

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        interval: int,
        callback: Callable[["Kernel"], None],
        periodic: bool = False,
    ):
        if interval <= 0:
            raise ValueError("timer interval must be positive")
        self._kernel = kernel
        self.name = name
        self.interval = interval
        self.callback = callback
        self.periodic = periodic
        self.fires = 0
        self._armed: Optional["ScheduledEvent"] = None

    @property
    def armed(self) -> bool:
        return self._armed is not None and not self._armed.cancelled

    def start(self, delay: Optional[int] = None) -> None:
        """Arm the timer; first firing after ``delay`` (default: the
        interval)."""
        if self.armed:
            raise RuntimeError(f"timer {self.name} is already armed")
        first = self._kernel.now + (delay if delay is not None else self.interval)
        self._armed = self._kernel.schedule_event(
            first, self._fire, label=f"timer:{self.name}"
        )

    def cancel(self) -> None:
        """Disarm without firing."""
        if self._armed is not None:
            self._armed.cancel()
            self._armed = None

    def delay(self, extra_ns: int) -> None:
        """Push the next firing ``extra_ns`` later (timer-jitter fault).

        Models a disturbed hardware timer: the armed expiry slips by
        ``extra_ns`` without changing the nominal interval, so a
        periodic timer re-arms from the (late) firing instant.  No-op
        when the timer is not armed.
        """
        if extra_ns < 0:
            raise ValueError("timer delay must be non-negative")
        if not self.armed or extra_ns == 0:
            return
        when = self._armed.time + extra_ns
        self._armed.cancel()
        self._armed = self._kernel.schedule_event(
            when, self._fire, label=f"timer:{self.name}"
        )

    def _fire(self) -> None:
        self._armed = None
        self.fires += 1
        self.callback(self._kernel)
        if self.periodic:
            self._armed = self._kernel.schedule_event(
                self._kernel.now + self.interval, self._fire, label=f"timer:{self.name}"
            )
        self._kernel.request_reschedule()
