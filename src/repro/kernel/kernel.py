"""The EMERALDS kernel: dispatcher, op interpreter, and service registry.

This is the heart of the substrate: a uniprocessor microkernel running
over the discrete-event engine.  It owns

* the scheduler (any :class:`~repro.core.scheduler.Scheduler`:
  EDF, RM, RM-heap, or CSD-x),
* the service registries (semaphores, events, condition variables,
  mailboxes, state channels, shared memory, processes, timers),
* the interrupt controller, and
* the dispatcher, which charges every kernel primitive the cost the
  paper measured (Table 1 plus the Section 6.4 calibration) and
  accounts context switches.

Execution model: the kernel repeatedly (1) fires all due events
(releases, interrupts, timer expiries) -- each unblock invokes the
scheduler, exactly the ``t_u + t_s`` accounting of Section 5.1; (2)
dispatches the selected thread, charging a context switch if it
changed; (3) lets the running thread execute its current operation --
``Compute`` ops run preemptibly until the next event, kernel ops run
through the op interpreter, charging syscall entry and the service's
own costs.  Kernel charges advance virtual time with interrupts
effectively masked; events that come due meanwhile are delivered at
the next dispatch point.

The Section 6 semaphore scheme hooks in at one place:
:meth:`Kernel.deliver_unblock` performs the hint check of Figure 8
before making a thread ready, parking it on the semaphore when the
hint says its next lock attempt would block anyway.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel
from repro.core.scheduler import Scheduler
from repro.core.task import TaskSpec
from repro.ipc.mailbox import Mailbox
from repro.ipc.shared_memory import SharedMemory
from repro.ipc.state_message import StateChannel, TornRead
from repro.kernel import program as ops
from repro.kernel.clock import Timer
from repro.kernel.interrupts import InterruptController
from repro.kernel.kevent import KernelEvent
from repro.kernel.memory import ProtectionFault
from repro.kernel.process import AddressSpaceAllocator, Process
from repro.kernel.program import Program
from repro.kernel.thread import Thread, ThreadState
from repro.sim.engine import EventQueue, ScheduledEvent, VirtualClock
from repro.sim.trace import IDLE, KERNEL, Trace
from repro.sync.condvar import ConditionVariable
from repro.sync.emeralds_sem import EmeraldsSemaphore
from repro.sync.parser import held_across_blocking, insert_hints
from repro.sync.semaphore import StandardSemaphore

__all__ = ["Kernel", "KernelError"]


class KernelError(Exception):
    """Kernel misuse or internal inconsistency."""


class Kernel:
    """A simulated EMERALDS node.

    Args:
        scheduler: Scheduling policy; defaults to EDF with the paper's
            MC68040 overhead model.
        sem_scheme: ``"emeralds"`` (default) or ``"standard"`` --
            which semaphore implementation :meth:`create_semaphore`
            builds and whether the unblock-path hint check runs.
        auto_parse_hints: Run the Section 6.2.1 code parser over every
            program at thread-creation time (the paper's compile-time
            pass).
        record_segments: Keep full Gantt segments in the trace (turn
            off for long runs to save memory).  Legacy switch:
            ``False`` is shorthand for ``record="jobs-only"``.
        record: Trace recording mode (``"full"``, ``"jobs-only"``, or
            ``"off"``; see :mod:`repro.sim.trace`).  Overrides
            ``record_segments`` when given.
        max_trace_events: Ring-buffer cap on the trace event log
            (``None`` = unbounded).
        stop_on_deadline_miss: Abort the run at the first deadline
            violation (used by breakdown-by-simulation experiments).
        fault_policy: ``"kill"`` (default) terminates a thread that
            violates memory protection and keeps running -- the
            microkernel survives its applications; ``"raise"``
            propagates the fault to the caller (strict debugging).
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        sem_scheme: str = "emeralds",
        auto_parse_hints: bool = True,
        record_segments: bool = True,
        stop_on_deadline_miss: bool = False,
        fault_policy: str = "kill",
        record: Optional[str] = None,
        max_trace_events: Optional[int] = None,
    ):
        if sem_scheme not in ("emeralds", "standard"):
            raise ValueError(f"unknown semaphore scheme {sem_scheme!r}")
        if fault_policy not in ("kill", "raise"):
            raise ValueError(f"unknown fault policy {fault_policy!r}")
        self.scheduler = scheduler if scheduler is not None else EDFScheduler()
        # True when the scheduler class keeps the base admit-everything
        # policy; lets the per-release hot path skip the virtual call.
        self._admits_all = (
            type(self.scheduler).admit_release is Scheduler.admit_release
        )
        self.model: OverheadModel = self.scheduler.model
        self.sem_scheme = sem_scheme
        self.auto_parse_hints = auto_parse_hints
        self.stop_on_deadline_miss = stop_on_deadline_miss
        self.fault_policy = fault_policy

        self.clock = VirtualClock()
        self.events = EventQueue()
        self.trace = Trace(
            record_segments=record_segments,
            record=record,
            max_events=max_trace_events,
        )
        self.interrupts = InterruptController(self)
        self.allocator = AddressSpaceAllocator()

        self.threads: Dict[str, Thread] = {}
        self.processes: Dict[str, Process] = {}
        self.semaphores: Dict[str, StandardSemaphore] = {}
        self.events_by_name: Dict[str, KernelEvent] = {}
        self.condvars: Dict[str, ConditionVariable] = {}
        self.mailboxes: Dict[str, Mailbox] = {}
        self.channels: Dict[str, StateChannel] = {}
        self.shared_memory: Dict[str, SharedMemory] = {}
        self.timers: Dict[str, Timer] = {}

        self.running: Optional[Thread] = None
        #: Attached observability collector (``ObsCollector.attach``);
        #: None by default, so every hook site costs one attribute read
        #: and an ``is`` check when observation is off.
        self.obs = None
        #: Armed fault injector (set by ``FaultInjector.install``);
        #: consulted when a Compute op starts, to stretch its duration.
        self.fault_injector = None
        #: Deadline-miss handlers by thread name, fired *at* miss time.
        self._miss_handlers: Dict[str, Callable] = {}
        #: Semaphore names some program may hold across a blocking
        #: call (fed by the code parser; arms the 6.3.1 registry).
        self._held_across_blocking: set = set()
        self._need_resched = False
        self._stop = False
        #: Pending release events by thread name (cancelled on kill).
        self._release_events: Dict[str, ScheduledEvent] = {}
        self.syscall_count = 0
        #: Engine events fired (releases, interrupts, timers, checks).
        self.events_popped = 0
        #: Scheduler invocations through the dispatcher.
        self.dispatch_count = 0
        #: Exact-class dispatch table for the op interpreter (bound
        #: methods; built once per kernel, avoids the isinstance chain
        #: on every kernel op).
        self._op_handlers = {
            ops.Acquire: self._op_acquire,
            ops.Release: self._op_release,
            ops.Wait: self._op_wait,
            ops.Signal: self._op_signal,
            ops.Send: self._op_send,
            ops.Recv: self._op_recv,
            ops.CvWait: self._op_cv_wait,
            ops.CvSignal: self._op_cv_signal,
            ops.CvBroadcast: self._op_cv_broadcast,
            ops.StateWrite: self._op_state_write,
            ops.Sleep: self._op_sleep,
            ops.Call: self._op_call,
        }

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self.clock.now

    def charge(self, cost_ns: int, category: str) -> None:
        """Consume ``cost_ns`` of CPU in kernel mode.

        The trace bookkeeping (:meth:`repro.sim.trace.Trace.charge_kernel`)
        is inlined: this is the single most-called kernel function, and
        the extra call frame showed up as several percent of a run.
        """
        if cost_ns <= 0:
            return
        clock = self.clock
        start = clock.now
        end = start + cost_ns
        clock.now = end
        trace = self.trace
        kernel_time = trace.kernel_time
        kernel_time[category] = kernel_time.get(category, 0) + cost_ns
        trace.kernel_time_total += cost_ns
        if trace.record_segments:
            trace.add_segment(start, end, KERNEL)

    def schedule_event(
        self, time: int, action: Callable[[], None], label: str = "event"
    ) -> ScheduledEvent:
        """Enqueue a raw engine event (releases, interrupts, timers)."""
        now = self.clock.now
        return self.events.schedule(time if time > now else now, action, label)

    def next_event_time(self) -> Optional[int]:
        """Earliest instant at which this kernel has work to do.

        Returns the current clock time while a thread is mid-execution
        (the kernel is busy *now*; its future actions -- transmits,
        syscalls -- are not in the event queue), the next pending
        event's time when the node is idle, or ``None`` when it is
        fully quiescent (no runnable thread, no pending events): such
        a node cannot act again until outside work -- a delivery, an
        interrupt -- is scheduled into it.  This is the per-node peek
        the cluster's adaptive conservative synchronization takes the
        minimum over.
        """
        if self.running is not None or self._need_resched:
            return self.clock.now
        return self.events.peek_time()

    def request_reschedule(self) -> None:
        """Ask the dispatcher to re-evaluate after the current step."""
        self._need_resched = True

    def priority_rank(self, thread: Thread) -> Tuple:
        """Urgency order used outside the scheduler queues (see
        :meth:`repro.core.scheduler.Scheduler.priority_rank`).

        Memoized per thread: every site that changes a thread's urgency
        (job start/retire, priority inheritance) invalidates the cached
        rank, so the semaphore/mailbox/condvar tie-break paths pay a
        dict-free attribute read instead of recomputing the tuple.
        """
        rank = thread.rank_cache
        if rank is None:
            rank = self.scheduler.priority_rank(thread)
            thread.rank_cache = rank
        return rank

    # ------------------------------------------------------------------
    # object creation
    # ------------------------------------------------------------------
    def create_process(self, name: str) -> Process:
        """Create a protection domain backed by the node allocator."""
        if name in self.processes:
            raise KernelError(f"process {name} already exists")
        process = Process(name, allocator=self.allocator)
        self.processes[name] = process
        return process

    def create_thread(
        self,
        name: str,
        body: Program,
        period: Optional[int] = None,
        deadline: Optional[int] = None,
        phase: int = 0,
        process: Optional[Process] = None,
        priority: Optional[int] = None,
        csd_queue: Optional[int] = None,
        fp_policy: str = "rm",
        min_interarrival: Optional[int] = None,
        criticality: int = 0,
    ) -> Thread:
        """Create a thread and register it with the scheduler.

        Periodic threads (``period`` given) are released automatically
        every period starting at ``phase``; aperiodic threads need an
        explicit ``priority`` and are started via :meth:`activate`.
        ``criticality`` ranks the thread for overload shedding (higher
        = more critical; see ``CSDScheduler(shed_overload=True)``).
        """
        if name in self.threads:
            raise KernelError(f"thread {name} already exists")
        program = body
        period_hint: Optional[str] = None
        if self.auto_parse_hints:
            parsed = insert_hints(body)
            program = parsed.program
            period_hint = parsed.period_hint
            risky = held_across_blocking(program)
            self._held_across_blocking.update(risky)
            for sem_name in risky:
                sem = self.semaphores.get(sem_name)
                if sem is not None and hasattr(sem, "registry_enabled"):
                    sem.registry_enabled = True
        spec = None
        if period is not None:
            spec = TaskSpec(
                name=name,
                period=period,
                wcet=program.compute_total(),
                deadline=deadline,
                phase=phase,
            )
        thread = Thread(
            name,
            program,
            spec=spec,
            process=process,
            priority=priority,
            relative_deadline=deadline,
            fp_policy=fp_policy,
        )
        thread.period_hint = period_hint
        thread.csd_queue = csd_queue
        thread.criticality = criticality
        if min_interarrival is not None:
            if period is not None:
                raise KernelError(
                    f"{name}: min_interarrival applies to aperiodic threads"
                )
            if min_interarrival <= 0:
                raise KernelError(f"{name}: min_interarrival must be positive")
            thread.min_interarrival = min_interarrival
        self.threads[name] = thread
        self.scheduler.add_task(thread)
        if spec is not None:
            self._schedule_release(thread, phase)
        return thread

    def create_semaphore(
        self,
        name: str,
        capacity: int = 1,
        scheme: Optional[str] = None,
        use_swap_pi: bool = True,
        use_hint_parking: bool = True,
    ) -> StandardSemaphore:
        """Create a semaphore using the kernel's scheme (or override)."""
        if name in self.semaphores:
            raise KernelError(f"semaphore {name} already exists")
        chosen = scheme if scheme is not None else self.sem_scheme
        if chosen == "standard":
            sem: StandardSemaphore = StandardSemaphore(name, capacity)
        elif chosen == "emeralds":
            sem = EmeraldsSemaphore(
                name,
                capacity,
                use_swap_pi=use_swap_pi,
                use_hint_parking=use_hint_parking,
            )
        else:
            raise ValueError(f"unknown semaphore scheme {chosen!r}")
        if name in self._held_across_blocking and hasattr(sem, "registry_enabled"):
            sem.registry_enabled = True
        self.semaphores[name] = sem
        return sem

    def create_event(self, name: str) -> KernelEvent:
        """Create a latching broadcast event (the Wait/Signal target)."""
        if name in self.events_by_name:
            raise KernelError(f"event {name} already exists")
        event = KernelEvent(name)
        self.events_by_name[name] = event
        return event

    def create_condvar(self, name: str) -> ConditionVariable:
        """Create a condition variable (used with a mutex semaphore)."""
        if name in self.condvars:
            raise KernelError(f"condvar {name} already exists")
        cv = ConditionVariable(name)
        self.condvars[name] = cv
        return cv

    def create_mailbox(
        self, name: str, capacity: int = 8, max_message_size: int = 64
    ) -> Mailbox:
        """Create a bounded message-passing mailbox."""
        if name in self.mailboxes:
            raise KernelError(f"mailbox {name} already exists")
        mbox = Mailbox(name, capacity, max_message_size)
        self.mailboxes[name] = mbox
        return mbox

    def create_channel(self, name: str, slots: int = 4) -> StateChannel:
        """Create a lock-free state-message channel with N slots."""
        if name in self.channels:
            raise KernelError(f"channel {name} already exists")
        channel = StateChannel(name, slots)
        self.channels[name] = channel
        return channel

    def create_shared_memory(self, name: str, size: int) -> SharedMemory:
        """Allocate a shared-memory object mappable into processes."""
        if name in self.shared_memory:
            raise KernelError(f"shared memory {name} already exists")
        shm = SharedMemory(name, size, self.allocator)
        self.shared_memory[name] = shm
        return shm

    def create_timer(
        self,
        name: str,
        interval: int,
        callback: Callable[["Kernel"], None],
        periodic: bool = False,
    ) -> Timer:
        """Create a software timer (start it with ``timer.start()``)."""
        if name in self.timers:
            raise KernelError(f"timer {name} already exists")
        timer = Timer(self, name, interval, callback, periodic=periodic)
        self.timers[name] = timer
        return timer

    # ------------------------------------------------------------------
    # thread state transitions
    # ------------------------------------------------------------------
    def block_thread(self, thread: Thread, reason: str) -> None:
        """Block a thread, charging ``t_b`` (Section 5.1)."""
        if thread.state == ThreadState.BLOCKED:
            raise KernelError(f"{thread.name} is already blocked")
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = reason
        cost = self.scheduler.on_block(thread)
        self.charge(cost, "sched")
        obs = self.obs
        if obs is not None:
            obs.on_block(thread.name, reason, self.clock.now)
        self._need_resched = True

    def unblock_thread(self, thread: Thread) -> None:
        """Make a blocked thread ready, charging ``t_u`` and ``t_s``."""
        if thread.dead:
            return
        if thread.state != ThreadState.BLOCKED and thread.state != ThreadState.IDLE:
            raise KernelError(f"{thread.name} is not blocked")
        if thread.suspended:
            # Deferred wake-up: the thread becomes runnable at resume.
            thread.blocked_on = "suspended"
            return
        thread.state = ThreadState.READY
        thread.blocked_on = None
        cost = self.scheduler.on_unblock(thread)
        self.charge(cost, "sched")
        obs = self.obs
        if obs is not None:
            obs.on_unblock(thread.name, self.clock.now)
        # The paper's model: the scheduler is invoked on every unblock.
        self._dispatch()

    def deliver_unblock(self, thread: Thread) -> None:
        """Unblock path with the Section 6.2 hint check.

        If the thread's suspended blocking call carried a semaphore
        hint and that semaphore is locked, the thread is parked on the
        semaphore instead of waking (context switch C2 eliminated).
        """
        hint = thread.pending_hint
        thread.pending_hint = None
        if hint is not None:
            sem = self.semaphores.get(hint)
            if sem is not None and hasattr(sem, "on_hint_unblock"):
                if sem.on_hint_unblock(self, thread):
                    thread.blocked_on = f"sem-parked:{hint}"
                    obs = self.obs
                    if obs is not None:
                        obs.on_block(thread.name, thread.blocked_on, self.clock.now)
                    return
        self.unblock_thread(thread)

    def activate(self, thread_name: str, at: Optional[int] = None) -> bool:
        """Activate an aperiodic thread (from an ISR or another thread).

        Returns False when the activation was rejected by the sporadic
        admission guard (an arrival sooner than the thread's declared
        minimum inter-arrival time -- the assumption every response-time
        guarantee for sporadic work rests on).
        """
        thread = self.threads[thread_name]
        if thread.periodic:
            raise KernelError(f"{thread.name} is periodic; it releases itself")
        if at is not None and at > self.now:
            self.schedule_event(at, lambda: self.activate(thread_name))
            return True
        if thread.dead:
            return False
        if thread.restart_until is not None:
            if self.now < thread.restart_until:
                self.trace.note(self.now, "activation-skipped-backoff", thread.name)
                return False
            thread.restart_until = None
        if (
            thread.min_interarrival is not None
            and thread.last_activation is not None
            and self.now - thread.last_activation < thread.min_interarrival
        ):
            self.trace.note(self.now, "sporadic-rejected", thread.name)
            return False
        thread.last_activation = self.now
        if thread.state == ThreadState.IDLE:
            thread.start_job(self.now)
            record = self.trace.job_released(
                thread.name, self.now, thread.abs_deadline, thread.job_no
            )
            self._arm_deadline_check(thread, record)
            self.deliver_unblock(thread)
        else:
            thread.pending_releases += 1
            self.trace.note(self.now, "activation-queued", thread.name)
        return True

    # ------------------------------------------------------------------
    # thread management (suspend / resume / kill)
    # ------------------------------------------------------------------
    def suspend_thread(self, name: str) -> None:
        """Take a thread out of scheduling until :meth:`resume_thread`.

        A suspended thread keeps its program state; wake-ups (event
        signals, releases) that arrive meanwhile are deferred, not
        lost: the thread becomes runnable again at resume.
        """
        thread = self.threads[name]
        if thread.dead:
            raise KernelError(f"{name} is dead")
        if thread.suspended:
            raise KernelError(f"{name} is already suspended")
        thread.suspended = True
        if thread.state in (ThreadState.READY, ThreadState.RUNNING):
            self.block_thread(thread, "suspended")
            self.trace.note(self.now, "suspend", name)
            self._dispatch_if_needed()
        else:
            self.trace.note(self.now, "suspend", name)

    def resume_thread(self, name: str) -> None:
        """Make a suspended thread schedulable again."""
        thread = self.threads[name]
        if not thread.suspended:
            raise KernelError(f"{name} is not suspended")
        thread.suspended = False
        self.trace.note(self.now, "resume", name)
        if thread.blocked_on == "suspended":
            # It was runnable when suspended (or a wake-up arrived
            # while suspended): back onto the ready queue.
            self.unblock_thread(thread)
        # Otherwise it is still genuinely blocked (semaphore, event...)
        # and will wake through the normal path.

    def kill_thread(self, name: str) -> None:
        """Remove a thread permanently.

        Refused while the thread holds any semaphore (killing a lock
        holder would strand its critical section -- the kernel reports
        the error instead, like any self-respecting RTOS).
        """
        thread = self.threads[name]
        if thread.dead:
            raise KernelError(f"{name} is already dead")
        if thread.held_sems:
            raise KernelError(
                f"cannot kill {name}: it holds {sorted(thread.held_sems)}"
            )
        thread.dead = True
        self._detach_from_waits(thread)
        release_event = self._release_events.pop(name, None)
        if release_event is not None:
            release_event.cancel()
        if thread.ready:
            self.scheduler.on_block(thread)
        self.scheduler.remove_task(thread)
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = "dead"
        self.trace.note(self.now, "kill", name)
        if self.running is thread:
            self.running = None
        self._need_resched = True
        self._dispatch_if_needed()

    def _detach_from_waits(self, thread: Thread) -> None:
        """Purge a thread from every kernel wait structure."""
        for sem in self.semaphores.values():
            if thread in sem.waiters:
                sem.waiters.remove(thread)
            parked = getattr(sem, "parked", None)
            if parked is not None and thread in parked:
                parked.remove(thread)
            registry = getattr(sem, "registry", None)
            if registry is not None and thread in registry:
                registry.remove(thread)
        for event in self.events_by_name.values():
            if thread in event.waiters:
                event.waiters.remove(thread)
        for mbox in self.mailboxes.values():
            if thread in mbox.receivers:
                mbox.receivers.remove(thread)
            if thread in mbox.senders:
                mbox.senders.remove(thread)
        for cv in self.condvars.values():
            cv.waiters = [(t, m) for (t, m) in cv.waiters if t is not thread]

    def _release_held(self, thread: Thread) -> None:
        """Release every semaphore a dying/aborting thread holds, so
        its demise cannot strand a critical section."""
        for sem_name in list(thread.held_sems):
            self.semaphores[sem_name].release(self, thread)

    # ------------------------------------------------------------------
    # overload protection: budgets, miss handlers, crash/restart
    # ------------------------------------------------------------------
    BUDGET_ACTIONS = ("warn", "suspend_job", "kill", "restart")

    def set_budget(
        self, name: str, budget_ns: int, action: str = "suspend_job"
    ) -> None:
        """Give a thread a per-job execution-time budget.

        The budget counts preemptible execution (``Compute`` and timed
        ``StateRead`` copies) of the current job.  When it exhausts,
        ``action`` runs *at the exhaustion instant*:

        * ``warn`` -- trace a ``budget-overrun`` note, keep running;
        * ``suspend_job`` -- abandon the rest of the job (held
          semaphores are released); the thread waits for its next
          release, so one runaway job cannot starve other tasks;
        * ``kill`` -- remove the thread permanently;
        * ``restart`` -- abandon the job and apply the thread's
          restart policy (see :meth:`set_restart_policy`).
        """
        thread = self.threads[name]
        if budget_ns <= 0:
            raise KernelError(f"{name}: budget must be positive (got {budget_ns})")
        if action not in self.BUDGET_ACTIONS:
            raise KernelError(
                f"{name}: unknown budget action {action!r} "
                f"(expected one of {self.BUDGET_ACTIONS})"
            )
        thread.budget_ns = budget_ns
        thread.budget_action = action

    def set_restart_policy(
        self, name: str, max_restarts: int, backoff_ns: int = 0
    ) -> None:
        """Allow a crashed (or budget-restarted) thread to come back.

        At most ``max_restarts`` restarts are granted; each applies an
        exponentially growing release back-off (``backoff_ns``,
        ``2*backoff_ns``, ``4*backoff_ns``...).  Once the bound is
        exhausted the next crash kills the thread for good.
        """
        thread = self.threads[name]
        if max_restarts < 0:
            raise KernelError(f"{name}: max_restarts must be non-negative")
        if backoff_ns < 0:
            raise KernelError(f"{name}: backoff must be non-negative")
        thread.max_restarts = max_restarts
        thread.restart_backoff_ns = backoff_ns

    def on_deadline_miss(
        self, name: str, handler: Callable[["Kernel", Thread, "object"], None]
    ) -> None:
        """Register ``handler(kernel, thread, job_record)`` to fire at
        the instant a job of ``name`` misses its deadline.

        Unlike post-hoc trace queries, the handler runs *at miss time*
        on the virtual timeline, so it can shed load, raise an alarm
        thread, or crash-and-restart the offender while the overload
        is still in progress.
        """
        thread = self.threads[name]
        if thread.relative_deadline is None:
            raise KernelError(f"{name} has no deadline to miss")
        self._miss_handlers[name] = handler

    def crash_thread(self, name: str, reason: str = "fault") -> None:
        """Simulate the thread dying mid-job (fault injection).

        Held semaphores are released (the kernel survives its
        applications).  With a restart policy the thread loses its
        current job and backlog, serves its back-off, and resumes on a
        later release; without one -- or once the restart bound is
        exhausted -- it is killed permanently.
        """
        thread = self.threads[name]
        if thread.dead:
            return
        self.trace.note(self.now, "crash", f"{name}: {reason}")
        self._release_held(thread)
        if (
            thread.max_restarts is not None
            and thread.restart_count < thread.max_restarts
        ):
            self._restart_thread(thread)
        else:
            if thread.max_restarts is not None:
                self.trace.note(self.now, "restart-exhausted", name)
            self.kill_thread(name)

    def _restart_thread(self, thread: Thread) -> None:
        """Bounded restart: drop the in-flight job and backlog, then
        rejoin the release stream after an exponential back-off."""
        thread.restart_count += 1
        backoff = thread.restart_backoff_ns * (2 ** (thread.restart_count - 1))
        record = self.trace.job_aborted(thread.name, thread.job_no, self.now)
        if record is not None:
            thread.jobs_aborted += 1
        obs = self.obs
        if obs is not None:
            obs.on_job_aborted(thread.name)
        self._detach_from_waits(thread)
        if thread.ready:
            cost = self.scheduler.on_block(thread)
            self.charge(cost, "sched")
        thread.state = ThreadState.IDLE
        thread.blocked_on = None
        thread.pending_releases = 0
        thread.abs_deadline = None
        thread.rank_cache = None
        thread.op_started = False
        thread.read_token = None
        thread.pending_hint = thread.period_hint
        thread.restart_until = self.now + backoff
        self.trace.note(
            self.now,
            "restart",
            f"{thread.name} #{thread.restart_count} backoff={backoff}",
        )
        if self.running is thread:
            self.running = None
        self._need_resched = True
        self._dispatch_if_needed()

    def _budget_exhausted(self, thread: Thread) -> bool:
        return (
            thread.budget_ns is not None
            and not thread.budget_fired
            and thread.job_exec_ns >= thread.budget_ns
        )

    def _enforce_budget(self, thread: Thread) -> bool:
        """Run the thread's budget action; True when the current job is
        gone (the caller must stop stepping the thread)."""
        thread.budget_fired = True
        action = thread.budget_action
        self.trace.note(
            self.now,
            "budget-overrun",
            f"{thread.name} job {thread.job_no} action={action}",
        )
        if action == "warn":
            return False
        self._release_held(thread)
        if action == "kill":
            self.kill_thread(thread.name)
        elif action == "restart":
            if (
                thread.max_restarts is not None
                and thread.restart_count < thread.max_restarts
            ):
                self._restart_thread(thread)
            else:
                if thread.max_restarts is not None:
                    self.trace.note(self.now, "restart-exhausted", thread.name)
                self.kill_thread(thread.name)
        else:  # suspend_job
            self._abort_job(thread)
            self._dispatch_if_needed()
        return True

    def _abort_job(self, thread: Thread) -> None:
        """Abandon the current job: close its record (no completion),
        then retire the thread exactly like a completion would."""
        record = self.trace.job_aborted(thread.name, thread.job_no, self.now)
        if record is not None:
            thread.jobs_aborted += 1
        obs = self.obs
        if obs is not None:
            obs.on_job_aborted(thread.name)
        thread.op_started = False
        thread.read_token = None
        self._retire_job(thread)

    # ------------------------------------------------------------------
    # periodic releases
    # ------------------------------------------------------------------
    def _schedule_release(self, thread: Thread, nominal: int) -> None:
        now = self.clock.now
        self._release_events[thread.name] = self.events.schedule(
            nominal if nominal > now else now,
            lambda: self._on_release(thread, nominal),
            thread.release_label,
        )

    def _on_release(self, thread: Thread, nominal: int) -> None:
        assert thread.spec is not None
        if thread.dead:
            return
        self._schedule_release(thread, nominal + thread.spec.period)
        if thread.restart_until is not None:
            if self.now < thread.restart_until:
                self.trace.note(self.now, "release-skipped-backoff", thread.name)
                return
            thread.restart_until = None
        if not self._admits_all and not self.scheduler.admit_release(
            thread, self.clock.now
        ):
            self.trace.note(self.clock.now, "release-shed", thread.name)
            return
        if thread.state == ThreadState.IDLE:
            thread.start_job(nominal)
            record = self.trace.job_released(
                thread.name, nominal, thread.abs_deadline, thread.job_no
            )
            if self._miss_handlers or self.stop_on_deadline_miss:
                self._arm_deadline_check(thread, record)
            hint = thread.period_hint
            if hint is not None or thread.suspended:
                thread.pending_hint = hint
                self.deliver_unblock(thread)
                return
            # Common case (no parser hint, not suspended) inlined:
            # deliver_unblock -> unblock_thread -> on_unblock -> charge
            # is four frames deep, and periodic releases pay it on
            # every job.  Must mirror those methods exactly.
            thread.pending_hint = None
            thread.state = ThreadState.READY
            thread.blocked_on = None
            sched = self.scheduler
            cost = sched._unblock(thread)
            stats = sched.stats
            stats.unblocks += 1
            stats.charged_unblock_ns += cost
            if cost > 0:
                clock = self.clock
                start = clock.now
                clock.now = start + cost
                trace = self.trace
                kernel_time = trace.kernel_time
                kernel_time["sched"] = kernel_time.get("sched", 0) + cost
                trace.kernel_time_total += cost
                if trace.record_segments:
                    trace.add_segment(start, start + cost, KERNEL)
            self._dispatch()
        else:
            thread.pending_releases += 1
            self.trace.note(self.now, "release-overrun", thread.name)
            if self.stop_on_deadline_miss:
                self._stop = True

    def _arm_deadline_check(self, thread: Thread, record) -> None:
        """Schedule a check *at the deadline instant* of the job just
        released.  At that instant an incomplete job is a miss: the
        trace gets a ``deadline-miss-detected`` note, the registered
        handler (if any) fires, and ``stop_on_deadline_miss`` aborts
        the run -- detection happens on the timeline, not post-hoc."""
        if not self._miss_handlers and not self.stop_on_deadline_miss:
            return
        handler = self._miss_handlers.get(thread.name)
        if record is None or record.deadline is None:
            return
        if handler is None and not self.stop_on_deadline_miss:
            return
        job = thread.job_no

        def check() -> None:
            if record.completion is not None:
                return
            thread.miss_count += 1
            self.trace.note(
                self.now, "deadline-miss-detected", f"{thread.name} job {job}"
            )
            if self.stop_on_deadline_miss:
                self.trace.note(self.now, "deadline-overrun", thread.name)
                self._stop = True
            if handler is not None:
                handler(self, thread, record)

        self.schedule_event(record.deadline, check, f"dl:{thread.name}")

    def _complete_job(self, thread: Thread) -> None:
        thread.completed_jobs += 1
        record = self.trace.job_completed(
            thread.name, thread.job_no, self.clock.now
        )
        obs = self.obs
        if obs is not None and record is None:
            # Jobs the trace recorded are folded in post-hoc by
            # ObsCollector.as_registry(); only count live (reading the
            # TCB) when recording is "off" and there is no record --
            # the completion path stays a two-comparison no-op on
            # recorded runs.
            obs.on_job_completed(
                thread.name,
                thread.release_time,
                self.clock.now,
                thread.abs_deadline,
            )
        if (
            self.stop_on_deadline_miss
            and record is not None
            and record.missed
        ):
            self._stop = True
        self._retire_job(thread)

    def _retire_job(self, thread: Thread) -> None:
        """Shared tail of job completion and abort: start a queued
        release immediately, or park the thread until the next one."""
        if thread.pending_releases > 0:
            thread.pending_releases -= 1
            if thread.periodic:
                assert thread.spec is not None
                nominal = thread.release_time + thread.spec.period
            else:
                nominal = self.now
            thread.start_job(nominal)
            record = self.trace.job_released(
                thread.name, nominal, thread.abs_deadline, thread.job_no
            )
            if self._miss_handlers or self.stop_on_deadline_miss:
                self._arm_deadline_check(thread, record)
            return  # stays ready; next job starts immediately
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = "period" if thread.periodic else "activation"
        thread.abs_deadline = None
        thread.rank_cache = None
        # Inlined scheduler.on_block + charge (this runs once per job).
        sched = self.scheduler
        cost = sched._block(thread)
        stats = sched.stats
        stats.blocks += 1
        stats.charged_block_ns += cost
        if cost > 0:
            clock = self.clock
            start = clock.now
            clock.now = start + cost
            trace = self.trace
            kernel_time = trace.kernel_time
            kernel_time["sched"] = kernel_time.get("sched", 0) + cost
            trace.kernel_time_total += cost
            if trace.record_segments:
                trace.add_segment(start, start + cost, KERNEL)
        thread.state = ThreadState.IDLE
        thread.pending_hint = thread.period_hint
        self._need_resched = True

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Run the scheduler (charging ``t_s``) and switch if needed."""
        self._need_resched = False
        self.dispatch_count += 1
        # Inlined scheduler.select() (the stats wrapper): one frame per
        # dispatch, and _dispatch runs twice per job.
        sched = self.scheduler
        selected, cost = sched._select()
        stats = sched.stats
        stats.selects += 1
        stats.charged_select_ns += cost
        if cost > 0:
            # Inlined self.charge(cost, "sched"): one call frame per
            # dispatch is real money at this call rate.
            clock = self.clock
            start = clock.now
            end = start + cost
            clock.now = end
            trace = self.trace
            kernel_time = trace.kernel_time
            kernel_time["sched"] = kernel_time.get("sched", 0) + cost
            trace.kernel_time_total += cost
            if trace.record_segments:
                trace.add_segment(start, end, KERNEL)
        new = selected if isinstance(selected, Thread) else None
        if new is self.running:
            return
        old = self.running
        cs = self.model.context_switch_ns
        if cs > 0:
            clock = self.clock
            start = clock.now
            clock.now = start + cs
            trace = self.trace
            kernel_time = trace.kernel_time
            kernel_time["context-switch"] = (
                kernel_time.get("context-switch", 0) + cs
            )
            trace.kernel_time_total += cs
            if trace.record_segments:
                trace.add_segment(start, start + cs, KERNEL)
        preempted = old is not None and old.state == ThreadState.RUNNING
        if preempted:
            old.state = ThreadState.READY
        if new is not None:
            new.state = ThreadState.RUNNING
        self.running = new
        self.trace.context_switch(
            self.clock.now, old.name if old else None, new.name if new else None
        )
        obs = self.obs
        if obs is not None:
            # Inlined obs.on_switch() (the reference implementation):
            # a method call per context switch costs several percent
            # of throughput, plain adds stay under the obs budget.
            obs.switches += 1
            depth = self.events._live
            obs.queue_depth_sum += depth
            if depth > obs.queue_depth_max:
                obs.queue_depth_max = depth
            if new is not None:
                new.obs_dispatches += 1
            if preempted:
                old.obs_preemptions += 1

    def _dispatch_if_needed(self) -> None:
        if self._need_resched:
            self._dispatch()

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run_until(self, t_end: int) -> Trace:
        """Advance virtual time to ``t_end`` (ns), executing threads."""
        if t_end < self.now:
            raise ValueError("cannot run into the past")
        self._stop = False
        # The loop below is the simulator's hottest code: bind the
        # pieces it touches every iteration to locals once, and inline
        # the event drain (one pop_due call per iteration instead of a
        # drain call plus a pop_due call).
        clock = self.clock
        events = self.events
        trace = self.trace
        pop_due = events.pop_due
        step = self._step_running
        popped = 0
        try:
            while not self._stop:
                while True:
                    # Fast peek before paying the pop_due call: most
                    # rounds find nothing due.  Re-read _heap and the
                    # clock each round (compaction rebinds the heap;
                    # firing an action charges kernel time, making
                    # further events due).  A cancelled head passes the
                    # peek; pop_due trims it and settles the question.
                    heap = events._heap
                    if not heap or heap[0][0] > clock.now:
                        break
                    event = pop_due(clock.now)
                    if event is None:
                        break
                    popped += 1
                    event.action()
                if self._need_resched:
                    self._dispatch()
                if clock.now >= t_end:
                    break
                if self.running is None:
                    # Coalesce the whole idle gap into one clock jump:
                    # no thread can become runnable before the next
                    # event.
                    nxt = events.peek_time()
                    if nxt is None or nxt >= t_end:
                        trace.add_segment(clock.now, t_end, IDLE)
                        clock.now = t_end
                        break
                    trace.add_segment(clock.now, nxt, IDLE)
                    clock.now = nxt
                    continue
                step(t_end)
        finally:
            self.events_popped += popped
        return self.trace

    def run_for(self, duration: int) -> Trace:
        """Advance virtual time by ``duration`` ns."""
        return self.run_until(self.now + duration)

    def _step_running(self, t_end: int) -> None:
        thread = self.running
        assert thread is not None
        # Inlined thread.current_op(): one call frame per step.
        pc = thread.pc
        if pc >= thread._ops_len:
            self._complete_job(thread)
            if self._need_resched:
                self._dispatch()
            return
        op = thread._ops[pc]
        cls = op.__class__
        if cls is ops.Compute or cls is ops.StateRead:
            self._step_timed(thread, op, t_end)
            return
        try:
            self._execute_op(thread, op)
        except ProtectionFault as fault:
            self._handle_fault(thread, fault)
        if self._need_resched:
            self._dispatch()

    def _handle_fault(self, thread: Thread, fault: "ProtectionFault") -> None:
        """A memory-protection violation terminates the offending
        thread -- the kernel itself survives (the whole point of the
        protection boundary, Section 3).  With ``fault_policy="raise"``
        the fault propagates instead (strict mode for tests/debugging).
        """
        self.trace.note(self.now, "protection-fault", f"{thread.name}: {fault}")
        if self.fault_policy == "raise":
            raise fault
        # Release held locks so the fault cannot deadlock others.
        self._release_held(thread)
        self.kill_thread(thread.name)

    # ------------------------------------------------------------------
    # timed (preemptible) ops: Compute and slot-copying StateRead
    # ------------------------------------------------------------------
    def _step_timed(self, thread: Thread, op, t_end: int) -> None:
        is_state_read = op.__class__ is ops.StateRead
        if not thread.op_started:
            thread.op_started = True
            if is_state_read:
                channel = self._channel(op.channel)
                self.charge(self.model.state_msg_read_ns, "state-msg")
                if op.duration == 0:
                    thread.last_read = channel.read()
                    self._finish_op(thread)
                    return
                thread.read_token = channel.begin_read()
                thread.remaining = op.duration
            else:
                thread.remaining = op.duration
                if self.fault_injector is not None:
                    extra = self.fault_injector.compute_extra(thread)
                    if extra > 0:
                        thread.remaining += extra
                        self.trace.note(
                            self.now, "fault-wcet-overrun", f"{thread.name} +{extra}"
                        )
                if thread.remaining == 0:
                    self._finish_op(thread)
                    return
        if (
            thread.budget_ns is not None
            and self._budget_exhausted(thread)
            and self._enforce_budget(thread)
        ):
            return  # the job is gone; do not step the dead op
        clock = self.clock
        now = clock.now
        # Inlined self.events.peek_time() fast path; fall back to the
        # real method when the heap head is a cancelled entry (its time
        # could be earlier than the true next event's).
        heap = self.events._heap
        if heap:
            head = heap[0]
            horizon = head[0] if not head[2].cancelled else self.events.peek_time()
        else:
            horizon = None
        limit = t_end if horizon is None or horizon > t_end else horizon
        if thread.budget_ns is not None and not thread.budget_fired:
            # Stop exactly at budget exhaustion, even with no event due.
            budget_limit = now + thread.budget_ns - thread.job_exec_ns
            if budget_limit < limit:
                limit = budget_limit
        if limit <= now:
            return  # an event is due; the main loop drains it first
        run = limit - now
        remaining = thread.remaining
        if remaining < run:
            run = remaining
        end = now + run
        clock.now = end
        trace = self.trace
        if trace.record_segments:
            trace.add_segment(now, end, thread.name)
        thread.remaining = remaining - run
        thread.job_exec_ns += run
        if thread.remaining > 0:
            if thread.budget_ns is not None and self._budget_exhausted(thread):
                self._enforce_budget(thread)
            return
        if is_state_read:
            channel = self._channel(op.channel)
            try:
                thread.last_read = channel.end_read(thread.read_token)
            except TornRead:
                # Retry the copy from the (new) latest slot.
                self.trace.note(self.now, "torn-read", f"{thread.name}@{op.channel}")
                thread.read_token = channel.begin_read()
                thread.remaining = op.duration
                return
            thread.read_token = None
        # Inlined self._finish_op(thread); remaining is already 0 here.
        thread.pc += 1
        thread.op_started = False

    def _finish_op(self, thread: Thread) -> None:
        thread.pc += 1
        thread.op_started = False
        thread.remaining = 0

    # ------------------------------------------------------------------
    # kernel op interpreter
    # ------------------------------------------------------------------
    def _execute_op(self, thread: Thread, op) -> None:
        handler = self._op_handlers.get(op.__class__)
        if handler is None:
            raise KernelError(f"unknown op {op!r}")
        handler(thread, op)

    def _op_acquire(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._semaphore(op.sem).acquire(self, thread)
        self._finish_op(thread)

    def _op_release(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._semaphore(op.sem).release(self, thread)
        self._finish_op(thread)

    def _op_wait(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._event(op.event).wait(self, thread, hint=op.hint)
        self._finish_op(thread)

    def _op_signal(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._event(op.event).signal(self)
        self._finish_op(thread)

    def _op_send(self, thread: Thread, op) -> None:
        self._charge_syscall()
        done = self._mailbox(op.mailbox).send(
            self, thread, op.payload, op.size, buffer=op.buffer
        )
        if done:
            self._finish_op(thread)
        # else: the op re-executes when a slot frees up

    def _op_recv(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._mailbox(op.mailbox).recv(self, thread, buffer=op.buffer, hint=op.hint)
        self._finish_op(thread)

    def _op_cv_wait(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._condvar(op.condvar).wait(self, thread, op.mutex)
        self._finish_op(thread)

    def _op_cv_signal(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._condvar(op.condvar).signal(self, thread)
        self._finish_op(thread)

    def _op_cv_broadcast(self, thread: Thread, op) -> None:
        self._charge_syscall()
        self._condvar(op.condvar).broadcast(self, thread)
        self._finish_op(thread)

    def _op_state_write(self, thread: Thread, op) -> None:
        # User-level: no kernel trap, only the slot write cost.
        self.charge(self.model.state_msg_write_ns, "state-msg")
        self._channel(op.channel).write(op.value, writer_name=thread.name)
        self._finish_op(thread)

    def _op_sleep(self, thread: Thread, op) -> None:
        self._charge_syscall()
        thread.pending_hint = op.hint
        wake_at = self.now + op.duration
        self.schedule_event(
            wake_at, lambda: self.deliver_unblock(thread), f"wake:{thread.name}"
        )
        self.block_thread(thread, "sleep")
        self._finish_op(thread)

    def _op_call(self, thread: Thread, op) -> None:
        self._charge_syscall()
        op.fn(self, thread)
        self._finish_op(thread)

    def _charge_syscall(self) -> None:
        self.syscall_count += 1
        self.charge(self.model.syscall_ns, "syscall")

    # ------------------------------------------------------------------
    # registry lookups
    # ------------------------------------------------------------------
    def _semaphore(self, name: str) -> StandardSemaphore:
        if name not in self.semaphores:
            raise KernelError(f"unknown semaphore {name}")
        return self.semaphores[name]

    def _event(self, name: str) -> KernelEvent:
        if name not in self.events_by_name:
            raise KernelError(f"unknown event {name}")
        return self.events_by_name[name]

    def _mailbox(self, name: str) -> Mailbox:
        if name not in self.mailboxes:
            raise KernelError(f"unknown mailbox {name}")
        return self.mailboxes[name]

    def _condvar(self, name: str) -> ConditionVariable:
        if name not in self.condvars:
            raise KernelError(f"unknown condvar {name}")
        return self.condvars[name]

    def _channel(self, name: str) -> StateChannel:
        if name not in self.channels:
            raise KernelError(f"unknown channel {name}")
        return self.channels[name]
