"""Periodic task model.

The paper's workload model (Section 2 and Section 5.2): ``n`` concurrent
periodic tasks ``tau_i`` with period ``P_i``, worst-case execution time
``c_i``, and relative deadline ``d_i`` (equal to ``P_i`` unless stated
otherwise).  Tasks are conventionally indexed in rate-monotonic order,
shortest period first, as in Table 2.

:class:`TaskSpec` is the static description used by the analytic
schedulability machinery (Section 5.2, [36]) and by the workload
generator; the kernel substrate wraps it into a live
:class:`repro.kernel.thread.Thread` with a program to execute.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.timeunits import ms, to_ms

__all__ = ["TaskSpec", "Workload"]


@dataclass(frozen=True)
class TaskSpec:
    """Static parameters of one periodic real-time task.

    Attributes:
        name: Human-readable identifier (``"tau5"``).
        period: Period ``P_i`` in nanoseconds.
        wcet: Worst-case execution time ``c_i`` in nanoseconds.
        deadline: Relative deadline ``d_i`` in nanoseconds; defaults to
            the period (the paper's assumption throughout Section 5).
        phase: Release offset of the first job in nanoseconds.  The
            paper's analysis assumes the critical instant (all tasks
            released together), i.e. phase 0.
        blocking_calls: Number of *additional* blocking system calls the
            task makes per period, on top of the one implicit
            block/unblock at the period boundary.  Section 5.1 assumes
            half the tasks make one such call, yielding the 1.5 factor
            in ``t = 1.5 (t_b + t_u + 2 t_s)``.
    """

    name: str
    period: int
    wcet: int
    deadline: Optional[int] = None
    phase: int = 0
    blocking_calls: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"task {self.name}: period must be positive")
        if self.wcet < 0:
            raise ValueError(f"task {self.name}: wcet must be non-negative")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.deadline <= 0:
            raise ValueError(f"task {self.name}: deadline must be positive")
        if self.phase < 0:
            raise ValueError(f"task {self.name}: phase must be non-negative")
        if self.blocking_calls < 0:
            raise ValueError(f"task {self.name}: blocking_calls must be >= 0")

    @property
    def utilization(self) -> float:
        """Fraction of the processor consumed by this task, ``c_i / P_i``."""
        return self.wcet / self.period

    @property
    def rm_key(self) -> Tuple[int, str]:
        """Rate-monotonic priority key: smaller sorts first (higher priority).

        Ties on period are broken by name so orderings are deterministic.
        """
        return (self.period, self.name)

    def scaled(self, factor: float) -> "TaskSpec":
        """Return a copy with the execution time scaled by ``factor``.

        Used by the breakdown-utilization procedure of Section 5.7,
        which scales execution times until the workload becomes
        infeasible.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(self, wcet=max(0, round(self.wcet * factor)))

    def __str__(self) -> str:
        return (
            f"{self.name}(P={to_ms(self.period):g}ms, "
            f"c={to_ms(self.wcet):g}ms)"
        )


class Workload:
    """An immutable set of periodic tasks, kept in rate-monotonic order.

    The CSD framework (Section 5.3) assumes the workload is sorted by
    RM priority, shortest period first, so that queue allocations can
    be described as split points in this ordering.
    """

    def __init__(self, tasks: Iterable[TaskSpec]):
        ordered = sorted(tasks, key=lambda t: t.rm_key)
        names = [t.name for t in ordered]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        self._tasks: Tuple[TaskSpec, ...] = tuple(ordered)

    @property
    def tasks(self) -> Tuple[TaskSpec, ...]:
        """The tasks in RM order (shortest period first)."""
        return self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> TaskSpec:
        return self._tasks[index]

    @property
    def utilization(self) -> float:
        """Total raw utilization ``U = sum(c_i / P_i)``."""
        return sum(t.utilization for t in self._tasks)

    def scaled(self, factor: float) -> "Workload":
        """Scale every task's execution time by ``factor``."""
        return Workload(t.scaled(factor) for t in self._tasks)

    def with_periods_divided(self, divisor: int) -> "Workload":
        """Divide every period (and deadline) by an integer divisor.

        Section 5.7 derives two extra workloads from each base workload
        by dividing task periods by 2 and by 3, to study the effect of
        scheduler invocation frequency.  Execution times are divided
        too, so raw utilization is preserved.
        """
        if divisor < 1:
            raise ValueError("divisor must be >= 1")
        scaled = []
        for t in self._tasks:
            scaled.append(
                TaskSpec(
                    name=t.name,
                    period=max(1, t.period // divisor),
                    wcet=max(0, t.wcet // divisor),
                    deadline=max(1, t.deadline // divisor),
                    phase=t.phase // divisor,
                    blocking_calls=t.blocking_calls,
                )
            )
        return Workload(scaled)

    def names(self) -> List[str]:
        """Task names in RM order."""
        return [t.name for t in self._tasks]

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in self._tasks)
        return f"Workload([{inner}])"


def table2_workload() -> Workload:
    """A 10-task workload with the properties of the paper's Table 2.

    The numeric entries of Table 2 are unreadable in the copy of the
    paper we work from, so this workload is *reconstructed* to satisfy
    every property the text states about it:

    * ten tasks, U = 0.88 (ours: 0.8785);
    * a mix of short (5-9 ms) and long (100-310 ms) periods;
    * feasible under EDF (U <= 1 with implicit deadlines);
    * infeasible under RM, with tau5 the "troublesome" task: tau1-tau4
      occupy [0, 4 ms), are all released a second time before tau5 can
      finish, and tau5 misses its deadline at t = 9 ms exactly as in
      Figure 2;
    * tau6-tau10 are easily scheduled by either policy.
    """
    periods_ms = [5, 6, 7, 8, 9, 100, 150, 200, 280, 310]
    wcets_ms = [1, 1, 1, 1, 2, 0.5, 0.7, 0.8, 1, 1.2]
    tasks = [
        TaskSpec(name=f"tau{i + 1}", period=ms(p), wcet=ms(c))
        for i, (p, c) in enumerate(zip(periods_ms, wcets_ms))
    ]
    return Workload(tasks)
