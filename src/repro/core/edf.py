"""Earliest-deadline-first scheduler (Section 5.1).

EMERALDS implements EDF with a *single unsorted queue* holding both
blocked and ready tasks: blocking and unblocking are O(1) TCB flag
updates; selection is an O(n) scan for the earliest-deadline ready
task.  The paper prefers this over a sorted queue (O(n) insert/delete
that "performs poorly as priorities change often due to semaphore use")
and over a heap (large constants; see Table 1's third column).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.overhead import OverheadModel
from repro.core.queues import Schedulable, UnsortedQueue
from repro.core.scheduler import Scheduler

__all__ = ["EDFScheduler"]


class EDFScheduler(Scheduler):
    """EDF over one unsorted queue, with Table 1's EDF cost column."""

    def __init__(self, model: Optional[OverheadModel] = None):
        super().__init__(model)
        self.queue = UnsortedQueue("EDF")
        # Charged costs depend only on the queue length; memoize them
        # per length so the per-dispatch hot path pays a C-level dict
        # lookup instead of a model method call (the model is immutable
        # after construction).
        self._block_costs: dict = {}
        self._unblock_costs: dict = {}
        self._select_costs: dict = {}

    def add_task(self, task: Schedulable) -> None:
        self.queue.add(task)

    def remove_task(self, task: Schedulable) -> None:
        self.queue.remove(task)

    def tasks(self) -> List[Schedulable]:
        return list(self.queue)

    def queue_lengths(self) -> List[int]:
        return [len(self.queue)]

    def queue_index_of(self, task: Schedulable) -> int:
        if task not in self.queue:
            raise ValueError(f"{task.name} is not scheduled by this EDF scheduler")
        return 0

    def priority_rank(self, task: Schedulable):
        deadline, key = task.edf_rank()
        return (0, deadline, key)

    def _block(self, task: Schedulable) -> int:
        queue = self.queue
        queue.block(task)
        n = len(queue._tasks)
        cost = self._block_costs.get(n)
        if cost is None:
            cost = self._block_costs[n] = self.model.edf_block(n)
        return cost

    def _unblock(self, task: Schedulable) -> int:
        queue = self.queue
        queue.unblock(task)
        n = len(queue._tasks)
        cost = self._unblock_costs.get(n)
        if cost is None:
            cost = self._unblock_costs[n] = self.model.edf_unblock(n)
        return cost

    def _select(self) -> Tuple[Optional[Schedulable], int]:
        queue = self.queue
        task = queue.select()
        n = len(queue._tasks)
        cost = self._select_costs.get(n)
        if cost is None:
            cost = self._select_costs[n] = self.model.edf_select(n)
        return task, cost

    def _raise_priority(self, task: Schedulable, donor: Schedulable) -> int:
        # DP tasks are not kept sorted, so inheritance is an O(1)
        # overwrite of the deadline AND the tie-break key (Section 6.1).
        # Without the key, a donation from an equal-deadline donor would
        # leave the holder losing every tie and change nothing.
        deadline, key = donor.edf_rank()
        if deadline == float("inf"):
            task.pi_deadline = None
            task.pi_key = None
        else:
            task.pi_deadline = int(deadline)
            task.pi_key = key
        return self.model.pi_dp_step()

    def _restore_priority(self, task: Schedulable) -> int:
        task.pi_deadline = None
        task.pi_key = None
        return self.model.pi_dp_step()
