"""Workload schedulability tests that account for run-time overheads.

Section 5 splits total scheduling overhead into *run-time* overhead
(the scheduler code's execution time, Table 1) and *schedulability*
overhead (the theoretical utilization the policy gives up, Section 5.2).
The breakdown-utilization experiments of Section 5.7 need feasibility
tests that include both; the paper defers the details to reference
[36].  This module implements such tests:

* **EDF** -- exact: with implicit deadlines, utilization test
  ``U' <= 1`` on overhead-inflated execution times; with constrained
  deadlines, processor-demand analysis.
* **RM / fixed priority** -- exact response-time analysis on inflated
  execution times.
* **CSD-x** -- hierarchical band test.  Given the allocation of tasks
  to queues (a prefix split of the RM-ordered workload), each EDF band
  is tested by processor-demand analysis with ceiling interference from
  all higher bands, and the FP band by response-time analysis with
  interference from every DP task.  Band 1 has no interference, so it
  reduces to the exact EDF test; with a single all-task DP band the
  whole test reduces to EDF, confirming the paper's observation that
  CSD's schedulability overhead is zero in the worst case (CSD-2) and
  grows toward RM's as the number of bands increases.

Run-time overhead inflation follows Section 5.1: each task pays
``t = blocking_factor * (t_b + t_s_block + t_u + t_s_unblock)`` per
period, with the component costs drawn from the
:class:`~repro.core.overhead.OverheadModel` according to the queue the
task lives on (the four cases of Section 5.4 / Table 3 for CSD).

Demand-based tests cap the number of inspected testing points
(:data:`MAX_TEST_POINTS`); a workload whose synchronous busy period
needs more points is declared infeasible.  This only triggers with
utilization extremely close to the breakdown point and is uniformly
(slightly) pessimistic across all policies, so figure *shapes* are
unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.task import TaskSpec, Workload

__all__ = [
    "BLOCKING_FACTOR",
    "MAX_TEST_POINTS",
    "edf_overhead_per_period",
    "rm_overhead_per_period",
    "heap_overhead_per_period",
    "csd_overhead_per_period",
    "inflate",
    "edf_schedulable",
    "rm_schedulable",
    "rm_response_times",
    "dm_schedulable",
    "dm_response_times",
    "csd_schedulable",
    "band_sizes_from_splits",
]

#: Section 5.1: half the tasks make one blocking call per period on top
#: of the mandatory block/unblock at the period boundary, so on average
#: each task pays 1.5x the basic per-period scheduler cost.
BLOCKING_FACTOR = 1.5

#: Cap on demand-analysis testing points per band (see module docstring).
MAX_TEST_POINTS = 4096

#: Cap on busy-period fixed-point iterations.
_MAX_BUSY_ITERATIONS = 256


def _ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative integers."""
    return -(-a // b)


# ----------------------------------------------------------------------
# Per-period run-time overheads (Section 5.1, Section 5.4)
# ----------------------------------------------------------------------

def edf_overhead_per_period(
    model: OverheadModel, n: int, blocking_factor: float = BLOCKING_FACTOR
) -> int:
    """Per-period scheduler cost of a task under plain EDF with n tasks."""
    t_s = model.edf_select(n)
    return OverheadModel.per_period(
        model.edf_block(n), model.edf_unblock(n), t_s, blocking_factor
    )


def rm_overhead_per_period(
    model: OverheadModel, n: int, blocking_factor: float = BLOCKING_FACTOR
) -> int:
    """Per-period scheduler cost of a task under plain RM with n tasks."""
    t_s = model.rm_select(n)
    return OverheadModel.per_period(
        model.rm_block(n), model.rm_unblock(n), t_s, blocking_factor
    )


def heap_overhead_per_period(
    model: OverheadModel, n: int, blocking_factor: float = BLOCKING_FACTOR
) -> int:
    """Per-period scheduler cost under the heap-based RM variant."""
    t_s = model.heap_select(n)
    return OverheadModel.per_period(
        model.heap_block(n), model.heap_unblock(n), t_s, blocking_factor
    )


def csd_overhead_per_period(
    model: OverheadModel,
    band_sizes: Sequence[int],
    band_index: int,
    blocking_factor: float = BLOCKING_FACTOR,
) -> int:
    """Per-period scheduler cost of a task in CSD band ``band_index``.

    ``band_sizes`` lists every queue's size, DP queues first, the FP
    queue last.  The worst-case selection costs follow the four cases
    of Section 5.4 (Table 3 for CSD-3):

    * a DP task blocking may leave the selector to parse any queue, so
      the worst case is the longest DP queue's EDF scan;
    * a DP_i task unblocking guarantees a ready task in queue i, so the
      selector parses at worst the longest queue among DP_1..DP_i;
    * an FP task blocking implies no DP task is ready (they would have
      preempted), so selection is the O(1) ``highestp`` dereference;
    * an FP task unblocking may find ready tasks in any DP queue.

    Every selection also pays the flat ``x * 0.55 us`` queue-list parse.
    """
    if not band_sizes:
        raise ValueError("band_sizes must be non-empty")
    if not 0 <= band_index < len(band_sizes):
        raise ValueError("band_index out of range")
    x = len(band_sizes)
    dp_sizes = list(band_sizes[:-1])
    fp_size = band_sizes[-1]
    parse = x * model.queue_parse_ns
    max_dp = max(dp_sizes) if dp_sizes else 0
    fp_band = x - 1

    if band_index == fp_band:
        t_b = model.rm_block(fp_size)
        t_u = model.rm_unblock(fp_size)
        t_s_block = parse + model.rm_select(fp_size)
        t_s_unblock = parse + (
            model.edf_select(max_dp) if dp_sizes else model.rm_select(fp_size)
        )
    else:
        size = band_sizes[band_index]
        t_b = model.edf_block(size)
        t_u = model.edf_unblock(size)
        worst_any = max(
            model.edf_select(max_dp) if dp_sizes else 0,
            model.rm_select(fp_size),
        )
        t_s_block = parse + worst_any
        max_up_to = max(dp_sizes[: band_index + 1])
        t_s_unblock = parse + model.edf_select(max_up_to)

    total = t_b + t_s_block + t_u + t_s_unblock
    return round(blocking_factor * total)


def inflate(task: TaskSpec, overhead_ns: int) -> int:
    """The overhead-inflated execution time ``c_i + t`` of Section 5.1."""
    return task.wcet + overhead_ns


# ----------------------------------------------------------------------
# EDF (processor demand analysis)
# ----------------------------------------------------------------------

def _demand_points(
    tasks: Sequence[TaskSpec], horizon: int, cap: int = MAX_TEST_POINTS
) -> Optional[List[int]]:
    """Absolute deadlines of ``tasks`` in ``(0, horizon]``.

    Returns ``None`` if more than ``cap`` points would be generated.
    """
    points = set()
    for task in tasks:
        deadline = task.deadline
        count = 0
        t = deadline
        while t <= horizon:
            points.add(t)
            count += 1
            if len(points) > cap:
                return None
            t = deadline + count * task.period
    return sorted(points)


def _busy_period(costs: Sequence[Tuple[int, int]]) -> Optional[int]:
    """Synchronous busy period of periodic tasks ``(period, cost)``.

    Returns ``None`` when the fixed point fails to converge (U >= 1 or
    iteration cap hit).
    """
    total = sum(c for _, c in costs)
    if total == 0:
        return 0
    utilization = sum(c / p for p, c in costs)
    if utilization >= 1.0:
        return None
    length = total
    for _ in range(_MAX_BUSY_ITERATIONS):
        nxt = sum(_ceil_div(length, p) * c for p, c in costs)
        if nxt == length:
            return length
        length = nxt
    return None


def _lcm_capped(periods: Sequence[int], cap: int = 1_000_000_000_000) -> Optional[int]:
    """LCM of the periods, or ``None`` when it exceeds ``cap`` ns."""
    value = 1
    for p in periods:
        value = value * p // math.gcd(value, p)
        if value > cap:
            return None
    return value


def edf_schedulable(
    workload: Workload,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
) -> bool:
    """Exact EDF feasibility with run-time overheads.

    With implicit deadlines this is the classic ``U' <= 1`` bound
    (Liu & Layland via [21]); with constrained deadlines, processor
    demand analysis over the synchronous busy period.
    """
    n = len(workload)
    if n == 0:
        return True
    overhead = edf_overhead_per_period(model, n, blocking_factor)
    inflated = [(t.period, inflate(t, overhead)) for t in workload]
    utilization = sum(c / p for p, c in inflated)
    if utilization > 1.0:
        return False
    if all(t.deadline >= t.period for t in workload):
        return True
    return _demand_feasible(list(workload), [c for _, c in inflated], [])


def _demand_feasible(
    band: List[TaskSpec],
    band_costs: List[int],
    interference: List[Tuple[int, int]],
) -> bool:
    """Processor-demand test for an EDF band under periodic interference.

    ``interference`` is a list of ``(period, cost)`` pairs of strictly
    higher-priority periodic tasks (higher CSD bands); their worst-case
    interference over ``[0, t)`` is ``sum(ceil(t / P) * c)``.
    """
    if not band:
        return True
    costs = [(t.period, c) for t, c in zip(band, band_costs)]
    everything = costs + list(interference)
    utilization = sum(c / p for p, c in everything)
    if utilization > 1.0:
        return False
    if not interference and all(t.deadline >= t.period for t in band):
        # Pure EDF band with implicit deadlines: U <= 1 is exact.
        return True
    if utilization == 1.0:
        # The busy period diverges exactly at U = 1; the synchronous
        # schedule repeats with the hyperperiod, so checking one
        # hyperperiod is decisive.
        horizon = _lcm_capped([p for p, _ in everything])
        if horizon is None:
            return False  # hyperperiod too large; knife-edge case
    else:
        horizon = _busy_period(everything)
        if horizon is None:
            return False
    if horizon == 0:
        return True
    points = _demand_points(band, horizon)
    if points is None:
        return False
    for t in points:
        demand = 0
        for task, cost in zip(band, band_costs):
            jobs = (t - task.deadline) // task.period + 1
            if jobs > 0:
                demand += jobs * cost
        for period, cost in interference:
            demand += _ceil_div(t, period) * cost
        if demand > t:
            return False
    return True


# ----------------------------------------------------------------------
# RM / fixed priority (response-time analysis)
# ----------------------------------------------------------------------

def rm_response_times(
    workload: Workload,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
    heap: bool = False,
) -> Dict[str, Optional[int]]:
    """Worst-case response time of each task under RM, or ``None`` when
    the fixed point exceeds the deadline (task unschedulable)."""
    n = len(workload)
    per_period = (
        heap_overhead_per_period(model, n, blocking_factor)
        if heap
        else rm_overhead_per_period(model, n, blocking_factor)
    )
    inflated = [inflate(t, per_period) for t in workload]
    results: Dict[str, Optional[int]] = {}
    for i, task in enumerate(workload):
        results[task.name] = _response_time(
            inflated[i],
            task.deadline,
            [(workload[j].period, inflated[j]) for j in range(i)],
        )
    return results


def _response_time(
    cost: int, deadline: int, higher: Sequence[Tuple[int, int]]
) -> Optional[int]:
    """Classic RTA fixed point; ``None`` if it climbs past the deadline."""
    response = cost
    for _ in range(_MAX_BUSY_ITERATIONS):
        interference = sum(_ceil_div(response, p) * c for p, c in higher)
        nxt = cost + interference
        if nxt == response:
            return response
        if nxt > deadline:
            return None
        response = nxt
    return None


def rm_schedulable(
    workload: Workload,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
    heap: bool = False,
) -> bool:
    """Exact RM feasibility (response-time analysis) with overheads."""
    if len(workload) == 0:
        return True
    responses = rm_response_times(workload, model, blocking_factor, heap=heap)
    return all(r is not None for r in responses.values())


def dm_response_times(
    workload: Workload,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
) -> Dict[str, Optional[int]]:
    """Response times under deadline-monotonic priorities.

    The paper notes the FP queue works with "any fixed-priority
    scheduler such as deadline-monotonic [18]"; DM is the optimal
    fixed-priority assignment for constrained deadlines (d <= P).
    Priorities order by relative deadline, shortest first.
    """
    n = len(workload)
    per_period = rm_overhead_per_period(model, n, blocking_factor)
    ordered = sorted(workload, key=lambda t: (t.deadline, t.name))
    inflated = [inflate(t, per_period) for t in ordered]
    results: Dict[str, Optional[int]] = {}
    for i, task in enumerate(ordered):
        results[task.name] = _response_time(
            inflated[i],
            task.deadline,
            [(ordered[j].period, inflated[j]) for j in range(i)],
        )
    return results


def dm_schedulable(
    workload: Workload,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
) -> bool:
    """Exact deadline-monotonic feasibility with overheads."""
    if len(workload) == 0:
        return True
    responses = dm_response_times(workload, model, blocking_factor)
    return all(r is not None for r in responses.values())


# ----------------------------------------------------------------------
# CSD (hierarchical band analysis)
# ----------------------------------------------------------------------

def band_sizes_from_splits(n: int, splits: Sequence[int]) -> List[int]:
    """Convert cumulative split points into band sizes.

    ``splits = (s_1, ..., s_{x-1})`` assigns tasks ``[0, s_1)`` to DP1,
    ``[s_1, s_2)`` to DP2, ..., and ``[s_{x-1}, n)`` to the FP queue.
    """
    previous = 0
    sizes = []
    for s in splits:
        if not previous <= s <= n:
            raise ValueError(f"invalid split point {s} (n={n}, splits={splits})")
        sizes.append(s - previous)
        previous = s
    sizes.append(n - previous)
    return sizes


def csd_schedulable(
    workload: Workload,
    splits: Sequence[int],
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
) -> bool:
    """Feasibility of ``workload`` under CSD with the given allocation.

    ``splits`` are cumulative indices into the RM-ordered workload (see
    :func:`band_sizes_from_splits`); tasks before the last split form
    the DP bands, the rest the FP band.
    """
    n = len(workload)
    if n == 0:
        return True
    sizes = band_sizes_from_splits(n, splits)
    tasks = list(workload)

    # Inflated execution time per band.
    overheads = [
        csd_overhead_per_period(model, sizes, k, blocking_factor)
        for k in range(len(sizes))
    ]
    bands: List[List[TaskSpec]] = []
    band_costs: List[List[int]] = []
    start = 0
    for k, size in enumerate(sizes):
        members = tasks[start : start + size]
        bands.append(members)
        band_costs.append([inflate(t, overheads[k]) for t in members])
        start += size

    # EDF bands, highest priority first, with interference from every
    # higher band.
    interference: List[Tuple[int, int]] = []
    for k in range(len(sizes) - 1):
        if bands[k]:
            if not _demand_feasible(bands[k], band_costs[k], interference):
                return False
        interference.extend(
            (t.period, c) for t, c in zip(bands[k], band_costs[k])
        )

    # FP band: response-time analysis; every DP task interferes, plus
    # higher-priority FP tasks.
    fp_tasks = bands[-1]
    fp_costs = band_costs[-1]
    for i, task in enumerate(fp_tasks):
        higher = list(interference)
        higher.extend((fp_tasks[j].period, fp_costs[j]) for j in range(i))
        if _response_time(fp_costs[i], task.deadline, higher) is None:
            return False
    return True
