"""The paper's primary contribution: CSD scheduling and its analysis.

Exports the task model, the three schedulers (EDF, RM, CSD), the
Table 1 overhead model, and the overhead-aware schedulability tests
used by the breakdown-utilization experiments.
"""

from repro.core.allocation import balanced_splits, find_feasible_splits
from repro.core.csd import CSDScheduler
from repro.core.edf import EDFScheduler
from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.queues import ReadyHeap, Schedulable, SortedQueue, UnsortedQueue
from repro.core.rm import RMHeapScheduler, RMScheduler
from repro.core.scheduler import Scheduler, SchedulerStats
from repro.core.schedulability import (
    csd_schedulable,
    dm_response_times,
    dm_schedulable,
    edf_schedulable,
    rm_response_times,
    rm_schedulable,
)
from repro.core.task import TaskSpec, Workload, table2_workload

__all__ = [
    "CSDScheduler",
    "EDFScheduler",
    "OverheadModel",
    "RMHeapScheduler",
    "RMScheduler",
    "ReadyHeap",
    "Schedulable",
    "Scheduler",
    "SchedulerStats",
    "SortedQueue",
    "TaskSpec",
    "UnsortedQueue",
    "Workload",
    "ZERO_OVERHEAD",
    "balanced_splits",
    "csd_schedulable",
    "dm_response_times",
    "dm_schedulable",
    "edf_schedulable",
    "find_feasible_splits",
    "rm_response_times",
    "rm_schedulable",
    "table2_workload",
]
