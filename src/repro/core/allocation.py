"""Offline allocation of tasks to CSD queues (Section 5.5.3).

The paper assigns tasks to queues with an offline exhaustive search
driven by the schedulability test of [36]; for three queues the search
is O(n^2).  Allocations are *prefix splits* of the RM-ordered workload:
the shortest-period tasks go to DP1, the next group to DP2, ..., and
the longest-period tasks to the FP queue.  (This is implied by the
construction in Section 5.3 -- the DP queue holds tasks ``1..r`` in
shortest-period-first order -- and by the inter-queue priorities,
which must agree with RM for the analysis to hold.)

Two considerations steer the split (Section 5.5.3):

* short-period tasks are responsible for the most run-time overhead
  (a fixed per-period cost is amortized over fewer milliseconds), so
  DP1 should stay small;
* splitting DP tasks across queues introduces schedulability overhead
  (the queues themselves are scheduled by fixed priority), so the split
  must keep every band schedulable.

:func:`find_feasible_splits` performs the search with the paper's goal
-- find *any* feasible allocation -- using a balanced-split heuristic
ordering plus an optional warm-start hint, falling back to exhaustive
enumeration (capped by ``max_tests``; the cap is generous for the
two- and three-queue searches the paper uses, and bounds the
combinatorial four-queue case).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from repro.core.overhead import OverheadModel, ZERO_OVERHEAD
from repro.core.schedulability import BLOCKING_FACTOR, csd_schedulable
from repro.core.task import Workload

__all__ = ["find_feasible_splits", "candidate_splits", "balanced_splits"]

Splits = Tuple[int, ...]

#: Default cap on schedulability tests per search call.
DEFAULT_MAX_TESTS = 2_000


def balanced_splits(workload: Workload, dp_bands: int, r: int) -> Splits:
    """Split the first ``r`` tasks into ``dp_bands`` queues balancing
    the scheduler-invocation rate ``sum(1 / P_i)`` per queue.

    Section 5.5.3: a task with period ``P_i`` is responsible for
    ``t / P_i`` CPU overhead, so queues are balanced by the sum of
    inverse periods, keeping the overhead contribution of each queue
    roughly equal.
    """
    if dp_bands <= 0:
        return ()
    if r == 0:
        return (0,) * dp_bands
    rates = [1.0 / workload[i].period for i in range(r)]
    total = sum(rates)
    target = total / dp_bands
    splits: List[int] = []
    accumulated = 0.0
    index = 0
    for band in range(dp_bands - 1):
        budget = target * (band + 1)
        while index < r and accumulated + rates[index] / 2 <= budget:
            accumulated += rates[index]
            index += 1
        splits.append(index)
    splits.append(r)
    return tuple(splits)


def _neighbourhood(splits: Splits, r: int, radius: int = 2) -> Iterator[Splits]:
    """Valid split tuples within ``radius`` of ``splits`` (same r)."""
    inner = splits[:-1]
    if not inner:
        yield splits
        return
    ranges = [
        range(max(0, s - radius), min(r, s + radius) + 1) for s in inner
    ]
    for combo in itertools.product(*ranges):
        if all(combo[i] <= combo[i + 1] for i in range(len(combo) - 1)):
            yield tuple(combo) + (r,)


def candidate_splits(
    workload: Workload, dp_bands: int, exhaustive_limit: int = 3
) -> Iterator[Splits]:
    """Yield candidate allocations in a good heuristic order.

    For each DP-set size ``r`` (ascending: prefer the smallest DP set,
    which minimizes EDF run-time overhead -- the paper's observation
    that ``tau_r`` is "the longest period task that cannot be scheduled
    by RM"), yield the rate-balanced split first, then its local
    neighbourhood, then -- for at most ``exhaustive_limit - 1`` inner
    split points -- the full enumeration.
    """
    n = len(workload)
    if dp_bands == 0:
        yield ()
        return
    for r in range(n + 1):
        seen = set()
        balanced = balanced_splits(workload, dp_bands, r)
        for splits in itertools.chain([balanced], _neighbourhood(balanced, r)):
            if splits not in seen:
                seen.add(splits)
                yield splits
        if dp_bands <= exhaustive_limit - 1:
            inner_points = itertools.combinations_with_replacement(
                range(r + 1), dp_bands - 1
            )
            for inner in inner_points:
                splits = tuple(inner) + (r,)
                if splits not in seen:
                    seen.add(splits)
                    yield splits


def find_feasible_splits(
    workload: Workload,
    dp_bands: int,
    model: OverheadModel = ZERO_OVERHEAD,
    blocking_factor: float = BLOCKING_FACTOR,
    hint: Optional[Splits] = None,
    max_tests: int = DEFAULT_MAX_TESTS,
) -> Optional[Splits]:
    """Find any allocation under which ``workload`` is CSD-schedulable.

    Args:
        workload: RM-ordered task set.
        dp_bands: Number of DP queues (CSD-x has ``x - 1``).
        model: Run-time overhead model.
        blocking_factor: Per-period blocking multiplier (Section 5.1).
        hint: Allocation to try first (warm start from a previous,
            slightly different scale of the same workload).
        max_tests: Cap on schedulability tests before giving up.

    Returns:
        A feasible splits tuple, or ``None`` if none was found within
        the test budget.
    """
    n = len(workload)
    tests = 0

    def try_splits(splits: Splits) -> bool:
        nonlocal tests
        tests += 1
        return csd_schedulable(workload, splits, model, blocking_factor)

    if hint is not None and len(hint) == dp_bands and all(
        0 <= s <= n for s in hint
    ) and all(hint[i] <= hint[i + 1] for i in range(len(hint) - 1)):
        if try_splits(hint):
            return hint

    for splits in candidate_splits(workload, dp_bands):
        if tests >= max_tests:
            return None
        if try_splits(splits):
            return splits
    return None
