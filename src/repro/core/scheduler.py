"""Abstract scheduler interface shared by EDF, RM, and CSD.

The kernel (``repro.kernel.kernel``) drives a scheduler through this
interface.  Every mutating call returns the *charged cost* in integer
nanoseconds, computed from the :class:`~repro.core.overhead.OverheadModel`
exactly as Section 5.1 accounts it: ``t_b`` when a task blocks, ``t_u``
when a task unblocks, and ``t_s`` each time the next task to run is
selected (which the kernel does after every block and unblock).

Priority inheritance is exposed as three primitives used by the
semaphore implementations of Section 6:

* :meth:`Scheduler.raise_priority` / :meth:`Scheduler.restore_priority`
  -- the standard remove-and-reinsert path, O(n) on fixed-priority
  queues, O(1) for dynamic-priority tasks (the deadline field in the
  TCB is simply overwritten, since the EDF queue is unsorted);
* :meth:`Scheduler.swap_with_placeholder` -- the O(1) place-holder swap
  of Section 6.2, available when both tasks sit on the same
  fixed-priority queue.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.overhead import OverheadModel
from repro.core.queues import Schedulable

__all__ = ["Scheduler", "SchedulerStats"]


@dataclass(slots=True)
class SchedulerStats:
    """Operation counts and charged virtual time, per category.

    Slotted: these counters are bumped on every scheduler invocation,
    and slot stores are measurably cheaper than ``__dict__`` writes.
    """

    blocks: int = 0
    unblocks: int = 0
    selects: int = 0
    pi_operations: int = 0
    charged_block_ns: int = 0
    charged_unblock_ns: int = 0
    charged_select_ns: int = 0
    charged_pi_ns: int = 0

    @property
    def charged_total_ns(self) -> int:
        """All virtual time charged to scheduler activity."""
        return (
            self.charged_block_ns
            + self.charged_unblock_ns
            + self.charged_select_ns
            + self.charged_pi_ns
        )


class Scheduler(ABC):
    """Base class for the three scheduling policies of Section 5."""

    def __init__(self, model: Optional[OverheadModel] = None):
        self.model = model if model is not None else OverheadModel()
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @abstractmethod
    def add_task(self, task: Schedulable) -> None:
        """Register a task with the scheduler (initially blocked or ready
        according to ``task.ready``)."""

    @abstractmethod
    def remove_task(self, task: Schedulable) -> None:
        """Withdraw a task from scheduling."""

    @abstractmethod
    def tasks(self) -> List[Schedulable]:
        """All registered tasks."""

    # ------------------------------------------------------------------
    # the three paper primitives
    #
    # NOTE: the kernel's per-job hot paths (_on_release, _retire_job,
    # _dispatch in repro.kernel.kernel) inline these wrappers -- they
    # call the _block/_unblock/_select hooks directly and bump the same
    # stats fields themselves to save a call frame per invocation.  Any
    # bookkeeping added here must be mirrored there.
    # ------------------------------------------------------------------
    def on_block(self, task: Schedulable) -> int:
        """Record that ``task`` blocked; return the charged ``t_b``."""
        cost = self._block(task)
        self.stats.blocks += 1
        self.stats.charged_block_ns += cost
        return cost

    def on_unblock(self, task: Schedulable) -> int:
        """Record that ``task`` unblocked; return the charged ``t_u``."""
        cost = self._unblock(task)
        self.stats.unblocks += 1
        self.stats.charged_unblock_ns += cost
        return cost

    def select(self) -> Tuple[Optional[Schedulable], int]:
        """Pick the next task to run; return ``(task, charged t_s)``."""
        task, cost = self._select()
        self.stats.selects += 1
        self.stats.charged_select_ns += cost
        return task, cost

    # ------------------------------------------------------------------
    # priority inheritance
    # ------------------------------------------------------------------
    def raise_priority(self, task: Schedulable, donor: Schedulable) -> int:
        """Standard PI step: give ``task`` the ``donor``'s priority.

        The scheduler takes whatever it needs from the donor: its
        effective fixed-priority key, its effective deadline, and (for
        CSD) the queue it lives on.  Returns the charged cost.
        """
        cost = self._raise_priority(task, donor)
        task.rank_cache = None
        donor.rank_cache = None
        self.stats.pi_operations += 1
        self.stats.charged_pi_ns += cost
        return cost

    def restore_priority(self, task: Schedulable) -> int:
        """Standard PI step: return ``task`` to its base priority."""
        cost = self._restore_priority(task)
        task.rank_cache = None
        self.stats.pi_operations += 1
        self.stats.charged_pi_ns += cost
        return cost

    def swap_with_placeholder(
        self, holder: Schedulable, placeholder: Schedulable
    ) -> Optional[int]:
        """O(1) PI via the place-holder trick, if applicable.

        Returns the charged cost, or ``None`` when the two tasks are not
        on the same fixed-priority queue (the caller then falls back to
        :meth:`raise_priority`).
        """
        cost = self._swap_with_placeholder(holder, placeholder)
        if cost is not None:
            holder.rank_cache = None
            placeholder.rank_cache = None
            self.stats.pi_operations += 1
            self.stats.charged_pi_ns += cost
        return cost

    # ------------------------------------------------------------------
    # overload shedding
    # ------------------------------------------------------------------
    def admit_release(self, task: Schedulable, now: int) -> bool:
        """Admission check the kernel runs at every job release.

        The default policy admits everything (the paper's kernel never
        refuses work).  Schedulers implementing graceful degradation
        (``CSDScheduler(shed_overload=True)``) override this to skip
        releases of low-criticality tasks while their band overruns.
        """
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def priority_rank(self, task: Schedulable) -> Tuple:
        """Total order on urgency: smaller = more urgent.

        Used for tie-breaking outside the queues proper (semaphore
        wait-queue pops, PI donor choice).  Fixed-priority schedulers
        compare effective keys; EDF compares effective deadlines; CSD
        compares (queue, deadline-or-key).
        """
        return (0, 0, task.effective_key)

    @abstractmethod
    def queue_lengths(self) -> List[int]:
        """Length of each queue, highest-priority queue first."""

    def queue_index_of(self, task: Schedulable) -> int:
        """Index of the queue holding ``task`` (0 = highest priority)."""
        raise NotImplementedError

    def check_invariants(self) -> None:
        """Verify internal structural invariants (used by tests)."""

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _block(self, task: Schedulable) -> int: ...

    @abstractmethod
    def _unblock(self, task: Schedulable) -> int: ...

    @abstractmethod
    def _select(self) -> Tuple[Optional[Schedulable], int]: ...

    @abstractmethod
    def _raise_priority(self, task: Schedulable, donor: Schedulable) -> int: ...

    @abstractmethod
    def _restore_priority(self, task: Schedulable) -> int: ...

    def _swap_with_placeholder(
        self, holder: Schedulable, placeholder: Schedulable
    ) -> Optional[int]:
        return None
