"""Cyclic time-slice executive -- the baseline CSD replaces.

Section 5's motivation: "Until recently, embedded application
programmers have primarily used cyclic time-slice scheduling
techniques in which the entire execution schedule is calculated
off-line, and at runtime, tasks are switched in and out according to
the fixed schedule."  The paper lists three problems, all of which
this module makes measurable:

1. schedules must be computed offline and are brittle
   (:func:`build_cyclic_schedule` fails outright on workloads any
   priority scheduler handles);
2. high-priority aperiodic tasks get poor response times because their
   arrivals cannot be anticipated (:meth:`CyclicSchedule.worst_case_aperiodic_response`);
3. workloads mixing short and long (or relatively prime) periods
   produce very large schedule tables, "wasting scarce memory
   resources" (:attr:`CyclicSchedule.table_bytes`).

The construction is the classic one: pick the largest minor frame
``f`` that (a) divides the hyperperiod, (b) is no longer than the
shortest period, and (c) satisfies ``2f - gcd(f, P_i) <= D_i`` for
every task, then pack job slices into frames in
earliest-deadline-first order (slices may split across frames, which
is the generous assumption -- real cyclic executives need manual task
splitting to do even this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.task import TaskSpec, Workload

__all__ = ["CyclicSchedule", "CyclicScheduleError", "build_cyclic_schedule"]

#: Bytes per schedule-table entry: task id (2) + start offset (4) +
#: duration (4) -- generous for a 16-bit microcontroller.
TABLE_ENTRY_BYTES = 10

#: Give up if the hyperperiod has more minor frames than this (the
#: schedule would never fit in a small-memory system anyway).
MAX_FRAMES = 200_000


class CyclicScheduleError(Exception):
    """No legal cyclic schedule exists for the workload."""


@dataclass
class Slice:
    """One table entry: run ``task`` for ``duration`` ns in ``frame``."""

    frame: int
    task: str
    duration: int


@dataclass
class CyclicSchedule:
    """An offline time-slice schedule."""

    workload: Workload
    frame: int
    hyperperiod: int
    slices: List[Slice] = field(default_factory=list)

    @property
    def frame_count(self) -> int:
        return self.hyperperiod // self.frame

    @property
    def table_entries(self) -> int:
        """Number of table entries the runtime must store."""
        return len(self.slices)

    @property
    def table_bytes(self) -> int:
        """Schedule table footprint -- the paper's "wasted scarce
        memory" when periods are relatively prime."""
        return self.table_entries * TABLE_ENTRY_BYTES

    def frame_utilizations(self) -> List[int]:
        """Busy nanoseconds per frame."""
        busy = [0] * self.frame_count
        for s in self.slices:
            busy[s.frame] += s.duration
        return busy

    def worst_case_aperiodic_response(self, cost: int) -> Optional[int]:
        """Worst-case response time of an aperiodic job of ``cost`` ns.

        A cyclic executive only serves aperiodic work in frame slack.
        The worst case arrives just after a frame's dispatch decision:
        the job waits for the rest of the frame's slices and then
        consumes slack frame by frame.  Returns ``None`` if the table
        has insufficient slack over two hyperperiods (unbounded
        response).
        """
        if cost <= 0:
            raise ValueError("aperiodic cost must be positive")
        busy = self.frame_utilizations()
        count = self.frame_count
        worst = 0
        for start in range(count):
            # Arrive at the very start of frame `start`, but after the
            # dispatcher committed to the frame's slices.
            remaining = cost
            elapsed = busy[start]  # the arrival frame's busy time
            if elapsed < self.frame:
                served = min(remaining, self.frame - elapsed)
                remaining -= served
                elapsed += served
            frame_index = start
            frames_scanned = 0
            while remaining > 0:
                frames_scanned += 1
                if frames_scanned > 2 * count:
                    return None
                frame_index = (frame_index + 1) % count
                elapsed = (frames_scanned) * self.frame + min(
                    busy[frame_index], self.frame
                )
                slack = self.frame - busy[frame_index]
                served = min(remaining, slack)
                if served > 0:
                    # Aperiodic work runs after the frame's slices.
                    elapsed = frames_scanned * self.frame + busy[frame_index] + served
                remaining -= served
            worst = max(worst, elapsed)
        return worst


def _hyperperiod(workload: Workload) -> int:
    value = 1
    for task in workload:
        value = value * task.period // math.gcd(value, task.period)
    return value


def _frame_candidates(workload: Workload, hyperperiod: int) -> List[int]:
    """Legal minor frames, largest first."""
    min_period = min(t.period for t in workload)
    candidates = []
    f = 1
    while f * f <= hyperperiod:
        if hyperperiod % f == 0:
            for value in (f, hyperperiod // f):
                if value <= min_period:
                    candidates.append(value)
        f += 1
    out = []
    for f in sorted(set(candidates), reverse=True):
        if all(2 * f - math.gcd(f, t.period) <= t.deadline for t in workload):
            out.append(f)
    return out


def build_cyclic_schedule(
    workload: Workload, frame: Optional[int] = None
) -> CyclicSchedule:
    """Construct an offline time-slice schedule for ``workload``.

    Raises :class:`CyclicScheduleError` when no legal frame exists,
    when the table would exceed :data:`MAX_FRAMES` frames, or when the
    packing fails (a job cannot meet its deadline even with slicing).
    """
    if len(workload) == 0:
        raise CyclicScheduleError("empty workload")
    if workload.utilization > 1.0:
        raise CyclicScheduleError("utilization exceeds 1")
    hyperperiod = _hyperperiod(workload)
    if frame is None:
        candidates = _frame_candidates(workload, hyperperiod)
        if not candidates:
            raise CyclicScheduleError(
                "no minor frame satisfies the frame constraints"
            )
        frame = candidates[0]
    if hyperperiod % frame != 0:
        raise CyclicScheduleError("frame must divide the hyperperiod")
    frame_count = hyperperiod // frame
    if frame_count > MAX_FRAMES:
        raise CyclicScheduleError(
            f"schedule needs {frame_count} frames (> {MAX_FRAMES}); "
            "table would not fit in a small-memory system"
        )

    # Pack jobs into frames, EDF order, allowing slice splitting.
    schedule = CyclicSchedule(workload, frame, hyperperiod)
    free = [frame] * frame_count
    jobs: List[Tuple[int, int, str, int]] = []  # (deadline, release, name, cost)
    for task in workload:
        releases = range(0, hyperperiod, task.period)
        for release in releases:
            jobs.append((release + task.deadline, release, task.name, task.wcet))
    jobs.sort()
    for deadline, release, name, cost in jobs:
        first_frame = -(-release // frame)  # job can only run in frames
        # starting at/after its release
        last_frame = deadline // frame  # frames ending by the deadline
        remaining = cost
        for index in range(first_frame, min(last_frame, frame_count)):
            if remaining == 0:
                break
            take = min(remaining, free[index])
            if take > 0:
                schedule.slices.append(Slice(index, name, take))
                free[index] -= take
                remaining -= take
        if remaining > 0:
            raise CyclicScheduleError(
                f"job of {name} (release {release}) cannot fit by its deadline"
            )
    return schedule
