"""Scheduler queue structures (Section 5.1).

Three queue disciplines are implemented, matching the three columns of
Table 1:

* :class:`UnsortedQueue` -- the EDF implementation: one unsorted list
  holding *all* tasks, blocked and ready.  Blocking and unblocking flip
  a TCB flag in O(1); selection scans the whole list for the
  earliest-deadline ready task in O(n).
* :class:`SortedQueue` -- the RM/fixed-priority implementation: one
  doubly-linked list of *all* tasks sorted by priority with a
  ``highestp`` pointer to the first ready task.  Selection is O(1);
  unblocking is O(1) (compare against ``highestp``); blocking is O(n)
  worst case (advance ``highestp`` to the next ready task).  Keeping
  blocked tasks in the queue is what enables the O(1)
  priority-inheritance place-holder swap of Section 6.2.
* :class:`ReadyHeap` -- the conventional alternative the paper measures
  for comparison: a binary heap of ready tasks with O(log n)
  insert/delete.

Each structure counts the work it actually performs (``last_scan_steps``
and ``total_scan_steps``), so tests can verify the claimed asymptotics
structurally rather than by wall-clock timing.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["Schedulable", "UnsortedQueue", "SortedQueue", "ReadyHeap"]

#: Effective-priority keys are tuples ordered lexicographically; smaller
#: sorts first (= higher priority).
PriorityKey = Tuple[Any, ...]

_INFINITY = float("inf")


class Schedulable:
    """Minimal TCB fields the scheduler queues operate on.

    Both the live kernel threads and the lightweight tasks used by the
    analytic machinery derive from this class.

    Attributes:
        name: Identifier used in traces and error messages.
        ready: True when the task is runnable.
        base_key: Static fixed-priority key (rate-monotonic: the
            period); smaller = higher priority.
        effective_key: Current fixed-priority key, possibly altered by
            priority inheritance.
        abs_deadline: Absolute deadline of the current job (ns), used by
            EDF queues.  ``None`` means "no active job".
        pi_deadline: Inherited absolute deadline (ns) or ``None``; EDF
            selection uses ``min(abs_deadline, pi_deadline)``.
        pi_key: Tie-break key inherited alongside ``pi_deadline``.
            Inheriting only the deadline is not enough: on a deadline
            tie the holder must also win the donor's tie-break, or
            equal-deadline tasks keep running ahead of it and the
            donation is a no-op.
    """

    __slots__ = (
        "name",
        "ready",
        "base_key",
        "effective_key",
        "abs_deadline",
        "pi_deadline",
        "pi_key",
        "csd_queue",
        "rank_cache",
        "_queue",
        "_node",
        "_heap_entry",
    )

    def __init__(self, name: str, base_key: PriorityKey):
        self.name = name
        self.ready = False
        self.base_key: PriorityKey = base_key
        self.effective_key: PriorityKey = base_key
        self.abs_deadline: Optional[int] = None
        self.pi_deadline: Optional[int] = None
        self.pi_key: Optional[PriorityKey] = None
        #: Memoized ``Kernel.priority_rank`` tuple; ``None`` = stale.
        #: Every site that mutates the fields the rank derives from
        #: (``effective_key``, ``abs_deadline``, ``pi_deadline``,
        #: ``csd_queue``) must reset this to ``None``.
        self.rank_cache: Optional[Tuple] = None
        #: CSD queue assignment (0-based; the FP queue is the last
        #: index).  ``None`` means "unassigned": CSD places the task on
        #: its FP queue.
        self.csd_queue: Optional[int] = None
        self._queue: Optional[object] = None
        self._node: Optional["_Node"] = None
        self._heap_entry: Optional[List[object]] = None

    @property
    def effective_deadline(self) -> float:
        """The deadline EDF selection sees, accounting for inheritance."""
        own = self.abs_deadline if self.abs_deadline is not None else _INFINITY
        inherited = self.pi_deadline if self.pi_deadline is not None else _INFINITY
        return min(own, inherited)

    def edf_rank(self) -> Tuple[float, PriorityKey]:
        """``(deadline, tie-break key)`` pair EDF selection orders by,
        accounting for inheritance of both components."""
        own = self.abs_deadline
        own_rank = (
            _INFINITY if own is None else own,
            self.effective_key,
        )
        inherited = self.pi_deadline
        if inherited is not None:
            pi_rank = (
                inherited,
                self.pi_key if self.pi_key is not None else self.effective_key,
            )
            if pi_rank < own_rank:
                return pi_rank
        return own_rank

    def __repr__(self) -> str:
        state = "ready" if self.ready else "blocked"
        return f"<{type(self).__name__} {self.name} {state}>"


class UnsortedQueue:
    """The EDF queue: one unsorted list of all (blocked and ready) tasks.

    Per Section 5.1, ``t_b`` and ``t_u`` are O(1) (a TCB flag flip) and
    ``t_s`` is O(n) (scan for the earliest effective deadline among
    ready tasks).
    """

    def __init__(self, name: str = "DP"):
        self.name = name
        self._tasks: List[Schedulable] = []
        self.ready_count = 0
        self.last_scan_steps = 0
        self.total_scan_steps = 0

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Schedulable]:
        return iter(self._tasks)

    def __contains__(self, task: Schedulable) -> bool:
        return task._queue is self

    def add(self, task: Schedulable) -> None:
        """Add a task (initially in whatever ready state it carries)."""
        if task._queue is not None:
            raise ValueError(f"{task.name} is already on a queue")
        task._queue = self
        self._tasks.append(task)
        if task.ready:
            self.ready_count += 1

    def remove(self, task: Schedulable) -> None:
        """Remove a task from the queue entirely."""
        self._check_membership(task)
        self._tasks.remove(task)
        task._queue = None
        if task.ready:
            self.ready_count -= 1

    def block(self, task: Schedulable) -> None:
        """Mark a ready task blocked.  O(1)."""
        self._check_membership(task)
        if not task.ready:
            raise ValueError(f"{task.name} is already blocked")
        task.ready = False
        self.ready_count -= 1
        self.last_scan_steps = 1
        self.total_scan_steps += 1

    def unblock(self, task: Schedulable) -> None:
        """Mark a blocked task ready.  O(1)."""
        self._check_membership(task)
        if task.ready:
            raise ValueError(f"{task.name} is already ready")
        task.ready = True
        self.ready_count += 1
        self.last_scan_steps = 1
        self.total_scan_steps += 1

    def select(self) -> Optional[Schedulable]:
        """Scan for the earliest-effective-deadline ready task.  O(n).

        ``effective_deadline`` is inlined: this loop runs once per
        dispatch over every task, and the property call dominated the
        EDF profile.
        """
        best: Optional[Schedulable] = None
        best_deadline = _INFINITY
        best_key = None
        tasks = self._tasks
        for task in tasks:
            if not task.ready:
                continue
            own = task.abs_deadline
            inherited = task.pi_deadline
            key = task.effective_key
            if own is None:
                deadline = _INFINITY if inherited is None else inherited
                if inherited is not None and task.pi_key is not None:
                    key = task.pi_key
            elif inherited is None or own < inherited:
                deadline = own
            else:
                # Inherited deadline wins or ties: the tie-break key is
                # inherited with it (a donation that only matched the
                # deadline would otherwise change nothing).
                deadline = inherited
                pk = task.pi_key
                if pk is not None and (inherited < own or pk < key):
                    key = pk
            # Tie-break on the effective key, then name, for determinism.
            if best is None or deadline < best_deadline or (
                deadline == best_deadline
                and (key, task.name) < (best_key, best.name)
            ):
                best = task
                best_deadline = deadline
                best_key = key
        steps = len(tasks)
        self.last_scan_steps = steps
        self.total_scan_steps += steps
        return best

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if counters or back-pointers broke."""
        ready = 0
        for task in self._tasks:
            assert task._queue is self, f"{task.name}: queue back-pointer broken"
            if task.ready:
                ready += 1
        assert ready == self.ready_count, "ready_count mismatch"

    def _check_membership(self, task: Schedulable) -> None:
        if task._queue is not self:
            raise ValueError(f"{task.name} is not on queue {self.name}")


class _Node:
    """Doubly-linked list node for :class:`SortedQueue`."""

    __slots__ = ("task", "prev", "next")

    def __init__(self, task: Schedulable):
        self.task = task
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class SortedQueue:
    """The RM/FP queue: all tasks in one priority-sorted linked list.

    A ``highestp`` pointer tracks the first (highest-priority) *ready*
    task, making selection O(1).  Blocking must advance ``highestp``
    past blocked tasks, O(n) worst case.  Unblocking compares the
    task's effective key against ``highestp`` in O(1).

    The structure also provides the two O(1) priority-inheritance
    primitives of Section 6.2: :meth:`swap_positions` (the place-holder
    trick) and :meth:`move_before` (insert the inheriting holder
    directly ahead of the donor).
    """

    def __init__(self, name: str = "FP"):
        self.name = name
        self._head: Optional[_Node] = None
        self._tail: Optional[_Node] = None
        self._highestp: Optional[_Node] = None
        self._size = 0
        self.ready_count = 0
        self.last_scan_steps = 0
        self.total_scan_steps = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Schedulable]:
        node = self._head
        while node is not None:
            yield node.task
            node = node.next

    def __contains__(self, task: Schedulable) -> bool:
        return task._queue is self

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, task: Schedulable) -> None:
        """Insert a task at the position given by its effective key. O(n)."""
        if task._queue is not None:
            raise ValueError(f"{task.name} is already on a queue")
        node = _Node(task)
        task._queue = self
        task._node = node
        self._insert_sorted(node)
        self._size += 1
        if task.ready:
            self.ready_count += 1
            self._maybe_promote_highestp(node)

    def remove(self, task: Schedulable) -> None:
        """Unlink a task from the queue entirely."""
        self._check_membership(task)
        node = task._node
        assert node is not None
        if self._highestp is node:
            self._highestp = self._next_ready(node.next)
        self._unlink(node)
        self._size -= 1
        if task.ready:
            self.ready_count -= 1
        task._queue = None
        task._node = None

    # ------------------------------------------------------------------
    # scheduling operations
    # ------------------------------------------------------------------
    def block(self, task: Schedulable) -> None:
        """Mark ready task blocked; advance ``highestp`` if needed. O(n)."""
        self._check_membership(task)
        if not task.ready:
            raise ValueError(f"{task.name} is already blocked")
        task.ready = False
        self.ready_count -= 1
        node = task._node
        assert node is not None
        if self._highestp is node:
            self._highestp = self._next_ready(node.next)
        else:
            self.last_scan_steps = 1
            self.total_scan_steps += 1

    def unblock(self, task: Schedulable) -> None:
        """Mark blocked task ready; O(1) compare against ``highestp``."""
        self._check_membership(task)
        if task.ready:
            raise ValueError(f"{task.name} is already ready")
        task.ready = True
        self.ready_count += 1
        node = task._node
        assert node is not None
        self._maybe_promote_highestp(node)
        self.last_scan_steps = 1
        self.total_scan_steps += 1

    def select(self) -> Optional[Schedulable]:
        """Return the task under ``highestp``.  O(1)."""
        self.last_scan_steps = 1
        self.total_scan_steps += 1
        return self._highestp.task if self._highestp is not None else None

    # ------------------------------------------------------------------
    # priority inheritance primitives (Section 6.2)
    # ------------------------------------------------------------------
    def reposition(self, task: Schedulable) -> int:
        """Standard PI step: remove and reinsert by effective key.

        Returns the number of list steps performed (O(n)), so callers
        can verify the cost structurally.
        """
        self._check_membership(task)
        node = task._node
        assert node is not None
        if self._highestp is node:
            self._highestp = self._next_ready(node.next)
        self._unlink(node)
        steps = self._insert_sorted(node)
        if task.ready:
            self._maybe_promote_highestp(node)
        return steps

    def swap_positions(self, a: Schedulable, b: Schedulable) -> None:
        """The O(1) place-holder trick: exchange the queue positions and
        effective keys of two tasks.

        Used when a lock holder inherits a donor's priority: the holder
        takes the donor's position/key and the (blocked) donor becomes a
        place-holder remembering the holder's original position.  The
        list stays key-sorted because the keys move with the positions.
        """
        self._check_membership(a)
        self._check_membership(b)
        if a is b:
            return
        node_a, node_b = a._node, b._node
        assert node_a is not None and node_b is not None
        node_a.task, node_b.task = b, a
        a._node, b._node = node_b, node_a
        a.effective_key, b.effective_key = b.effective_key, a.effective_key
        # highestp pointed at a *node*; the tasks under the nodes moved,
        # so re-derive it from the earlier of the two nodes.
        if self._highestp in (node_a, node_b):
            earlier = node_a if self._is_before(node_a, node_b) else node_b
            self._highestp = self._next_ready(earlier)
        else:
            for node in (node_a, node_b):
                if node.task.ready:
                    self._maybe_promote_highestp(node)
        self.last_scan_steps = 1
        self.total_scan_steps += 1

    def move_before(self, task: Schedulable, anchor: Schedulable) -> None:
        """O(1) PI step: unlink ``task`` and relink it directly ahead of
        ``anchor``, adopting ``anchor``'s effective key."""
        self._check_membership(task)
        self._check_membership(anchor)
        if task is anchor:
            return
        node = task._node
        anchor_node = anchor._node
        assert node is not None and anchor_node is not None
        if self._highestp is node:
            self._highestp = self._next_ready(node.next)
        self._unlink(node)
        self._link_before(node, anchor_node)
        task.effective_key = anchor.effective_key
        if task.ready:
            self._maybe_promote_highestp(node)

    # ------------------------------------------------------------------
    # invariants and helpers
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is broken.

        Invariants: the list is non-decreasing in effective key;
        ``highestp`` points at the first ready task; ``ready_count``
        matches the number of ready tasks; node back-pointers agree.
        """
        prev_key = None
        first_ready = None
        count_ready = 0
        count = 0
        node = self._head
        while node is not None:
            count += 1
            task = node.task
            assert task._node is node, f"{task.name}: node back-pointer broken"
            assert task._queue is self, f"{task.name}: queue back-pointer broken"
            if prev_key is not None:
                assert prev_key <= task.effective_key, (
                    f"queue {self.name} not sorted at {task.name}"
                )
            prev_key = task.effective_key
            if task.ready:
                count_ready += 1
                if first_ready is None:
                    first_ready = node
            node = node.next
        assert count == self._size, "size mismatch"
        assert count_ready == self.ready_count, "ready_count mismatch"
        assert self._highestp is first_ready, "highestp not at first ready task"

    def tasks(self) -> List[Schedulable]:
        """Snapshot of the queue order, head (highest priority) first."""
        return list(self)

    def _check_membership(self, task: Schedulable) -> None:
        if task._queue is not self:
            raise ValueError(f"{task.name} is not on queue {self.name}")

    def _insert_sorted(self, node: _Node) -> int:
        """Link ``node`` at its sorted position; return steps walked."""
        key = (node.task.effective_key, node.task.name)
        steps = 0
        cursor = self._head
        while cursor is not None and (cursor.task.effective_key, cursor.task.name) <= key:
            cursor = cursor.next
            steps += 1
        self.last_scan_steps = steps + 1
        self.total_scan_steps += steps + 1
        if cursor is None:
            # append at tail
            node.prev = self._tail
            node.next = None
            if self._tail is not None:
                self._tail.next = node
            self._tail = node
            if self._head is None:
                self._head = node
        else:
            self._link_before(node, cursor)
        return steps

    def _link_before(self, node: _Node, anchor: _Node) -> None:
        node.prev = anchor.prev
        node.next = anchor
        if anchor.prev is not None:
            anchor.prev.next = node
        else:
            self._head = node
        anchor.prev = node
        if node.next is None:
            self._tail = node

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = None
        node.next = None

    def _next_ready(self, node: Optional[_Node]) -> Optional[_Node]:
        steps = 0
        while node is not None and not node.task.ready:
            node = node.next
            steps += 1
        self.last_scan_steps = steps + 1
        self.total_scan_steps += steps + 1
        return node

    def _maybe_promote_highestp(self, node: _Node) -> None:
        if self._highestp is None or self._is_before(node, self._highestp):
            self._highestp = node

    def _is_before(self, a: _Node, b: _Node) -> bool:
        """True if node ``a`` precedes ``b`` (or is ``b``) in list order.

        Comparison is by key (the list is sorted), falling back to a
        forward walk on exact ties, which only happens between a task
        and its place-holder during PI.
        """
        if a is b:
            return True
        ka = a.task.effective_key
        kb = b.task.effective_key
        if ka != kb:
            return ka < kb
        node = a.next
        while node is not None:
            if node is b:
                return True
            node = node.next
        return False


class ReadyHeap:
    """The conventional alternative: a binary heap of *ready* tasks.

    Table 1's third column.  Blocking removes from the heap (lazy
    invalidation), unblocking pushes, selection peeks the root.
    """

    def __init__(self, name: str = "HEAP"):
        self.name = name
        self._members: List[Schedulable] = []
        self._heap: List[List[object]] = []
        self._counter = 0
        self.ready_count = 0
        self.last_scan_steps = 0
        self.total_scan_steps = 0

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Schedulable]:
        return iter(self._members)

    def __contains__(self, task: Schedulable) -> bool:
        return task._queue is self

    def add(self, task: Schedulable) -> None:
        """Register a task; ready tasks enter the heap immediately."""
        if task._queue is not None:
            raise ValueError(f"{task.name} is already on a queue")
        task._queue = self
        self._members.append(task)
        if task.ready:
            self._push(task)
            self.ready_count += 1

    def remove(self, task: Schedulable) -> None:
        """Withdraw a task from the structure entirely."""
        self._check_membership(task)
        self._members.remove(task)
        if task.ready:
            self._invalidate(task)
            self.ready_count -= 1
        task._queue = None

    def block(self, task: Schedulable) -> None:
        """O(log n): invalidate the heap entry."""
        self._check_membership(task)
        if not task.ready:
            raise ValueError(f"{task.name} is already blocked")
        task.ready = False
        self.ready_count -= 1
        self._invalidate(task)

    def unblock(self, task: Schedulable) -> None:
        """O(log n): push onto the heap."""
        self._check_membership(task)
        if task.ready:
            raise ValueError(f"{task.name} is already ready")
        task.ready = True
        self.ready_count += 1
        self._push(task)

    def select(self) -> Optional[Schedulable]:
        """O(1) amortized: peek the first valid root."""
        steps = 0
        while self._heap:
            steps += 1
            entry = self._heap[0]
            if entry[2] is None:
                heapq.heappop(self._heap)
                continue
            self.last_scan_steps = steps
            self.total_scan_steps += steps
            task = entry[2]
            assert isinstance(task, Schedulable)
            return task
        self.last_scan_steps = steps
        self.total_scan_steps += steps
        return None

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if the heap bookkeeping broke.

        Invariants: counters match membership; every ready member has a
        live heap entry pointing back at it; every live heap entry's
        task is a ready member; the heap property holds on keys.
        """
        ready = 0
        for task in self._members:
            assert task._queue is self, f"{task.name}: queue back-pointer broken"
            if task.ready:
                ready += 1
                entry = task._heap_entry
                assert entry is not None, f"{task.name}: ready but no heap entry"
                assert entry[2] is task, f"{task.name}: heap entry points elsewhere"
        assert ready == self.ready_count, "ready_count mismatch"
        members = set(id(t) for t in self._members)
        heap = self._heap
        for i, entry in enumerate(heap):
            task = entry[2]
            if task is not None:
                assert isinstance(task, Schedulable)
                assert id(task) in members, f"{task.name}: heap entry for non-member"
                assert task.ready, f"{task.name}: live heap entry while blocked"
            for child in (2 * i + 1, 2 * i + 2):
                if child < len(heap):
                    assert heap[i][:2] <= heap[child][:2], "heap property broken"

    def _push(self, task: Schedulable) -> None:
        self._counter += 1
        entry: List[object] = [task.effective_key, self._counter, task]
        task._heap_entry = entry
        heapq.heappush(self._heap, entry)

    def _invalidate(self, task: Schedulable) -> None:
        entry = task._heap_entry
        if entry is not None:
            entry[2] = None
            task._heap_entry = None

    def _check_membership(self, task: Schedulable) -> None:
        if task._queue is not self:
            raise ValueError(f"{task.name} is not on queue {self.name}")
